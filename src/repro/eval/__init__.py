"""Evaluation helpers: discovery metrics, timing and memory accounting."""

from repro.eval.discovery import average_precision_recall_at_k, precision_at_k, recall_at_k
from repro.eval.measure import MeasuredRun, format_report_table, measure_call

__all__ = [
    "precision_at_k",
    "recall_at_k",
    "average_precision_recall_at_k",
    "MeasuredRun",
    "measure_call",
    "format_report_table",
]
