"""Precision@k / Recall@k for table-union search (the Figure 5/6 metrics)."""

from __future__ import annotations

from typing import Dict, Hashable, List, Sequence, Set, Tuple

import numpy as np


def precision_at_k(ranked: Sequence[Hashable], relevant: Set[Hashable], k: int) -> float:
    """Fraction of the top-k results that are relevant."""
    if k <= 0:
        return 0.0
    top = list(ranked)[:k]
    if not top:
        return 0.0
    hits = sum(1 for item in top if item in relevant)
    return hits / len(top)


def recall_at_k(ranked: Sequence[Hashable], relevant: Set[Hashable], k: int) -> float:
    """Fraction of the relevant items found in the top-k results."""
    if not relevant:
        return 0.0
    top = list(ranked)[:k]
    hits = sum(1 for item in top if item in relevant)
    return hits / len(relevant)


def average_precision_recall_at_k(
    rankings: Dict[Hashable, Sequence[Hashable]],
    ground_truth: Dict[Hashable, Set[Hashable]],
    k_values: Sequence[int],
) -> Dict[int, Tuple[float, float]]:
    """Average precision@k and recall@k over query tables.

    ``rankings`` maps each query to its ranked candidate list; ``ground_truth``
    maps each query to its set of relevant items.  Queries missing from
    ``rankings`` contribute zeros (a system that fails a query is penalized,
    not skipped).
    """
    results: Dict[int, Tuple[float, float]] = {}
    queries = list(ground_truth.keys())
    for k in k_values:
        precisions: List[float] = []
        recalls: List[float] = []
        for query in queries:
            ranked = rankings.get(query, [])
            relevant = ground_truth[query]
            precisions.append(precision_at_k(ranked, relevant, k))
            recalls.append(recall_at_k(ranked, relevant, k))
        results[k] = (float(np.mean(precisions)), float(np.mean(recalls)))
    return results
