"""Timing and peak-memory measurement plus simple report-table formatting."""

from __future__ import annotations

import time
import tracemalloc
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Sequence, Tuple


@dataclass
class MeasuredRun:
    """Outcome of one measured call."""

    result: Any
    elapsed_seconds: float
    peak_memory_mb: float
    failed: bool = False
    error: str = ""


def measure_call(fn: Callable[[], Any], memory_budget_mb: float = 0.0) -> MeasuredRun:
    """Run ``fn`` measuring wall-clock time and Python peak memory.

    ``memory_budget_mb`` (when positive) simulates an out-of-memory failure:
    if the measured peak exceeds the budget the run is reported as failed,
    which is how the harness reproduces HoloClean's OOM behaviour on large
    datasets without actually exhausting the machine.
    """
    tracemalloc.start()
    started = time.perf_counter()
    failed = False
    error = ""
    result: Any = None
    try:
        result = fn()
    except MemoryError as exc:  # pragma: no cover - depends on machine limits
        failed = True
        error = f"MemoryError: {exc}"
    except Exception as exc:
        failed = True
        error = f"{type(exc).__name__}: {exc}"
    elapsed = time.perf_counter() - started
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    peak_mb = peak / (1024.0 * 1024.0)
    if memory_budget_mb > 0.0 and peak_mb > memory_budget_mb:
        failed = True
        error = error or f"simulated OOM: peak {peak_mb:.1f} MB exceeds budget {memory_budget_mb:.1f} MB"
    return MeasuredRun(
        result=None if failed else result,
        elapsed_seconds=elapsed,
        peak_memory_mb=peak_mb,
        failed=failed,
        error=error,
    )


def format_report_table(
    headers: Sequence[str], rows: Sequence[Sequence[Any]], title: str = ""
) -> str:
    """Format rows as a fixed-width text table (what the benchmarks print)."""
    columns = [str(h) for h in headers]
    rendered_rows = [[_render(cell) for cell in row] for row in rows]
    widths = [len(header) for header in columns]
    for row in rendered_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(" | ".join(header.ljust(widths[i]) for i, header in enumerate(columns)))
    lines.append("-+-".join("-" * width for width in widths))
    for row in rendered_rows:
        lines.append(" | ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def _render(cell: Any) -> str:
    if isinstance(cell, float):
        return f"{cell:.3f}"
    return str(cell)
