"""Reproduction of KGLiDS (ICDE 2024): semantic abstraction, linking, and
automation of data science.

The top-level package re-exports the most commonly used entry points:

* :class:`repro.tabular.Table` -- the tabular data container used throughout.
* :class:`repro.interfaces.KGLiDS` -- the user-facing API over the LiDS graph.
* :class:`repro.kg.KGGovernor` -- builds the LiDS graph from datasets and
  pipeline scripts.
"""

from repro.tabular import Column, Table
from repro.version import __version__

__all__ = ["Column", "Table", "__version__"]
