"""AutoLearn-style regression-based feature generation.

AutoLearn discovers pairwise correlated features with distance correlation,
splits them into linearly and non-linearly correlated pairs, generates new
features by regressing one feature on the other (predicted values and
residuals become features), and finally selects informative features.  The
cost is quadratic in the number of features and linear in the number of rows,
which is why the paper observes timeouts on wide datasets — the reproduction
keeps that cost profile and exposes a time budget so the harness can report
``TO`` the same way.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np
from scipy.spatial.distance import pdist, squareform
from scipy.stats import pearsonr

from repro.tabular import Column, Table


class AutoLearnTimeout(RuntimeError):
    """Raised when feature generation exceeds the configured time budget."""


@dataclass
class AutoLearnReport:
    """What AutoLearn did on one dataset."""

    correlated_pairs: int = 0
    linear_pairs: int = 0
    nonlinear_pairs: int = 0
    generated_features: int = 0
    selected_features: int = 0


def distance_correlation(x: np.ndarray, y: np.ndarray) -> float:
    """Distance correlation between two feature vectors (Székely et al.)."""
    x = np.asarray(x, dtype=float).reshape(-1, 1)
    y = np.asarray(y, dtype=float).reshape(-1, 1)
    n = x.shape[0]
    if n < 4:
        return 0.0
    a = squareform(pdist(x))
    b = squareform(pdist(y))
    a_centered = a - a.mean(axis=0) - a.mean(axis=1)[:, None] + a.mean()
    b_centered = b - b.mean(axis=0) - b.mean(axis=1)[:, None] + b.mean()
    dcov2 = (a_centered * b_centered).mean()
    dvar_x = (a_centered * a_centered).mean()
    dvar_y = (b_centered * b_centered).mean()
    if dvar_x <= 0.0 or dvar_y <= 0.0:
        return 0.0
    return float(np.sqrt(max(0.0, dcov2) / np.sqrt(dvar_x * dvar_y)))


class AutoLearn:
    """Automated feature generation and selection."""

    def __init__(
        self,
        correlation_threshold: float = 0.3,
        linear_threshold: float = 0.7,
        max_rows_for_dcor: int = 400,
        time_budget_seconds: Optional[float] = None,
    ):
        self.correlation_threshold = correlation_threshold
        self.linear_threshold = linear_threshold
        self.max_rows_for_dcor = max_rows_for_dcor
        self.time_budget_seconds = time_budget_seconds
        self.report = AutoLearnReport()

    # ------------------------------------------------------------------- API
    def transform(self, table: Table, target: str) -> Table:
        """Return ``table`` augmented with regression-generated features.

        Raises :class:`AutoLearnTimeout` when the time budget is exceeded,
        which the evaluation harness reports as ``TO`` (Table 6).
        """
        started = time.perf_counter()
        self.report = AutoLearnReport()
        feature_names = [
            column.name
            for column in table.columns
            if column.name != target and column.dtype in ("int", "float")
        ]
        matrix = {
            name: self._filled(table.column(name).to_float_array()) for name in feature_names
        }
        augmented = table.copy()
        n_rows = table.num_rows
        subsample = None
        if n_rows > self.max_rows_for_dcor:
            subsample = np.random.RandomState(0).choice(n_rows, size=self.max_rows_for_dcor, replace=False)
        generated = 0
        for i, name_a in enumerate(feature_names):
            for name_b in feature_names[i + 1 :]:
                self._check_budget(started)
                x, y = matrix[name_a], matrix[name_b]
                if subsample is not None:
                    dcor = distance_correlation(x[subsample], y[subsample])
                else:
                    dcor = distance_correlation(x, y)
                if dcor < self.correlation_threshold:
                    continue
                self.report.correlated_pairs += 1
                linear = abs(pearsonr(x, y)[0]) >= self.linear_threshold
                if linear:
                    self.report.linear_pairs += 1
                    predicted, residual = self._linear_regression_features(x, y)
                else:
                    self.report.nonlinear_pairs += 1
                    predicted, residual = self._kernel_regression_features(x, y)
                augmented.add_column(
                    Column(f"gen_{name_a}_{name_b}_pred", [float(v) for v in predicted]),
                    overwrite=True,
                )
                augmented.add_column(
                    Column(f"gen_{name_a}_{name_b}_res", [float(v) for v in residual]),
                    overwrite=True,
                )
                generated += 2
        self.report.generated_features = generated
        selected = self._select_features(augmented, target, started)
        self.report.selected_features = len(selected)
        keep = [c for c in augmented.column_names if not c.startswith("gen_") or c in selected]
        return augmented.select(keep)

    # -------------------------------------------------------------- internals
    def _check_budget(self, started: float) -> None:
        if self.time_budget_seconds is not None and time.perf_counter() - started > self.time_budget_seconds:
            raise AutoLearnTimeout(
                f"AutoLearn exceeded its time budget of {self.time_budget_seconds} seconds"
            )

    @staticmethod
    def _filled(values: np.ndarray) -> np.ndarray:
        finite = values[np.isfinite(values)]
        fill = float(finite.mean()) if finite.size else 0.0
        return np.where(np.isfinite(values), values, fill)

    @staticmethod
    def _linear_regression_features(x: np.ndarray, y: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        design = np.column_stack([x, np.ones_like(x)])
        coefficients, *_ = np.linalg.lstsq(design, y, rcond=None)
        predicted = design @ coefficients
        return predicted, y - predicted

    @staticmethod
    def _kernel_regression_features(x: np.ndarray, y: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Nadaraya-Watson kernel regression of y on x (non-linear pairs)."""
        spread = np.std(x) or 1.0
        bandwidth = 1.06 * spread * max(len(x), 2) ** (-1.0 / 5.0) or 1.0
        differences = (x[:, None] - x[None, :]) / bandwidth
        weights = np.exp(-0.5 * differences**2)
        weights_sum = weights.sum(axis=1)
        weights_sum[weights_sum == 0.0] = 1.0
        predicted = (weights @ y) / weights_sum
        return predicted, y - predicted

    def _select_features(self, table: Table, target: str, started: float) -> List[str]:
        """Keep generated features whose absolute correlation with the target
        is at least as strong as the median original feature's."""
        self._check_budget(started)
        y = table.target_vector(target).astype(float)
        original_scores: List[float] = []
        generated_scores: Dict[str, float] = {}
        for column in table.columns:
            if column.name == target or column.dtype not in ("int", "float"):
                continue
            x = self._filled(column.to_float_array())
            if np.std(x) == 0.0 or np.std(y) == 0.0:
                score = 0.0
            else:
                score = abs(pearsonr(x, y)[0])
            if column.name.startswith("gen_"):
                generated_scores[column.name] = score
            else:
                original_scores.append(score)
        cutoff = float(np.median(original_scores)) if original_scores else 0.0
        return [name for name, score in generated_scores.items() if score >= cutoff]
