"""HoloClean (Aimnet)-style statistical missing-value repair.

HoloClean treats cleaning as probabilistic inference over the raw dataset: it
builds per-attribute domains, learns attribute-to-attribute dependency
weights (the Aimnet variant replaces user-supplied denial constraints with an
attention mechanism over co-occurrence statistics), and predicts each missing
cell from the observed cells of its row.  The reproduction keeps those
mechanics — full-dataset co-occurrence tables, per-cell candidate domains,
weighted voting — which is precisely why its memory footprint grows with the
dataset while KGLiDS' fixed-size-embedding approach does not (Figure 7).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.tabular import Column, Table
from repro.tabular.values import coerce_float, is_missing


@dataclass
class _AttributeModel:
    """Learned statistics for one attribute."""

    domain: List[Any] = field(default_factory=list)
    #: co_occurrence[(other attribute, other value)][candidate value] -> count
    co_occurrence: Dict[Tuple[str, Any], Dict[Any, int]] = field(default_factory=dict)
    frequencies: Dict[Any, int] = field(default_factory=dict)


class HoloCleanAimnet:
    """Statistical cell repair over the full raw dataset."""

    def __init__(self, max_domain_size: int = 50, numeric_bins: int = 20):
        self.max_domain_size = max_domain_size
        self.numeric_bins = numeric_bins
        self._models: Dict[str, _AttributeModel] = {}
        self._bin_edges: Dict[str, np.ndarray] = {}

    # ------------------------------------------------------------------- API
    def clean(self, table: Table) -> Table:
        """Return a copy of ``table`` with missing cells repaired."""
        self._fit(table)
        repaired = table.copy()
        for column in repaired.columns:
            if not column.has_missing():
                continue
            new_values = list(column.values)
            for row_index, value in enumerate(column.values):
                if not is_missing(value):
                    continue
                prediction = self._predict_cell(table, column.name, row_index)
                new_values[row_index] = prediction
            repaired.set_column(Column(column.name, new_values))
        return repaired

    # ------------------------------------------------------------------ fit
    def _fit(self, table: Table) -> None:
        self._models = {}
        self._bin_edges = {}
        observed: Dict[str, List[Any]] = {}
        for column in table.columns:
            model = _AttributeModel()
            values = [self._canonical(column, v) for v in column.values]
            observed[column.name] = values
            for value in values:
                if value is None:
                    continue
                model.frequencies[value] = model.frequencies.get(value, 0) + 1
            model.domain = [
                value
                for value, _ in sorted(model.frequencies.items(), key=lambda item: -item[1])[
                    : self.max_domain_size
                ]
            ]
            self._models[column.name] = model
        # Pairwise co-occurrence statistics across every attribute pair and row
        # (this is the dataset-size-proportional state HoloClean carries).
        column_names = table.column_names
        for target_name in column_names:
            model = self._models[target_name]
            for other_name in column_names:
                if other_name == target_name:
                    continue
                for row_index in range(table.num_rows):
                    target_value = observed[target_name][row_index]
                    other_value = observed[other_name][row_index]
                    if target_value is None or other_value is None:
                        continue
                    key = (other_name, other_value)
                    bucket = model.co_occurrence.setdefault(key, {})
                    bucket[target_value] = bucket.get(target_value, 0) + 1

    def _canonical(self, column: Column, value: Any) -> Optional[Any]:
        """Canonical cell value: numeric cells are binned, others stringified."""
        if is_missing(value):
            return None
        if column.dtype in ("int", "float"):
            numeric = coerce_float(value)
            if numeric is None:
                return None
            edges = self._numeric_edges(column)
            bin_index = int(np.searchsorted(edges, numeric, side="right"))
            return f"bin_{bin_index}"
        return str(value)

    def _numeric_edges(self, column: Column) -> np.ndarray:
        if column.name not in self._bin_edges:
            numeric = np.asarray(column.numeric_values(), dtype=float)
            if numeric.size == 0:
                self._bin_edges[column.name] = np.array([0.0])
            else:
                quantiles = np.linspace(0, 100, self.numeric_bins + 1)[1:-1]
                self._bin_edges[column.name] = np.unique(np.percentile(numeric, quantiles))
        return self._bin_edges[column.name]

    # --------------------------------------------------------------- predict
    def _predict_cell(self, table: Table, attribute: str, row_index: int) -> Any:
        model = self._models[attribute]
        if not model.domain:
            return None
        scores: Dict[Any, float] = defaultdict(float)
        for other in table.columns:
            if other.name == attribute:
                continue
            other_value = self._canonical(other, other[row_index])
            if other_value is None:
                continue
            bucket = model.co_occurrence.get((other.name, other_value))
            if not bucket:
                continue
            total = sum(bucket.values())
            for candidate, count in bucket.items():
                scores[candidate] += count / total
        if not scores:
            best = model.domain[0]
        else:
            best = max(scores.items(), key=lambda item: item[1])[0]
        return self._decode(table.column(attribute), best)

    def _decode(self, column: Column, canonical: Any) -> Any:
        """Map a canonical (binned) prediction back to a concrete cell value."""
        if column.dtype in ("int", "float") and isinstance(canonical, str) and canonical.startswith("bin_"):
            numeric = np.asarray(column.numeric_values(), dtype=float)
            if numeric.size == 0:
                return 0.0
            edges = self._numeric_edges(column)
            bin_index = int(canonical.split("_")[1])
            lower = edges[bin_index - 1] if bin_index - 1 >= 0 and edges.size else numeric.min()
            upper = edges[bin_index] if bin_index < edges.size else numeric.max()
            members = numeric[(numeric >= lower) & (numeric <= upper)]
            value = float(members.mean()) if members.size else float(numeric.mean())
            return int(round(value)) if column.dtype == "int" else value
        return canonical
