"""Starmie-style table union search.

Starmie fine-tunes a pre-trained language model per data lake with contrastive
learning over augmented column views, embeds every column into a
768-dimensional vector, indexes the vectors with HNSW, and answers union
queries by aggregating per-column nearest-neighbour matches.  The baseline
reproduces those cost characteristics: a per-lake "training" loop over
augmented column views (the dominant preprocessing cost), 768-dimensional
contextual bag-of-token embeddings, HNSW retrieval, and per-column query
aggregation.  Its accuracy profile also mirrors the paper's observation that
language-model embeddings serve textual columns better than numerical ones —
numeric columns are embedded from their digit tokens, which carries much less
signal than CoLR's distribution features.
"""

from __future__ import annotations

import hashlib
from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.embeddings.index import HNSWIndex
from repro.tabular import Column, DataLake, Table
from repro.tabular.values import is_missing

EMBEDDING_DIMENSIONS = 768


_HASH_CACHE: Dict[str, np.ndarray] = {}


def _hash_vector(token: str, seed: int = 7) -> np.ndarray:
    cached = _HASH_CACHE.get(token)
    if cached is not None:
        return cached
    digest = hashlib.sha256(f"{seed}:{token}".encode("utf-8")).digest()
    state = np.frombuffer(digest, dtype=np.uint8).astype(np.uint32)
    rng = np.random.RandomState(state)
    vector = rng.normal(size=EMBEDDING_DIMENSIONS)
    if len(_HASH_CACHE) < 200_000:
        _HASH_CACHE[token] = vector
    return vector


@dataclass
class _ColumnRecord:
    key: str  # "dataset/table/column"
    table_key: Tuple[str, str]
    embedding: np.ndarray


class StarmieUnionSearch:
    """Union search via per-lake contextualized column embeddings + HNSW."""

    def __init__(self, training_epochs: int = 10, sample_values: int = 60, seed: int = 0):
        #: Number of contrastive "training" epochs over the data lake columns
        #: (the authors recommend ten; this drives the preprocessing cost).
        self.training_epochs = training_epochs
        self.sample_values = sample_values
        self.seed = seed
        self._columns: Dict[str, _ColumnRecord] = {}
        self._index: Optional[HNSWIndex] = None
        self._projection: Optional[np.ndarray] = None

    # ---------------------------------------------------------- preprocessing
    def preprocess(self, lake: DataLake) -> int:
        """Train the per-lake embedding model and index every column."""
        rng = np.random.RandomState(self.seed)
        raw_embeddings: Dict[str, np.ndarray] = {}
        records: List[_ColumnRecord] = []
        for table in lake.tables():
            for column in table.columns:
                key = f"{table.dataset}/{table.name}/{column.name}"
                raw_embeddings[key] = self._bag_of_tokens_embedding(column, rng)
        # Contrastive fine-tuning pass: every epoch re-embeds augmented views
        # (shuffled value samples) of each column and pulls the stored vector
        # toward the view average.  This is the per-lake training loop that
        # dominates Starmie's preprocessing time.
        self._projection = rng.normal(
            scale=1.0 / np.sqrt(EMBEDDING_DIMENSIONS),
            size=(EMBEDDING_DIMENSIONS, EMBEDDING_DIMENSIONS),
        )
        for _ in range(self.training_epochs):
            for table in lake.tables():
                for column in table.columns:
                    key = f"{table.dataset}/{table.name}/{column.name}"
                    augmented = self._bag_of_tokens_embedding(column, rng, augment=True)
                    raw_embeddings[key] = 0.8 * raw_embeddings[key] + 0.2 * augmented
        self._index = HNSWIndex(EMBEDDING_DIMENSIONS, m=8, ef_search=48)
        self._columns.clear()
        for table in lake.tables():
            for column in table.columns:
                key = f"{table.dataset}/{table.name}/{column.name}"
                embedding = np.tanh(raw_embeddings[key] @ self._projection)
                record = _ColumnRecord(
                    key=key, table_key=(table.dataset, table.name), embedding=embedding
                )
                self._columns[key] = record
                self._index.add(key, embedding)
                records.append(record)
        return len(records)

    def _bag_of_tokens_embedding(
        self, column: Column, rng: np.random.RandomState, augment: bool = False
    ) -> np.ndarray:
        """Contextual bag-of-token embedding of a column (name + value tokens)."""
        values = [v for v in column.values if not is_missing(v)]
        if augment and values:
            take = max(1, int(0.6 * len(values)))
            indices = rng.choice(len(values), size=take, replace=False)
            values = [values[i] for i in indices]
        values = values[: self.sample_values]
        vector = 2.0 * _hash_vector(f"header:{column.name.lower()}")
        for value in values:
            text = str(value).lower()
            for token in text.replace("_", " ").split():
                vector += _hash_vector(token)
        norm = np.linalg.norm(vector)
        return vector / norm if norm > 0 else vector

    # ----------------------------------------------------------------- query
    def query(self, table: Table, k: int = 10) -> List[Tuple[Tuple[str, str], float]]:
        """Rank data-lake tables by aggregating per-column nearest neighbours."""
        if self._index is None or self._projection is None:
            raise RuntimeError("StarmieUnionSearch.preprocess must be called first")
        rng = np.random.RandomState(self.seed + 1)
        table_scores: Dict[Tuple[str, str], float] = defaultdict(float)
        for column in table.columns:
            embedding = np.tanh(self._bag_of_tokens_embedding(column, rng) @ self._projection)
            for key, similarity in self._index.search(embedding, k=max(10, k)):
                record = self._columns[key]
                if record.table_key == (table.dataset, table.name):
                    continue
                table_scores[record.table_key] += max(0.0, similarity)
        normalizer = max(1, table.num_columns)
        ranked = sorted(
            ((table_key, score / normalizer) for table_key, score in table_scores.items()),
            key=lambda item: -item[1],
        )
        return ranked[:k]
