"""SANTOS-style table union search.

SANTOS assigns column (and column-pair) semantics by matching every cell
value against two knowledge bases — an open KB (YAGO in the original; a
gazetteer here) and a KB *synthesized from the data lake itself* — and by
recording, for every pair of columns of a table, the relationships between
their value pairs row by row.  Union candidates are retrieved through the
relationship indexes and scored by comparing the query table's relationship
signatures against each candidate at value-pair granularity.

That value-granularity work (both offline and at query time) is exactly what
the paper identifies as the reason SANTOS is the slowest of the three systems
in Table 2; the reproduction keeps the same cost structure rather than
emulating it with sleeps.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.profiler.ner import NamedEntityRecognizer
from repro.tabular import Column, DataLake, Table
from repro.tabular.values import is_missing


@dataclass
class _TableSignature:
    """Semantic signature of one table."""

    table_key: Tuple[str, str]
    #: Column name -> semantic type string (open KB | synthesized KB | dtype).
    column_types: Dict[str, str] = field(default_factory=dict)
    #: Column-pair semantic relationships (unordered pairs of column types).
    relationships: Set[Tuple[str, str]] = field(default_factory=set)
    #: Value-pair relationship signatures per column-type pair.
    value_relationships: Dict[Tuple[str, str], Set[Tuple[str, str]]] = field(default_factory=dict)


class SantosUnionSearch:
    """Union search via open-KB + synthesized-KB relationship matching."""

    def __init__(
        self,
        ner: Optional[NamedEntityRecognizer] = None,
        intent_column_index: int = 0,
        max_value_pairs_per_column_pair: int = 500,
    ):
        self.ner = ner or NamedEntityRecognizer()
        #: SANTOS requires an "intent column" per table; following the paper's
        #: setup for D3L we use the first column by default.
        self.intent_column_index = intent_column_index
        self.max_value_pairs_per_column_pair = max_value_pairs_per_column_pair
        self._signatures: Dict[Tuple[str, str], _TableSignature] = {}
        #: Synthesized KB: value -> semantic type, built during preprocessing.
        self._synthesized_kb: Dict[str, str] = {}
        #: Inverted index: column-type relationship -> tables containing it.
        self._relationship_index: Dict[Tuple[str, str], Set[Tuple[str, str]]] = defaultdict(set)

    # ---------------------------------------------------------- preprocessing
    def preprocess(self, lake: DataLake) -> int:
        """Build the synthesized KB and per-table signatures; returns #tables."""
        self._signatures.clear()
        self._synthesized_kb.clear()
        self._relationship_index.clear()
        # First pass: populate the synthesized KB from every cell value.
        for table in lake.tables():
            for column in table.columns:
                semantic = self._column_semantic_type(column)
                for value in column.values:
                    if is_missing(value):
                        continue
                    self._synthesized_kb.setdefault(str(value).lower(), semantic)
        # Second pass: signatures per table (value-level lookups again, plus
        # value-pair relationship extraction per column pair).
        for table in lake.tables():
            signature = self._build_signature(table)
            self._signatures[signature.table_key] = signature
            for relationship in signature.relationships:
                self._relationship_index[relationship].add(signature.table_key)
        return len(self._signatures)

    def _column_semantic_type(self, column: Column) -> str:
        """Open-KB (gazetteer) semantic type of a column via value-level voting."""
        votes: Dict[str, int] = defaultdict(int)
        for value in column.values:
            if is_missing(value):
                continue
            if isinstance(value, bool):
                votes["boolean"] += 1
            elif isinstance(value, (int, float)):
                votes["numeric"] += 1
            else:
                entity = self.ner.recognize(str(value))
                votes[entity or "text"] += 1
        if not votes:
            return "empty"
        return max(votes.items(), key=lambda item: item[1])[0]

    def _build_signature(self, table: Table) -> _TableSignature:
        signature = _TableSignature(table_key=(table.dataset, table.name))
        canonical_values: Dict[str, List[Optional[str]]] = {}
        for column in table.columns:
            # SANTOS consults both KBs per value; emulate the double lookup.
            synthesized_votes: Dict[str, int] = defaultdict(int)
            canonical: List[Optional[str]] = []
            for value in column.values:
                if is_missing(value):
                    canonical.append(None)
                    continue
                text = str(value).lower()
                canonical.append(text)
                kb_type = self._synthesized_kb.get(text)
                if kb_type is not None:
                    synthesized_votes[kb_type] += 1
            open_type = self._column_semantic_type(column)
            synthesized_type = (
                max(synthesized_votes.items(), key=lambda item: item[1])[0]
                if synthesized_votes
                else open_type
            )
            signature.column_types[column.name] = f"{open_type}|{synthesized_type}|{column.dtype}"
            canonical_values[column.name] = canonical
        column_names = list(signature.column_types.keys())
        types = [signature.column_types[name] for name in column_names]
        intent_index = min(self.intent_column_index, len(types) - 1) if types else 0
        # Column-pair relationships plus the value-pair signatures behind them.
        for i, name_a in enumerate(column_names):
            for j in range(i + 1, len(column_names)):
                name_b = column_names[j]
                relationship = tuple(sorted((types[i], types[j])))
                signature.relationships.add(relationship)
                pairs = signature.value_relationships.setdefault(relationship, set())
                values_a = canonical_values[name_a]
                values_b = canonical_values[name_b]
                for row_index in range(len(values_a)):
                    if len(pairs) >= self.max_value_pairs_per_column_pair:
                        break
                    value_a, value_b = values_a[row_index], values_b[row_index]
                    if value_a is None or value_b is None:
                        continue
                    pairs.add((value_a, value_b) if value_a <= value_b else (value_b, value_a))
        if types:
            signature.relationships.add(("__intent__", types[intent_index]))
        return signature

    # ----------------------------------------------------------------- query
    def query(self, table: Table, k: int = 10) -> List[Tuple[Tuple[str, str], float]]:
        """Rank data-lake tables by unionability with the query table."""
        query_signature = self._build_signature(table)
        candidates: Set[Tuple[str, str]] = set()
        for relationship in query_signature.relationships:
            candidates.update(self._relationship_index.get(relationship, set()))
        scored: List[Tuple[Tuple[str, str], float]] = []
        for candidate_key in candidates:
            if candidate_key == query_signature.table_key:
                continue
            candidate = self._signatures[candidate_key]
            scored.append((candidate_key, self._score(query_signature, candidate)))
        scored.sort(key=lambda item: -item[1])
        return scored[:k]

    def _score(self, query: _TableSignature, candidate: _TableSignature) -> float:
        """Relationship overlap refined by value-pair overlap per relationship."""
        if not query.relationships or not candidate.relationships:
            return 0.0
        shared = query.relationships & candidate.relationships
        union = query.relationships | candidate.relationships
        relationship_score = len(shared) / len(union)
        # Value-granularity confirmation: for each shared relationship compare
        # the value-pair signatures (this is the expensive per-query part).
        value_scores: List[float] = []
        for relationship in shared:
            query_pairs = query.value_relationships.get(relationship, set())
            candidate_pairs = candidate.value_relationships.get(relationship, set())
            if not query_pairs or not candidate_pairs:
                continue
            overlap = len(query_pairs & candidate_pairs)
            value_scores.append(overlap / max(1, min(len(query_pairs), len(candidate_pairs))))
        value_score = sum(value_scores) / len(value_scores) if value_scores else 0.0
        query_types = sorted(query.column_types.values())
        candidate_types = sorted(candidate.column_types.values())
        matched = 0
        remaining = list(candidate_types)
        for column_type in query_types:
            if column_type in remaining:
                remaining.remove(column_type)
                matched += 1
        type_score = matched / max(len(query_types), len(candidate_types), 1)
        return 0.4 * relationship_score + 0.3 * type_score + 0.3 * value_score

    # ------------------------------------------------------------- statistics
    @property
    def kb_size(self) -> int:
        """Number of entries in the synthesized knowledge base."""
        return len(self._synthesized_kb)
