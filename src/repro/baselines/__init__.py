"""Re-implementations of the comparison systems used in the evaluation.

Each baseline follows the published matching / cleaning / transformation
strategy of the original system closely enough that the *relative* behaviour
the paper reports (who is faster, who uses more memory, where accuracy
diverges) emerges from the algorithms themselves rather than from hard-coded
constants:

* :mod:`repro.baselines.santos` — SANTOS-style union search via knowledge-base
  matching of column values and column-pair relationship signatures.
* :mod:`repro.baselines.starmie` — Starmie-style union search via per-lake
  contextual column embeddings with an HNSW index.
* :mod:`repro.baselines.graphgen4code` — GraphGen4Code-style general-purpose
  code knowledge graphs (verbose, not data-science specific).
* :mod:`repro.baselines.holoclean` — HoloClean/Aimnet-style statistical
  missing-value repair over the raw dataset.
* :mod:`repro.baselines.autolearn` — AutoLearn-style distance-correlation
  feature generation.
"""

from repro.baselines.autolearn import AutoLearn
from repro.baselines.graphgen4code import GraphGen4Code
from repro.baselines.holoclean import HoloCleanAimnet
from repro.baselines.santos import SantosUnionSearch
from repro.baselines.starmie import StarmieUnionSearch

__all__ = [
    "SantosUnionSearch",
    "StarmieUnionSearch",
    "GraphGen4Code",
    "HoloCleanAimnet",
    "AutoLearn",
]
