"""GraphGen4Code-style general-purpose code knowledge graphs.

GraphGen4Code abstracts arbitrary source code (via WALA) into a verbose RDF
graph: every expression becomes a node, statements carry their source
locations, positional parameters are modelled with explicit ordering triples,
and local variable names are materialized.  None of that is specific to data
science, which is why its graphs are an order of magnitude larger than the
LiDS graph and take far longer to produce (Tables 3 and 4), and why the
AutoML pipeline built on it lacks hyperparameter *names* (only positional
order is recorded).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.pipelines.abstraction import PipelineScript
from repro.rdf import KGLIDS_RESOURCE, Literal, QuadStore, RDF, URIRef
from repro.rdf.namespace import Namespace

#: Namespace used by the generated general-purpose code graphs.
G4C = Namespace("http://purl.org/twc/graph4code/")

#: The modelled aspects reported in Table 4, in report order.
G4C_ASPECTS = (
    "statement_location",
    "variable_names",
    "func_parameter_order",
    "column_reads",
    "library_calls",
    "code_flow",
    "data_flow",
    "control_flow_type",
    "func_parameters",
    "statement_text",
)


@dataclass
class G4CReport:
    """Size/time bookkeeping for one corpus abstraction run."""

    num_pipelines: int = 0
    triples_by_aspect: Dict[str, int] = field(default_factory=dict)

    @property
    def total_triples(self) -> int:
        return sum(self.triples_by_aspect.values())


class GraphGen4Code:
    """Generates a verbose, general-purpose code KG for pipeline scripts."""

    def __init__(self):
        self.report = G4CReport()

    # ------------------------------------------------------------------- API
    def abstract_scripts(
        self, scripts: Sequence[PipelineScript], store: Optional[QuadStore] = None
    ) -> QuadStore:
        """Abstract a corpus of scripts into a quad store (one graph per script)."""
        store = store or QuadStore()
        self.report = G4CReport(num_pipelines=len(scripts))
        self.report.triples_by_aspect = {aspect: 0 for aspect in G4C_ASPECTS}
        for script in scripts:
            self._abstract_script(script, store)
        return store

    # -------------------------------------------------------------- internals
    def _abstract_script(self, script: PipelineScript, store: QuadStore) -> None:
        graph = G4C.term(f"graph/{script.pipeline_id}")
        try:
            tree = ast.parse(script.source_code)
        except SyntaxError:
            return
        statement_index = 0
        previous_statement: Optional[URIRef] = None
        variable_definitions: Dict[str, URIRef] = {}
        for node in ast.walk(tree):
            if not isinstance(node, ast.stmt):
                continue
            statement_index += 1
            statement_node = G4C.term(f"{script.pipeline_id}/stmt{statement_index}")
            text = ast.unparse(node) if hasattr(ast, "unparse") else ""
            self._add(store, graph, statement_node, RDF.type, G4C.Statement, None)
            self._add(
                store, graph, statement_node, G4C.sourceText, Literal(text), "statement_text"
            )
            # Source locations (line and column, start and end) — local
            # syntactic information KGLiDS deliberately does not keep.
            for predicate, value in (
                (G4C.startsAtLine, getattr(node, "lineno", 0)),
                (G4C.endsAtLine, getattr(node, "end_lineno", 0) or 0),
                (G4C.startsAtColumn, getattr(node, "col_offset", 0)),
                (G4C.endsAtColumn, getattr(node, "end_col_offset", 0) or 0),
            ):
                self._add(
                    store, graph, statement_node, predicate, Literal(int(value)), "statement_location"
                )
            control = "loop" if isinstance(node, (ast.For, ast.While)) else (
                "conditional" if isinstance(node, ast.If) else "module"
            )
            self._add(
                store, graph, statement_node, G4C.controlFlowType, Literal(control), "control_flow_type"
            )
            if previous_statement is not None:
                self._add(
                    store, graph, previous_statement, G4C.flowsTo, statement_node, "code_flow"
                )
            previous_statement = statement_node
            self._abstract_statement_body(
                script, node, statement_node, statement_index, store, graph, variable_definitions
            )

    def _abstract_statement_body(
        self,
        script: PipelineScript,
        node: ast.stmt,
        statement_node: URIRef,
        statement_index: int,
        store: QuadStore,
        graph: URIRef,
        variable_definitions: Dict[str, URIRef],
    ) -> None:
        expression_index = 0
        # WALA-style expression-level flow: every sub-expression becomes a node
        # chained by evaluation-order flow edges.  This is the bulk of the
        # verbosity gap between GraphGen4Code and the LiDS graph.
        previous_expression: Optional[URIRef] = None
        expression_counter = 0
        for sub in ast.walk(node):
            if isinstance(sub, ast.expr):
                expression_counter += 1
                expression_node = G4C.term(
                    f"{script.pipeline_id}/stmt{statement_index}/expr{expression_counter}"
                )
                self._add(
                    store,
                    graph,
                    expression_node,
                    G4C.partOfStatement,
                    statement_node,
                    "code_flow",
                )
                if previous_expression is not None:
                    self._add(
                        store, graph, previous_expression, G4C.flowsTo, expression_node, "code_flow"
                    )
                previous_expression = expression_node
        for sub in ast.walk(node):
            if isinstance(sub, ast.Name):
                variable_node = G4C.term(f"{script.pipeline_id}/var/{sub.id}")
                self._add(
                    store, graph, variable_node, G4C.hasVariableName, Literal(sub.id), "variable_names"
                )
                if isinstance(sub.ctx, ast.Store):
                    variable_definitions[sub.id] = statement_node
                elif sub.id in variable_definitions:
                    self._add(
                        store,
                        graph,
                        variable_definitions[sub.id],
                        G4C.dataFlowsTo,
                        statement_node,
                        "data_flow",
                    )
            elif isinstance(sub, ast.Subscript):
                slice_node = sub.slice
                if isinstance(slice_node, ast.Constant) and isinstance(slice_node.value, str):
                    self._add(
                        store,
                        graph,
                        statement_node,
                        G4C.readsColumn,
                        Literal(slice_node.value),
                        "column_reads",
                    )
            elif isinstance(sub, ast.Call):
                expression_index += 1
                call_text = ast.unparse(sub.func) if hasattr(ast, "unparse") else "call"
                call_node = G4C.term(
                    f"{script.pipeline_id}/stmt{statement_index}/call{expression_index}"
                )
                self._add(store, graph, statement_node, G4C.invokes, call_node, "library_calls")
                self._add(
                    store, graph, call_node, G4C.calls, Literal(call_text), "library_calls"
                )
                for position, argument in enumerate(sub.args):
                    argument_node = G4C.term(
                        f"{script.pipeline_id}/stmt{statement_index}/call{expression_index}/arg{position}"
                    )
                    self._add(
                        store, graph, call_node, G4C.hasPositionalArgument, argument_node, "func_parameters"
                    )
                    self._add(
                        store,
                        graph,
                        argument_node,
                        G4C.hasParameterOrder,
                        Literal(position),
                        "func_parameter_order",
                    )
                    self._add(
                        store,
                        graph,
                        argument_node,
                        G4C.precededBy,
                        Literal(max(0, position - 1)),
                        "func_parameter_order",
                    )
                for keyword in sub.keywords:
                    if keyword.arg is None:
                        continue
                    argument_node = G4C.term(
                        f"{script.pipeline_id}/stmt{statement_index}/call{expression_index}/kw_{keyword.arg}"
                    )
                    self._add(
                        store, graph, call_node, G4C.hasKeywordArgument, argument_node, "func_parameters"
                    )

    def _add(
        self,
        store: QuadStore,
        graph: URIRef,
        subject,
        predicate,
        obj,
        aspect: Optional[str],
    ) -> None:
        inserted = store.add(subject, predicate, obj, graph=graph)
        if inserted and aspect is not None:
            self.report.triples_by_aspect[aspect] = self.report.triples_by_aspect.get(aspect, 0) + 1
