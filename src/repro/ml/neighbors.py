"""K-nearest-neighbour classification."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.ml.base import BaseEstimator, ClassifierMixin


class KNeighborsClassifier(BaseEstimator, ClassifierMixin):
    """Majority-vote k-NN with euclidean distance on standardized features."""

    def __init__(self, n_neighbors: int = 5):
        self.n_neighbors = n_neighbors
        self.classes_: Optional[np.ndarray] = None
        self._X: Optional[np.ndarray] = None
        self._y: Optional[np.ndarray] = None
        self._mean: Optional[np.ndarray] = None
        self._std: Optional[np.ndarray] = None

    def fit(self, X, y) -> "KNeighborsClassifier":
        X = np.asarray(X, dtype=float)
        y = np.asarray(list(y))
        self._mean = X.mean(axis=0)
        std = X.std(axis=0)
        self._std = np.where(std == 0.0, 1.0, std)
        self._X = (X - self._mean) / self._std
        self._y = y
        self.classes_ = np.unique(y)
        return self

    def predict(self, X) -> np.ndarray:
        if self._X is None or self._y is None:
            raise RuntimeError("KNeighborsClassifier is not fitted")
        X = np.asarray(X, dtype=float)
        X = (X - self._mean) / self._std
        k = min(self.n_neighbors, self._X.shape[0])
        predictions = []
        for row in X:
            distances = np.sqrt(np.sum((self._X - row) ** 2, axis=1))
            nearest = np.argsort(distances)[:k]
            labels, counts = np.unique(self._y[nearest], return_counts=True)
            predictions.append(labels[np.argmax(counts)])
        return np.asarray(predictions)

    def predict_proba(self, X) -> np.ndarray:
        if self._X is None or self._y is None or self.classes_ is None:
            raise RuntimeError("KNeighborsClassifier is not fitted")
        X = np.asarray(X, dtype=float)
        X = (X - self._mean) / self._std
        k = min(self.n_neighbors, self._X.shape[0])
        index = {label: i for i, label in enumerate(self.classes_)}
        probabilities = np.zeros((X.shape[0], len(self.classes_)))
        for i, row in enumerate(X):
            distances = np.sqrt(np.sum((self._X - row) ** 2, axis=1))
            nearest = np.argsort(distances)[:k]
            for label in self._y[nearest]:
                probabilities[i, index[label]] += 1.0
            probabilities[i] /= k
        return probabilities
