"""Classification metrics: accuracy, precision, recall, F1, confusion matrix."""

from __future__ import annotations

from typing import Sequence

import numpy as np


def _as_labels(values: Sequence) -> np.ndarray:
    return np.asarray(list(values))


def accuracy_score(y_true: Sequence, y_pred: Sequence) -> float:
    """Fraction of predictions equal to the true labels."""
    y_true, y_pred = _as_labels(y_true), _as_labels(y_pred)
    if y_true.size == 0:
        return 0.0
    return float(np.mean(y_true == y_pred))


def confusion_matrix(y_true: Sequence, y_pred: Sequence):
    """Return ``(matrix, labels)`` where ``matrix[i, j]`` counts true label
    ``labels[i]`` predicted as ``labels[j]``."""
    y_true, y_pred = _as_labels(y_true), _as_labels(y_pred)
    labels = sorted(set(y_true.tolist()) | set(y_pred.tolist()), key=str)
    index = {label: i for i, label in enumerate(labels)}
    matrix = np.zeros((len(labels), len(labels)), dtype=int)
    for true, pred in zip(y_true, y_pred):
        matrix[index[true], index[pred]] += 1
    return matrix, labels


def _per_class_counts(y_true: np.ndarray, y_pred: np.ndarray, label) -> tuple:
    tp = int(np.sum((y_true == label) & (y_pred == label)))
    fp = int(np.sum((y_true != label) & (y_pred == label)))
    fn = int(np.sum((y_true == label) & (y_pred != label)))
    return tp, fp, fn


def _resolve_positive(y_true: np.ndarray, y_pred: np.ndarray, pos_label):
    if pos_label is not None:
        return pos_label
    labels = sorted(set(y_true.tolist()) | set(y_pred.tolist()), key=str)
    return labels[-1] if labels else 1


def precision_score(
    y_true: Sequence, y_pred: Sequence, average: str = "binary", pos_label=None
) -> float:
    """Precision for binary (``average='binary'``) or macro averaging."""
    y_true, y_pred = _as_labels(y_true), _as_labels(y_pred)
    if average == "binary":
        label = _resolve_positive(y_true, y_pred, pos_label)
        tp, fp, _ = _per_class_counts(y_true, y_pred, label)
        return tp / (tp + fp) if tp + fp else 0.0
    labels = sorted(set(y_true.tolist()), key=str)
    scores = []
    for label in labels:
        tp, fp, _ = _per_class_counts(y_true, y_pred, label)
        scores.append(tp / (tp + fp) if tp + fp else 0.0)
    return float(np.mean(scores)) if scores else 0.0


def recall_score(
    y_true: Sequence, y_pred: Sequence, average: str = "binary", pos_label=None
) -> float:
    """Recall for binary or macro averaging."""
    y_true, y_pred = _as_labels(y_true), _as_labels(y_pred)
    if average == "binary":
        label = _resolve_positive(y_true, y_pred, pos_label)
        tp, _, fn = _per_class_counts(y_true, y_pred, label)
        return tp / (tp + fn) if tp + fn else 0.0
    labels = sorted(set(y_true.tolist()), key=str)
    scores = []
    for label in labels:
        tp, _, fn = _per_class_counts(y_true, y_pred, label)
        scores.append(tp / (tp + fn) if tp + fn else 0.0)
    return float(np.mean(scores)) if scores else 0.0


def f1_score(
    y_true: Sequence, y_pred: Sequence, average: str = "binary", pos_label=None
) -> float:
    """F1 score.

    ``average='binary'`` scores the positive class only (like scikit-learn's
    default); ``'macro'`` averages per-class F1; ``'weighted'`` weights by
    class support.  The cleaning/AutoML experiments report macro/weighted F1
    for multi-class tasks and binary F1 otherwise.
    """
    y_true, y_pred = _as_labels(y_true), _as_labels(y_pred)
    if y_true.size == 0:
        return 0.0
    if average == "binary":
        label = _resolve_positive(y_true, y_pred, pos_label)
        tp, fp, fn = _per_class_counts(y_true, y_pred, label)
        precision = tp / (tp + fp) if tp + fp else 0.0
        recall = tp / (tp + fn) if tp + fn else 0.0
        if precision + recall == 0.0:
            return 0.0
        return 2 * precision * recall / (precision + recall)
    labels = sorted(set(y_true.tolist()), key=str)
    f1s, supports = [], []
    for label in labels:
        tp, fp, fn = _per_class_counts(y_true, y_pred, label)
        precision = tp / (tp + fp) if tp + fp else 0.0
        recall = tp / (tp + fn) if tp + fn else 0.0
        f1 = (
            2 * precision * recall / (precision + recall)
            if precision + recall
            else 0.0
        )
        f1s.append(f1)
        supports.append(int(np.sum(y_true == label)))
    if not f1s:
        return 0.0
    if average == "weighted":
        total = sum(supports)
        if total == 0:
            return 0.0
        return float(sum(f * s for f, s in zip(f1s, supports)) / total)
    return float(np.mean(f1s))
