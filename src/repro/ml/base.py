"""Estimator base classes: parameter handling, cloning and mixins."""

from __future__ import annotations

import copy
import inspect
from typing import Any, Dict


class BaseEstimator:
    """Minimal scikit-learn-style estimator base.

    Estimator hyperparameters are exactly the keyword arguments of
    ``__init__``; :meth:`get_params` / :meth:`set_params` and :func:`clone`
    rely on that convention, which is also what the AutoML component records
    in the LiDS graph (hyperparameter name/value pairs).
    """

    @classmethod
    def _param_names(cls) -> list:
        signature = inspect.signature(cls.__init__)
        return [
            name
            for name, parameter in signature.parameters.items()
            if name != "self" and parameter.kind != inspect.Parameter.VAR_KEYWORD
        ]

    def get_params(self) -> Dict[str, Any]:
        """Return the estimator hyperparameters as a dictionary."""
        return {name: getattr(self, name) for name in self._param_names()}

    def set_params(self, **params: Any) -> "BaseEstimator":
        """Set hyperparameters; unknown names raise ``ValueError``."""
        valid = set(self._param_names())
        for name, value in params.items():
            if name not in valid:
                raise ValueError(
                    f"invalid parameter {name!r} for {type(self).__name__}; "
                    f"valid parameters: {sorted(valid)}"
                )
            setattr(self, name, value)
        return self

    def __repr__(self) -> str:
        params = ", ".join(f"{k}={v!r}" for k, v in self.get_params().items())
        return f"{type(self).__name__}({params})"


def clone(estimator: BaseEstimator) -> BaseEstimator:
    """Return an unfitted copy of ``estimator`` with the same hyperparameters."""
    return type(estimator)(**copy.deepcopy(estimator.get_params()))


class ClassifierMixin:
    """Adds a default ``score`` (accuracy) to classifiers."""

    def score(self, X, y) -> float:
        from repro.ml.metrics import accuracy_score

        return accuracy_score(y, self.predict(X))


class RegressorMixin:
    """Adds a default ``score`` (R^2) to regressors."""

    def score(self, X, y) -> float:
        import numpy as np

        predictions = self.predict(X)
        y = np.asarray(y, dtype=float)
        residual = float(np.sum((y - predictions) ** 2))
        total = float(np.sum((y - y.mean()) ** 2))
        if total == 0.0:
            return 0.0
        return 1.0 - residual / total


class TransformerMixin:
    """Adds ``fit_transform`` to transformers."""

    def fit_transform(self, X, y=None):
        return self.fit(X, y).transform(X)
