"""CART decision trees (classification and regression) used standalone and by
the random forest / gradient boosting ensembles."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.ml.base import BaseEstimator, ClassifierMixin, RegressorMixin


class _Node:
    """A binary tree node; leaves carry a prediction value."""

    __slots__ = ("feature", "threshold", "left", "right", "value")

    def __init__(self, value=None):
        self.feature: Optional[int] = None
        self.threshold: float = 0.0
        self.left: Optional["_Node"] = None
        self.right: Optional["_Node"] = None
        self.value = value

    def is_leaf(self) -> bool:
        return self.left is None


def _gini(counts: np.ndarray) -> float:
    total = counts.sum()
    if total == 0:
        return 0.0
    proportions = counts / total
    return 1.0 - float(np.sum(proportions**2))


class _TreeBuilder:
    """Shared recursive splitting logic for classification and regression trees."""

    def __init__(
        self,
        max_depth: int,
        min_samples_split: int,
        max_features: Optional[int],
        rng: np.random.RandomState,
        classification: bool,
        n_classes: int = 0,
    ):
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.max_features = max_features
        self.rng = rng
        self.classification = classification
        self.n_classes = n_classes

    def build(self, X: np.ndarray, y: np.ndarray, depth: int = 0) -> _Node:
        node = _Node(value=self._leaf_value(y))
        if (
            depth >= self.max_depth
            or len(y) < self.min_samples_split
            or self._is_pure(y)
        ):
            return node
        feature, threshold = self._best_split(X, y)
        if feature is None:
            return node
        mask = X[:, feature] <= threshold
        if mask.all() or not mask.any():
            return node
        node.feature = feature
        node.threshold = threshold
        node.left = self.build(X[mask], y[mask], depth + 1)
        node.right = self.build(X[~mask], y[~mask], depth + 1)
        return node

    def _is_pure(self, y: np.ndarray) -> bool:
        if self.classification:
            return len(np.unique(y)) <= 1
        return float(np.var(y)) < 1e-12

    def _leaf_value(self, y: np.ndarray):
        if self.classification:
            counts = np.bincount(y.astype(int), minlength=self.n_classes)
            return counts
        return float(y.mean()) if y.size else 0.0

    def _candidate_features(self, n_features: int) -> np.ndarray:
        if self.max_features is None or self.max_features >= n_features:
            return np.arange(n_features)
        return self.rng.choice(n_features, size=self.max_features, replace=False)

    def _best_split(self, X: np.ndarray, y: np.ndarray):
        best_feature, best_threshold, best_score = None, 0.0, np.inf
        for feature in self._candidate_features(X.shape[1]):
            values = X[:, feature]
            distinct = np.unique(values)
            if len(distinct) < 2:
                continue
            if len(distinct) > 32:
                quantiles = np.percentile(values, np.linspace(5, 95, 16))
                thresholds = np.unique(quantiles)
            else:
                thresholds = (distinct[:-1] + distinct[1:]) / 2.0
            for threshold in thresholds:
                mask = values <= threshold
                left, right = y[mask], y[~mask]
                if left.size == 0 or right.size == 0:
                    continue
                score = self._impurity(left, right)
                if score < best_score:
                    best_feature, best_threshold, best_score = int(feature), float(threshold), score
        return best_feature, best_threshold

    def _impurity(self, left: np.ndarray, right: np.ndarray) -> float:
        n = left.size + right.size
        if self.classification:
            left_counts = np.bincount(left.astype(int), minlength=self.n_classes)
            right_counts = np.bincount(right.astype(int), minlength=self.n_classes)
            return (left.size * _gini(left_counts) + right.size * _gini(right_counts)) / n
        return (left.size * float(np.var(left)) + right.size * float(np.var(right))) / n


class DecisionTreeClassifier(BaseEstimator, ClassifierMixin):
    """CART classifier with Gini impurity."""

    def __init__(
        self,
        max_depth: int = 10,
        min_samples_split: int = 2,
        max_features: Optional[int] = None,
        random_state: int = 0,
    ):
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.max_features = max_features
        self.random_state = random_state
        self.classes_: Optional[np.ndarray] = None
        self._root: Optional[_Node] = None

    def fit(self, X, y) -> "DecisionTreeClassifier":
        X = np.asarray(X, dtype=float)
        y = np.asarray(list(y))
        self.classes_ = np.unique(y)
        index = {label: i for i, label in enumerate(self.classes_)}
        encoded = np.asarray([index[label] for label in y])
        builder = _TreeBuilder(
            max_depth=self.max_depth,
            min_samples_split=self.min_samples_split,
            max_features=self.max_features,
            rng=np.random.RandomState(self.random_state),
            classification=True,
            n_classes=len(self.classes_),
        )
        self._root = builder.build(X, encoded)
        return self

    def _leaf_for(self, row: np.ndarray) -> _Node:
        node = self._root
        while node is not None and not node.is_leaf():
            node = node.left if row[node.feature] <= node.threshold else node.right
        return node

    def predict_proba(self, X) -> np.ndarray:
        if self._root is None or self.classes_ is None:
            raise RuntimeError("DecisionTreeClassifier is not fitted")
        X = np.asarray(X, dtype=float)
        probabilities = np.zeros((X.shape[0], len(self.classes_)))
        for i in range(X.shape[0]):
            counts = self._leaf_for(X[i]).value
            total = counts.sum()
            probabilities[i] = counts / total if total else 1.0 / len(self.classes_)
        return probabilities

    def predict(self, X) -> np.ndarray:
        probabilities = self.predict_proba(X)
        return self.classes_[np.argmax(probabilities, axis=1)]


class DecisionTreeRegressor(BaseEstimator, RegressorMixin):
    """CART regressor with variance reduction."""

    def __init__(
        self,
        max_depth: int = 6,
        min_samples_split: int = 2,
        max_features: Optional[int] = None,
        random_state: int = 0,
    ):
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.max_features = max_features
        self.random_state = random_state
        self._root: Optional[_Node] = None

    def fit(self, X, y) -> "DecisionTreeRegressor":
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float)
        builder = _TreeBuilder(
            max_depth=self.max_depth,
            min_samples_split=self.min_samples_split,
            max_features=self.max_features,
            rng=np.random.RandomState(self.random_state),
            classification=False,
        )
        self._root = builder.build(X, y)
        return self

    def predict(self, X) -> np.ndarray:
        if self._root is None:
            raise RuntimeError("DecisionTreeRegressor is not fitted")
        X = np.asarray(X, dtype=float)
        out = np.zeros(X.shape[0])
        for i in range(X.shape[0]):
            node = self._root
            while not node.is_leaf():
                node = node.left if X[i, node.feature] <= node.threshold else node.right
            out[i] = node.value
        return out
