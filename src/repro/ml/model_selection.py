"""Train/test splitting, k-fold cross-validation and scoring helpers."""

from __future__ import annotations

import warnings
from typing import Callable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.ml.base import BaseEstimator, clone
from repro.ml.metrics import accuracy_score, f1_score


class DegenerateFoldWarning(UserWarning):
    """A cross-validation fold was empty or single-class and scored 0.0.

    Emitted instead of raising so a budgeted AutoML search survives the
    pathological splits that small or heavily imbalanced synthetic datasets
    produce mid-run; callers that care (tests, benchmarks) can assert on or
    silence it with the standard ``warnings`` machinery.
    """


def train_test_split(
    X: np.ndarray,
    y: Sequence,
    test_size: float = 0.25,
    random_state: int = 0,
    stratify: bool = False,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Split features and labels into train and test partitions.

    Returns ``X_train, X_test, y_train, y_test`` (scikit-learn argument
    order).  When ``stratify`` is set the split preserves label proportions.
    """
    X = np.asarray(X)
    y = np.asarray(list(y))
    n = len(y)
    rng = np.random.RandomState(random_state)
    if stratify:
        test_indices: List[int] = []
        for label in np.unique(y):
            label_indices = np.where(y == label)[0]
            rng.shuffle(label_indices)
            take = max(1, int(round(test_size * len(label_indices))))
            test_indices.extend(label_indices[:take].tolist())
        test_mask = np.zeros(n, dtype=bool)
        test_mask[test_indices] = True
    else:
        order = rng.permutation(n)
        take = max(1, int(round(test_size * n)))
        test_mask = np.zeros(n, dtype=bool)
        test_mask[order[:take]] = True
    train_mask = ~test_mask
    return X[train_mask], X[test_mask], y[train_mask], y[test_mask]


class KFold:
    """K-fold cross-validation splitter (optionally shuffled)."""

    def __init__(self, n_splits: int = 5, shuffle: bool = True, random_state: int = 0):
        if n_splits < 2:
            raise ValueError("n_splits must be at least 2")
        self.n_splits = n_splits
        self.shuffle = shuffle
        self.random_state = random_state

    def split(self, X, y=None) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        """Yield ``(train indices, test indices)`` pairs."""
        n = len(X)
        indices = np.arange(n)
        if self.shuffle:
            rng = np.random.RandomState(self.random_state)
            rng.shuffle(indices)
        folds = np.array_split(indices, self.n_splits)
        for i in range(self.n_splits):
            test = folds[i]
            train = np.concatenate([folds[j] for j in range(self.n_splits) if j != i])
            yield train, test


def _resolve_scorer(scoring: str) -> Callable:
    if scoring == "accuracy":
        return lambda y_true, y_pred: accuracy_score(y_true, y_pred)
    if scoring in ("f1", "f1_binary"):
        return lambda y_true, y_pred: f1_score(y_true, y_pred, average="binary")
    if scoring == "f1_macro":
        return lambda y_true, y_pred: f1_score(y_true, y_pred, average="macro")
    if scoring == "f1_weighted":
        return lambda y_true, y_pred: f1_score(y_true, y_pred, average="weighted")
    raise ValueError(f"unknown scoring {scoring!r}")


def cross_val_score(
    estimator: BaseEstimator,
    X: np.ndarray,
    y: Sequence,
    cv: int = 5,
    scoring: str = "accuracy",
    random_state: int = 0,
) -> np.ndarray:
    """Evaluate ``estimator`` with k-fold cross-validation.

    Folds where training fails (e.g. a single-class fold) score 0.0 so the
    harness never crashes on degenerate synthetic datasets.
    """
    X = np.asarray(X, dtype=float)
    y = np.asarray(list(y))
    scorer = _resolve_scorer(scoring)
    n_splits = min(cv, max(2, len(y) // 2))
    splitter = KFold(n_splits=n_splits, shuffle=True, random_state=random_state)
    scores = []
    for fold, (train_idx, test_idx) in enumerate(splitter.split(X, y)):
        if (
            len(train_idx) == 0
            or len(test_idx) == 0
            or len(np.unique(y[train_idx])) < 2
        ):
            warnings.warn(
                f"fold {fold} is degenerate (empty or single-class); scoring 0.0",
                DegenerateFoldWarning,
                stacklevel=2,
            )
            scores.append(0.0)
            continue
        model = clone(estimator)
        try:
            model.fit(X[train_idx], y[train_idx])
            predictions = model.predict(X[test_idx])
            scores.append(scorer(y[test_idx], predictions))
        except Exception:
            scores.append(0.0)
    return np.asarray(scores, dtype=float)


def cross_val_f1(
    estimator: BaseEstimator,
    X: np.ndarray,
    y: Sequence,
    cv: int = 5,
    random_state: int = 0,
) -> float:
    """Mean F1 across folds, switching to weighted F1 for multi-class targets.

    This is the headline metric of the data-cleaning evaluation (Table 5).
    """
    y_array = np.asarray(list(y))
    average = "binary" if len(np.unique(y_array)) <= 2 else "weighted"
    scoring = "f1" if average == "binary" else "f1_weighted"
    scores = cross_val_score(
        estimator, X, y_array, cv=cv, scoring=scoring, random_state=random_state
    )
    return float(scores.mean()) if scores.size else 0.0


def cross_val_accuracy(
    estimator: BaseEstimator,
    X: np.ndarray,
    y: Sequence,
    cv: int = 5,
    random_state: int = 0,
) -> float:
    """Mean accuracy across folds (metric of the transformation evaluation)."""
    scores = cross_val_score(
        estimator, X, y, cv=cv, scoring="accuracy", random_state=random_state
    )
    return float(scores.mean()) if scores.size else 0.0
