"""Tree ensembles: random forest and gradient boosting.

The random forest is the workhorse of the evaluation (Tables 5 and 6 train a
random-forest classifier on the cleaned / transformed data); gradient boosting
stands in for the XGBoost classifiers that Kaggle pipelines frequently call.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.ml.base import BaseEstimator, ClassifierMixin
from repro.ml.tree import DecisionTreeClassifier, DecisionTreeRegressor


class RandomForestClassifier(BaseEstimator, ClassifierMixin):
    """Bagged CART trees with per-split feature subsampling."""

    def __init__(
        self,
        n_estimators: int = 20,
        max_depth: int = 10,
        min_samples_split: int = 2,
        max_features: str = "sqrt",
        random_state: int = 0,
    ):
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.max_features = max_features
        self.random_state = random_state
        self.classes_: Optional[np.ndarray] = None
        self._trees: List[DecisionTreeClassifier] = []

    def _resolve_max_features(self, n_features: int) -> Optional[int]:
        if self.max_features == "sqrt":
            return max(1, int(np.sqrt(n_features)))
        if self.max_features == "log2":
            return max(1, int(np.log2(n_features))) if n_features > 1 else 1
        if self.max_features in (None, "all"):
            return None
        return max(1, int(self.max_features))

    def fit(self, X, y) -> "RandomForestClassifier":
        X = np.asarray(X, dtype=float)
        y = np.asarray(list(y))
        self.classes_ = np.unique(y)
        rng = np.random.RandomState(self.random_state)
        n_samples, n_features = X.shape
        max_features = self._resolve_max_features(n_features)
        self._trees = []
        for i in range(self.n_estimators):
            indices = rng.randint(0, n_samples, size=n_samples)
            tree = DecisionTreeClassifier(
                max_depth=self.max_depth,
                min_samples_split=self.min_samples_split,
                max_features=max_features,
                random_state=self.random_state + i,
            )
            tree.fit(X[indices], y[indices])
            self._trees.append(tree)
        return self

    def predict_proba(self, X) -> np.ndarray:
        if not self._trees or self.classes_ is None:
            raise RuntimeError("RandomForestClassifier is not fitted")
        X = np.asarray(X, dtype=float)
        aggregate = np.zeros((X.shape[0], len(self.classes_)))
        class_index = {label: i for i, label in enumerate(self.classes_)}
        for tree in self._trees:
            tree_probabilities = tree.predict_proba(X)
            for j, label in enumerate(tree.classes_):
                aggregate[:, class_index[label]] += tree_probabilities[:, j]
        aggregate /= len(self._trees)
        return aggregate

    def predict(self, X) -> np.ndarray:
        probabilities = self.predict_proba(X)
        return self.classes_[np.argmax(probabilities, axis=1)]


class GradientBoostingClassifier(BaseEstimator, ClassifierMixin):
    """Gradient-boosted regression trees on the logistic loss.

    Binary targets are boosted directly on log-odds; multi-class targets fall
    back to one-vs-rest boosting.  This estimator stands in for XGBoost's
    ``XGBClassifier`` in the pipeline corpus and the AutoML search space.
    """

    def __init__(
        self,
        n_estimators: int = 30,
        learning_rate: float = 0.1,
        max_depth: int = 3,
        random_state: int = 0,
    ):
        self.n_estimators = n_estimators
        self.learning_rate = learning_rate
        self.max_depth = max_depth
        self.random_state = random_state
        self.classes_: Optional[np.ndarray] = None
        self._stages: List[List[DecisionTreeRegressor]] = []
        self._base_scores: Optional[np.ndarray] = None

    def fit(self, X, y) -> "GradientBoostingClassifier":
        X = np.asarray(X, dtype=float)
        y = np.asarray(list(y))
        self.classes_ = np.unique(y)
        n_classes = len(self.classes_)
        targets = np.zeros((len(y), n_classes))
        for j, label in enumerate(self.classes_):
            targets[:, j] = (y == label).astype(float)
        priors = targets.mean(axis=0).clip(1e-6, 1 - 1e-6)
        self._base_scores = np.log(priors / (1 - priors))
        scores = np.tile(self._base_scores, (len(y), 1))
        self._stages = [[] for _ in range(n_classes)]
        for stage in range(self.n_estimators):
            probabilities = 1.0 / (1.0 + np.exp(-scores))
            for j in range(n_classes):
                residual = targets[:, j] - probabilities[:, j]
                tree = DecisionTreeRegressor(
                    max_depth=self.max_depth,
                    random_state=self.random_state + stage * n_classes + j,
                )
                tree.fit(X, residual)
                update = tree.predict(X)
                scores[:, j] += self.learning_rate * update
                self._stages[j].append(tree)
        return self

    def _decision_scores(self, X: np.ndarray) -> np.ndarray:
        scores = np.tile(self._base_scores, (X.shape[0], 1))
        for j, trees in enumerate(self._stages):
            for tree in trees:
                scores[:, j] += self.learning_rate * tree.predict(X)
        return scores

    def predict_proba(self, X) -> np.ndarray:
        if self._base_scores is None or self.classes_ is None:
            raise RuntimeError("GradientBoostingClassifier is not fitted")
        X = np.asarray(X, dtype=float)
        scores = self._decision_scores(X)
        probabilities = 1.0 / (1.0 + np.exp(-scores))
        totals = probabilities.sum(axis=1, keepdims=True)
        totals[totals == 0.0] = 1.0
        return probabilities / totals

    def predict(self, X) -> np.ndarray:
        probabilities = self.predict_proba(X)
        return self.classes_[np.argmax(probabilities, axis=1)]
