"""Gaussian naive Bayes classifier."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.ml.base import BaseEstimator, ClassifierMixin


class GaussianNB(BaseEstimator, ClassifierMixin):
    """Naive Bayes with per-class Gaussian feature likelihoods."""

    def __init__(self, var_smoothing: float = 1e-9):
        self.var_smoothing = var_smoothing
        self.classes_: Optional[np.ndarray] = None
        self._means: Optional[np.ndarray] = None
        self._variances: Optional[np.ndarray] = None
        self._priors: Optional[np.ndarray] = None

    def fit(self, X, y) -> "GaussianNB":
        X = np.asarray(X, dtype=float)
        y = np.asarray(list(y))
        self.classes_ = np.unique(y)
        n_classes, n_features = len(self.classes_), X.shape[1]
        self._means = np.zeros((n_classes, n_features))
        self._variances = np.zeros((n_classes, n_features))
        self._priors = np.zeros(n_classes)
        global_variance = X.var(axis=0).max() if X.size else 1.0
        smoothing = self.var_smoothing * max(global_variance, 1.0)
        for i, label in enumerate(self.classes_):
            members = X[y == label]
            self._means[i] = members.mean(axis=0)
            self._variances[i] = members.var(axis=0) + smoothing
            self._priors[i] = members.shape[0] / X.shape[0]
        return self

    def _joint_log_likelihood(self, X: np.ndarray) -> np.ndarray:
        log_likelihood = np.zeros((X.shape[0], len(self.classes_)))
        for i in range(len(self.classes_)):
            log_prior = np.log(self._priors[i] + 1e-12)
            gaussian = -0.5 * np.sum(
                np.log(2.0 * np.pi * self._variances[i])
                + (X - self._means[i]) ** 2 / self._variances[i],
                axis=1,
            )
            log_likelihood[:, i] = log_prior + gaussian
        return log_likelihood

    def predict(self, X) -> np.ndarray:
        if self._means is None or self.classes_ is None:
            raise RuntimeError("GaussianNB is not fitted")
        X = np.asarray(X, dtype=float)
        return self.classes_[np.argmax(self._joint_log_likelihood(X), axis=1)]

    def predict_proba(self, X) -> np.ndarray:
        if self._means is None:
            raise RuntimeError("GaussianNB is not fitted")
        X = np.asarray(X, dtype=float)
        log_likelihood = self._joint_log_likelihood(X)
        log_likelihood -= log_likelihood.max(axis=1, keepdims=True)
        probabilities = np.exp(log_likelihood)
        return probabilities / probabilities.sum(axis=1, keepdims=True)
