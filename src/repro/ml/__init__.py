"""A small, numpy-based machine-learning library.

KGLiDS' evaluation trains scikit-learn estimators (random forests for the
cleaning/transformation experiments, several classifier families for AutoML)
and applies scikit-learn preprocessing (scalers, imputers).  scikit-learn is
not available in this environment, so this package provides compatible
``fit`` / ``predict`` / ``transform`` implementations of the estimators the
platform records in its knowledge graph and uses in its experiments.
"""

from repro.ml.base import BaseEstimator, ClassifierMixin, TransformerMixin, clone
from repro.ml.ensemble import GradientBoostingClassifier, RandomForestClassifier
from repro.ml.impute import IterativeImputer, KNNImputer, SimpleImputer
from repro.ml.linear import LinearRegression, LogisticRegression, RidgeRegression
from repro.ml.metrics import (
    accuracy_score,
    confusion_matrix,
    f1_score,
    precision_score,
    recall_score,
)
from repro.ml.model_selection import KFold, cross_val_score, train_test_split
from repro.ml.naive_bayes import GaussianNB
from repro.ml.neighbors import KNeighborsClassifier
from repro.ml.preprocessing import (
    FunctionTransformer,
    LabelEncoder,
    MinMaxScaler,
    OneHotEncoder,
    RobustScaler,
    StandardScaler,
)
from repro.ml.tree import DecisionTreeClassifier

__all__ = [
    "BaseEstimator",
    "ClassifierMixin",
    "TransformerMixin",
    "clone",
    "DecisionTreeClassifier",
    "RandomForestClassifier",
    "GradientBoostingClassifier",
    "LogisticRegression",
    "LinearRegression",
    "RidgeRegression",
    "KNeighborsClassifier",
    "GaussianNB",
    "StandardScaler",
    "MinMaxScaler",
    "RobustScaler",
    "FunctionTransformer",
    "LabelEncoder",
    "OneHotEncoder",
    "SimpleImputer",
    "KNNImputer",
    "IterativeImputer",
    "accuracy_score",
    "precision_score",
    "recall_score",
    "f1_score",
    "confusion_matrix",
    "train_test_split",
    "KFold",
    "cross_val_score",
]
