"""Missing-value imputers over numeric feature matrices.

The KGLiDS cleaning recommender chooses among five operations (Fillna,
Interpolate, SimpleImputer, KNNImputer, IterativeImputer); the matrix-level
implementations live here, while the table-level application logic lives in
:mod:`repro.automation.cleaning`.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.ml.base import BaseEstimator, TransformerMixin


def _column_fallback(column: np.ndarray) -> float:
    finite = column[np.isfinite(column)]
    return float(finite.mean()) if finite.size else 0.0


class SimpleImputer(BaseEstimator, TransformerMixin):
    """Impute missing values with a per-column statistic.

    Supported strategies: ``mean``, ``median``, ``most_frequent`` and
    ``constant`` (with ``fill_value``).
    """

    def __init__(self, strategy: str = "mean", fill_value: float = 0.0):
        if strategy not in ("mean", "median", "most_frequent", "constant"):
            raise ValueError(f"unknown strategy {strategy!r}")
        self.strategy = strategy
        self.fill_value = fill_value
        self.statistics_: Optional[np.ndarray] = None

    def fit(self, X, y=None) -> "SimpleImputer":
        X = np.asarray(X, dtype=float)
        stats = np.zeros(X.shape[1])
        for j in range(X.shape[1]):
            column = X[:, j]
            finite = column[np.isfinite(column)]
            if self.strategy == "constant" or finite.size == 0:
                stats[j] = self.fill_value
            elif self.strategy == "mean":
                stats[j] = finite.mean()
            elif self.strategy == "median":
                stats[j] = np.median(finite)
            else:  # most_frequent
                values, counts = np.unique(finite, return_counts=True)
                stats[j] = values[np.argmax(counts)]
        self.statistics_ = stats
        return self

    def transform(self, X) -> np.ndarray:
        if self.statistics_ is None:
            raise RuntimeError("SimpleImputer is not fitted")
        X = np.asarray(X, dtype=float).copy()
        for j in range(X.shape[1]):
            mask = ~np.isfinite(X[:, j])
            X[mask, j] = self.statistics_[j]
        return X


class InterpolateImputer(BaseEstimator, TransformerMixin):
    """Linear interpolation along each column (Pandas ``interpolate`` analogue)."""

    def fit(self, X, y=None) -> "InterpolateImputer":
        return self

    def transform(self, X) -> np.ndarray:
        X = np.asarray(X, dtype=float).copy()
        for j in range(X.shape[1]):
            column = X[:, j]
            mask = np.isfinite(column)
            if mask.all():
                continue
            if not mask.any():
                X[:, j] = 0.0
                continue
            indices = np.arange(len(column))
            X[:, j] = np.interp(indices, indices[mask], column[mask])
        return X


class KNNImputer(BaseEstimator, TransformerMixin):
    """Impute missing values from the k nearest rows (euclidean on shared features)."""

    def __init__(self, n_neighbors: int = 5):
        self.n_neighbors = n_neighbors
        self._fit_X: Optional[np.ndarray] = None
        self._fallback: Optional[np.ndarray] = None

    def fit(self, X, y=None) -> "KNNImputer":
        X = np.asarray(X, dtype=float)
        self._fit_X = X
        self._fallback = np.array([_column_fallback(X[:, j]) for j in range(X.shape[1])])
        return self

    def transform(self, X) -> np.ndarray:
        if self._fit_X is None or self._fallback is None:
            raise RuntimeError("KNNImputer is not fitted")
        X = np.asarray(X, dtype=float).copy()
        reference = self._fit_X
        for i in range(X.shape[0]):
            row = X[i]
            missing = ~np.isfinite(row)
            if not missing.any():
                continue
            observed = np.isfinite(row)
            if not observed.any():
                X[i, missing] = self._fallback[missing]
                continue
            diffs = reference[:, observed] - row[observed]
            valid = np.isfinite(diffs).all(axis=1)
            if not valid.any():
                X[i, missing] = self._fallback[missing]
                continue
            distances = np.full(reference.shape[0], np.inf)
            distances[valid] = np.sqrt(np.nansum(diffs[valid] ** 2, axis=1))
            order = np.argsort(distances)[: self.n_neighbors]
            for j in np.where(missing)[0]:
                neighbor_values = reference[order, j]
                finite = neighbor_values[np.isfinite(neighbor_values)]
                X[i, j] = float(finite.mean()) if finite.size else self._fallback[j]
        return X


class IterativeImputer(BaseEstimator, TransformerMixin):
    """Round-robin regression imputation (MICE-style) with ridge regression."""

    def __init__(self, max_iter: int = 5, ridge: float = 1.0):
        self.max_iter = max_iter
        self.ridge = ridge
        self._initial: Optional[SimpleImputer] = None
        self._train_X: Optional[np.ndarray] = None
        self._train_mask: Optional[np.ndarray] = None

    def fit(self, X, y=None) -> "IterativeImputer":
        X = np.asarray(X, dtype=float)
        self._initial = SimpleImputer(strategy="mean").fit(X)
        self._train_X = X
        self._train_mask = ~np.isfinite(X)
        return self

    def transform(self, X) -> np.ndarray:
        if self._initial is None:
            raise RuntimeError("IterativeImputer is not fitted")
        X = np.asarray(X, dtype=float)
        missing_mask = ~np.isfinite(X)
        filled = self._initial.transform(X)
        n_features = X.shape[1]
        if n_features < 2:
            return filled
        for _ in range(self.max_iter):
            for j in range(n_features):
                target_missing = missing_mask[:, j]
                if not target_missing.any():
                    continue
                others = [k for k in range(n_features) if k != j]
                observed = ~target_missing
                if observed.sum() < 2:
                    continue
                A = filled[observed][:, others]
                b = filled[observed, j]
                A_design = np.column_stack([A, np.ones(A.shape[0])])
                gram = A_design.T @ A_design + self.ridge * np.eye(A_design.shape[1])
                coefficients = np.linalg.solve(gram, A_design.T @ b)
                A_missing = np.column_stack(
                    [filled[target_missing][:, others], np.ones(target_missing.sum())]
                )
                filled[target_missing, j] = A_missing @ coefficients
        return filled
