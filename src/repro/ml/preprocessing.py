"""Feature scaling, unary transformations and categorical encoders.

These are the operations the KGLiDS transformation recommender chooses among:
table-level scalers (Standard / MinMax / Robust) and column-level unary
transformations (log, sqrt), plus the encoders used by the feature pipeline.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.ml.base import BaseEstimator, TransformerMixin


class StandardScaler(BaseEstimator, TransformerMixin):
    """Standardize features to zero mean and unit variance."""

    def __init__(self, with_mean: bool = True, with_std: bool = True):
        self.with_mean = with_mean
        self.with_std = with_std
        self.mean_: Optional[np.ndarray] = None
        self.scale_: Optional[np.ndarray] = None

    def fit(self, X, y=None) -> "StandardScaler":
        X = np.asarray(X, dtype=float)
        self.mean_ = X.mean(axis=0) if self.with_mean else np.zeros(X.shape[1])
        std = X.std(axis=0) if self.with_std else np.ones(X.shape[1])
        self.scale_ = np.where(std == 0.0, 1.0, std)
        return self

    def transform(self, X) -> np.ndarray:
        if self.mean_ is None:
            raise RuntimeError("StandardScaler is not fitted")
        X = np.asarray(X, dtype=float)
        return (X - self.mean_) / self.scale_


class MinMaxScaler(BaseEstimator, TransformerMixin):
    """Scale features to the ``[0, 1]`` range."""

    def __init__(self, feature_range: tuple = (0.0, 1.0)):
        self.feature_range = feature_range
        self.min_: Optional[np.ndarray] = None
        self.range_: Optional[np.ndarray] = None

    def fit(self, X, y=None) -> "MinMaxScaler":
        X = np.asarray(X, dtype=float)
        self.min_ = X.min(axis=0)
        data_range = X.max(axis=0) - self.min_
        self.range_ = np.where(data_range == 0.0, 1.0, data_range)
        return self

    def transform(self, X) -> np.ndarray:
        if self.min_ is None:
            raise RuntimeError("MinMaxScaler is not fitted")
        X = np.asarray(X, dtype=float)
        low, high = self.feature_range
        scaled = (X - self.min_) / self.range_
        return scaled * (high - low) + low


class RobustScaler(BaseEstimator, TransformerMixin):
    """Scale features using the median and inter-quartile range."""

    def __init__(self, quantile_range: tuple = (25.0, 75.0)):
        self.quantile_range = quantile_range
        self.center_: Optional[np.ndarray] = None
        self.scale_: Optional[np.ndarray] = None

    def fit(self, X, y=None) -> "RobustScaler":
        X = np.asarray(X, dtype=float)
        low, high = self.quantile_range
        self.center_ = np.median(X, axis=0)
        iqr = np.percentile(X, high, axis=0) - np.percentile(X, low, axis=0)
        self.scale_ = np.where(iqr == 0.0, 1.0, iqr)
        return self

    def transform(self, X) -> np.ndarray:
        if self.center_ is None:
            raise RuntimeError("RobustScaler is not fitted")
        X = np.asarray(X, dtype=float)
        return (X - self.center_) / self.scale_


class FunctionTransformer(BaseEstimator, TransformerMixin):
    """Apply a unary function element-wise (used for log / sqrt transforms)."""

    def __init__(self, func: Optional[Callable] = None, name: str = "identity"):
        self.func = func
        self.name = name

    def fit(self, X, y=None) -> "FunctionTransformer":
        return self

    def transform(self, X) -> np.ndarray:
        X = np.asarray(X, dtype=float)
        if self.func is None:
            return X
        return self.func(X)


def log_transform(X: np.ndarray) -> np.ndarray:
    """``log1p`` transform shifted to tolerate negative values."""
    X = np.asarray(X, dtype=float)
    shift = np.minimum(X.min(axis=0), 0.0)
    return np.log1p(X - shift)


def sqrt_transform(X: np.ndarray) -> np.ndarray:
    """``sqrt`` transform shifted to tolerate negative values."""
    X = np.asarray(X, dtype=float)
    shift = np.minimum(X.min(axis=0), 0.0)
    return np.sqrt(X - shift)


#: Registry of the unary (column-level) transformations the recommender uses.
UNARY_TRANSFORMS: Dict[str, Callable] = {
    "log": log_transform,
    "sqrt": sqrt_transform,
}

#: Registry of the table-level scaling transformations the recommender uses.
SCALERS: Dict[str, Callable[[], TransformerMixin]] = {
    "StandardScaler": StandardScaler,
    "MinMaxScaler": MinMaxScaler,
    "RobustScaler": RobustScaler,
}


class LabelEncoder(BaseEstimator, TransformerMixin):
    """Encode arbitrary labels as consecutive integers."""

    def __init__(self):
        self.classes_: List = []
        self._index: Dict = {}

    def fit(self, y, _=None) -> "LabelEncoder":
        self.classes_ = sorted({str(v) for v in y})
        self._index = {label: i for i, label in enumerate(self.classes_)}
        return self

    def transform(self, y) -> np.ndarray:
        if not self._index:
            raise RuntimeError("LabelEncoder is not fitted")
        return np.asarray([self._index.get(str(v), 0) for v in y], dtype=int)

    def inverse_transform(self, codes: Sequence[int]) -> List[str]:
        return [self.classes_[int(c)] for c in codes]


class OneHotEncoder(BaseEstimator, TransformerMixin):
    """One-hot encode a sequence of categorical values (single feature)."""

    def __init__(self, max_categories: int = 50):
        self.max_categories = max_categories
        self.categories_: List[str] = []

    def fit(self, values, y=None) -> "OneHotEncoder":
        distinct = sorted({str(v) for v in values})
        self.categories_ = distinct[: self.max_categories]
        return self

    def transform(self, values) -> np.ndarray:
        if not self.categories_:
            raise RuntimeError("OneHotEncoder is not fitted")
        index = {c: i for i, c in enumerate(self.categories_)}
        out = np.zeros((len(list(values)), len(self.categories_)))
        for row, value in enumerate(values):
            position = index.get(str(value))
            if position is not None:
                out[row, position] = 1.0
        return out
