"""Linear models: logistic regression (softmax), linear and ridge regression."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.ml.base import BaseEstimator, ClassifierMixin, RegressorMixin


class LogisticRegression(BaseEstimator, ClassifierMixin):
    """Multinomial logistic regression trained with full-batch gradient descent.

    The hyperparameters mirror scikit-learn's (``C`` is the inverse of the L2
    regularization strength) because those are the names the LiDS graph records
    from abstracted pipelines and feeds to the AutoML search.
    """

    def __init__(
        self,
        C: float = 1.0,
        max_iter: int = 200,
        learning_rate: float = 0.1,
        tol: float = 1e-5,
        random_state: int = 0,
    ):
        self.C = C
        self.max_iter = max_iter
        self.learning_rate = learning_rate
        self.tol = tol
        self.random_state = random_state
        self.classes_: Optional[np.ndarray] = None
        self.coef_: Optional[np.ndarray] = None
        self.intercept_: Optional[np.ndarray] = None
        self._scale_mean: Optional[np.ndarray] = None
        self._scale_std: Optional[np.ndarray] = None

    def _standardize(self, X: np.ndarray, fit: bool) -> np.ndarray:
        if fit:
            self._scale_mean = X.mean(axis=0)
            std = X.std(axis=0)
            self._scale_std = np.where(std == 0.0, 1.0, std)
        return (X - self._scale_mean) / self._scale_std

    def fit(self, X, y) -> "LogisticRegression":
        X = np.asarray(X, dtype=float)
        y = np.asarray(list(y))
        self.classes_ = np.unique(y)
        n_samples, n_features = X.shape
        n_classes = len(self.classes_)
        X = self._standardize(X, fit=True)
        label_index = {label: i for i, label in enumerate(self.classes_)}
        targets = np.zeros((n_samples, n_classes))
        for i, label in enumerate(y):
            targets[i, label_index[label]] = 1.0
        rng = np.random.RandomState(self.random_state)
        weights = rng.normal(scale=0.01, size=(n_features, n_classes))
        bias = np.zeros(n_classes)
        l2 = 1.0 / max(self.C, 1e-9)
        previous_loss = np.inf
        for _ in range(self.max_iter):
            logits = X @ weights + bias
            logits -= logits.max(axis=1, keepdims=True)
            probabilities = np.exp(logits)
            probabilities /= probabilities.sum(axis=1, keepdims=True)
            gradient_w = X.T @ (probabilities - targets) / n_samples + l2 * weights / n_samples
            gradient_b = (probabilities - targets).mean(axis=0)
            weights -= self.learning_rate * gradient_w
            bias -= self.learning_rate * gradient_b
            loss = -np.mean(np.sum(targets * np.log(probabilities + 1e-12), axis=1))
            if abs(previous_loss - loss) < self.tol:
                break
            previous_loss = loss
        self.coef_ = weights
        self.intercept_ = bias
        return self

    def predict_proba(self, X) -> np.ndarray:
        if self.coef_ is None or self.classes_ is None:
            raise RuntimeError("LogisticRegression is not fitted")
        X = np.asarray(X, dtype=float)
        X = self._standardize(X, fit=False)
        logits = X @ self.coef_ + self.intercept_
        logits -= logits.max(axis=1, keepdims=True)
        probabilities = np.exp(logits)
        probabilities /= probabilities.sum(axis=1, keepdims=True)
        return probabilities

    def predict(self, X) -> np.ndarray:
        probabilities = self.predict_proba(X)
        return self.classes_[np.argmax(probabilities, axis=1)]


class LinearRegression(BaseEstimator, RegressorMixin):
    """Ordinary least squares via the numpy least-squares solver."""

    def __init__(self):
        self.coef_: Optional[np.ndarray] = None
        self.intercept_: float = 0.0

    def fit(self, X, y) -> "LinearRegression":
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float)
        design = np.column_stack([X, np.ones(X.shape[0])])
        solution, *_ = np.linalg.lstsq(design, y, rcond=None)
        self.coef_ = solution[:-1]
        self.intercept_ = float(solution[-1])
        return self

    def predict(self, X) -> np.ndarray:
        if self.coef_ is None:
            raise RuntimeError("LinearRegression is not fitted")
        X = np.asarray(X, dtype=float)
        return X @ self.coef_ + self.intercept_


class RidgeRegression(BaseEstimator, RegressorMixin):
    """L2-regularized least squares (closed form)."""

    def __init__(self, alpha: float = 1.0):
        self.alpha = alpha
        self.coef_: Optional[np.ndarray] = None
        self.intercept_: float = 0.0

    def fit(self, X, y) -> "RidgeRegression":
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float)
        design = np.column_stack([X, np.ones(X.shape[0])])
        gram = design.T @ design + self.alpha * np.eye(design.shape[1])
        solution = np.linalg.solve(gram, design.T @ y)
        self.coef_ = solution[:-1]
        self.intercept_ = float(solution[-1])
        return self

    def predict(self, X) -> np.ndarray:
        if self.coef_ is None:
            raise RuntimeError("RidgeRegression is not fitted")
        X = np.asarray(X, dtype=float)
        return X @ self.coef_ + self.intercept_
