"""Namespaces and prefix management for the LiDS graph.

The paper fixes two URI prefixes: ``http://kglids.org/ontology/`` for classes
and properties and ``http://kglids.org/resource/`` for data instances.  The
helpers here build URIs under those prefixes and register the usual RDF
namespaces for SPARQL prefix expansion.
"""

from __future__ import annotations

from typing import Dict

from repro.rdf.terms import URIRef


#: Vocabulary URIs minted via *attribute* access (``XSD.integer``,
#: ``LiDSOntology.hasName``, …), which sits on hot paths.  Only attribute
#: access caches: its key space is the finite set of class/property names
#: spelled in the code.  Explicit :meth:`Namespace.term` calls mint
#: per-entity URIs (one per table/column/statement of a lake) and stay
#: uncached so a process-global dict never pins a whole lake's URI strings.
_ATTR_CACHE: Dict[str, URIRef] = {}


class Namespace(str):
    """A URI prefix; attribute and item access mint URIs under the prefix."""

    __slots__ = ()

    def term(self, name: str) -> URIRef:
        return URIRef(f"{self}{name}")

    def __getattr__(self, name: str) -> URIRef:
        if name.startswith("_"):
            raise AttributeError(name)
        full = f"{self}{name}"
        term = _ATTR_CACHE.get(full)
        if term is None:
            term = _ATTR_CACHE[full] = URIRef(full)
        return term

    def __getitem__(self, name: str) -> URIRef:
        return self.term(name)


RDF = Namespace("http://www.w3.org/1999/02/22-rdf-syntax-ns#")
RDFS = Namespace("http://www.w3.org/2000/01/rdf-schema#")
XSD = Namespace("http://www.w3.org/2001/XMLSchema#")
OWL = Namespace("http://www.w3.org/2002/07/owl#")

#: Classes and properties of the LiDS ontology.
KGLIDS_ONTOLOGY = Namespace("http://kglids.org/ontology/")
#: Data instances (datasets, tables, columns, statements, libraries).
KGLIDS_RESOURCE = Namespace("http://kglids.org/resource/")
#: Sub-prefixes used when minting data and pipeline resources.
KGLIDS_DATA = Namespace("http://kglids.org/resource/data/")
KGLIDS_PIPELINE = Namespace("http://kglids.org/resource/pipeline/")

#: Default prefix map used by the SPARQL engine and serializers.
DEFAULT_PREFIXES: Dict[str, Namespace] = {
    "rdf": RDF,
    "rdfs": RDFS,
    "xsd": XSD,
    "owl": OWL,
    "kglids": KGLIDS_ONTOLOGY,
    "data": KGLIDS_DATA,
    "pipeline": KGLIDS_PIPELINE,
    "resource": KGLIDS_RESOURCE,
}


def expand_qname(qname: str, prefixes: Dict[str, Namespace] = None) -> URIRef:
    """Expand ``prefix:local`` into a full URI using the prefix map."""
    prefixes = prefixes or DEFAULT_PREFIXES
    if ":" not in qname:
        raise ValueError(f"{qname!r} is not a prefixed name")
    prefix, local = qname.split(":", 1)
    if prefix not in prefixes:
        raise ValueError(f"unknown prefix {prefix!r}")
    return prefixes[prefix].term(local)
