"""RDF term model: URIs, literals, blank nodes, quoted (RDF-star) triples."""

from __future__ import annotations

from typing import Any, NamedTuple, Optional, Union


class URIRef(str):
    """A URI reference.  Subclasses ``str`` so it hashes/compares as its text."""

    __slots__ = ()

    def n3(self) -> str:
        """N-Triples serialization of the term."""
        return f"<{self}>"

    def local_name(self) -> str:
        """The fragment after the last ``/`` or ``#`` (for display purposes)."""
        text = str(self)
        for separator in ("#", "/"):
            if separator in text:
                candidate = text.rsplit(separator, 1)[1]
                if candidate:
                    return candidate
        return text

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return f"URIRef({str(self)!r})"


class BNode(str):
    """A blank node identified by a local label."""

    __slots__ = ()

    def n3(self) -> str:
        return f"_:{self}"

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return f"BNode({str(self)!r})"


def _escape_literal(text: str) -> str:
    return (
        text.replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
        .replace("\r", "\\r")
        .replace("\t", "\\t")
    )


def _unescape_literal(text: str) -> str:
    return (
        text.replace("\\t", "\t")
        .replace("\\r", "\r")
        .replace("\\n", "\n")
        .replace('\\"', '"')
        .replace("\\\\", "\\")
    )


class Literal:
    """An RDF literal with an optional datatype or language tag.

    Python ``int``, ``float`` and ``bool`` values round-trip through the
    corresponding XSD datatypes via :meth:`to_python`.
    """

    __slots__ = ("value", "datatype", "language")

    def __init__(
        self,
        value: Any,
        datatype: Optional["URIRef"] = None,
        language: Optional[str] = None,
    ):
        from repro.rdf.namespace import XSD

        if isinstance(value, bool):
            self.value: str = "true" if value else "false"
            self.datatype: Optional[URIRef] = datatype or XSD.boolean
        elif isinstance(value, int):
            self.value = str(value)
            self.datatype = datatype or XSD.integer
        elif isinstance(value, float):
            self.value = repr(value)
            self.datatype = datatype or XSD.double
        else:
            self.value = str(value)
            self.datatype = datatype
        self.language = language

    def to_python(self) -> Any:
        """Convert back to a Python value based on the datatype."""
        from repro.rdf.namespace import XSD

        if self.datatype == XSD.boolean:
            return self.value == "true"
        if self.datatype in (XSD.integer, XSD.int, XSD.long):
            try:
                return int(self.value)
            except ValueError:
                return self.value
        if self.datatype in (XSD.double, XSD.float, XSD.decimal):
            try:
                return float(self.value)
            except ValueError:
                return self.value
        return self.value

    def n3(self) -> str:
        base = f'"{_escape_literal(self.value)}"'
        if self.language:
            return f"{base}@{self.language}"
        if self.datatype:
            return f"{base}^^<{self.datatype}>"
        return base

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Literal):
            return NotImplemented
        return (
            self.value == other.value
            and self.datatype == other.datatype
            and self.language == other.language
        )

    def __hash__(self) -> int:
        return hash((self.value, self.datatype, self.language))

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return f"Literal({self.value!r}, datatype={self.datatype!r})"

    @staticmethod
    def unescape(text: str) -> str:
        """Inverse of the N-Triples literal escaping."""
        return _unescape_literal(text)


class Triple(NamedTuple):
    """An RDF triple ``(subject, predicate, object)``."""

    subject: Any
    predicate: Any
    object: Any

    def n3(self) -> str:
        return f"{term_n3(self.subject)} {term_n3(self.predicate)} {term_n3(self.object)} ."


class QuotedTriple:
    """An RDF-star quoted triple usable as the subject of annotation triples."""

    __slots__ = ("subject", "predicate", "object")

    def __init__(self, subject: Any, predicate: Any, obj: Any):
        self.subject = subject
        self.predicate = predicate
        self.object = obj

    def as_triple(self) -> Triple:
        return Triple(self.subject, self.predicate, self.object)

    def n3(self) -> str:
        return (
            f"<< {term_n3(self.subject)} {term_n3(self.predicate)} "
            f"{term_n3(self.object)} >>"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, QuotedTriple):
            return NotImplemented
        return (
            self.subject == other.subject
            and self.predicate == other.predicate
            and self.object == other.object
        )

    def __hash__(self) -> int:
        return hash(("<<>>", self.subject, self.predicate, self.object))

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return f"QuotedTriple({self.subject!r}, {self.predicate!r}, {self.object!r})"


Term = Union[URIRef, BNode, Literal, QuotedTriple]


def term_n3(term: Any) -> str:
    """N-Triples serialization of any term (plain strings become literals)."""
    if isinstance(term, (URIRef, BNode, Literal, QuotedTriple)):
        return term.n3()
    return Literal(term).n3()
