"""RDF term model: URIs, literals, blank nodes, quoted (RDF-star) triples."""

from __future__ import annotations

import re
from typing import Any, Iterator, NamedTuple, Optional, Union


class URIRef(str):
    """A URI reference.  Subclasses ``str`` so it hashes/compares as its text."""

    __slots__ = ()

    def n3(self) -> str:
        """N-Triples serialization of the term."""
        return f"<{self}>"

    def local_name(self) -> str:
        """The fragment after the last ``/`` or ``#`` (for display purposes)."""
        text = str(self)
        for separator in ("#", "/"):
            if separator in text:
                candidate = text.rsplit(separator, 1)[1]
                if candidate:
                    return candidate
        return text

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return f"URIRef({str(self)!r})"


class BNode(str):
    """A blank node identified by a local label."""

    __slots__ = ()

    def n3(self) -> str:
        return f"_:{self}"

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return f"BNode({str(self)!r})"


def _escape_literal(text: str) -> str:
    return (
        text.replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
        .replace("\r", "\\r")
        .replace("\t", "\\t")
    )


_UNESCAPE_RE = re.compile(r'\\([\\"nrt])')
_UNESCAPE_MAP = {"\\": "\\", '"': '"', "n": "\n", "r": "\r", "t": "\t"}


def _unescape_literal(text: str) -> str:
    # Escapes must be decoded in one left-to-right pass: sequential
    # str.replace would mis-read the character after an escaped backslash
    # (e.g. the serialized form of ``C:\new`` contains ``\\n``, which is an
    # escaped backslash followed by a plain ``n`` — not a newline).
    return _UNESCAPE_RE.sub(lambda match: _UNESCAPE_MAP[match.group(1)], text)


class Literal:
    """An RDF literal with an optional datatype or language tag.

    Python ``int``, ``float`` and ``bool`` values round-trip through the
    corresponding XSD datatypes via :meth:`to_python`.
    """

    __slots__ = ("value", "datatype", "language")

    def __init__(
        self,
        value: Any,
        datatype: Optional["URIRef"] = None,
        language: Optional[str] = None,
    ):
        from repro.rdf.namespace import XSD

        if isinstance(value, bool):
            self.value: str = "true" if value else "false"
            self.datatype: Optional[URIRef] = datatype or XSD.boolean
        elif isinstance(value, int):
            self.value = str(value)
            self.datatype = datatype or XSD.integer
        elif isinstance(value, float):
            self.value = repr(value)
            self.datatype = datatype or XSD.double
        else:
            self.value = str(value)
            self.datatype = datatype
        self.language = language

    def to_python(self) -> Any:
        """Convert back to a Python value based on the datatype."""
        from repro.rdf.namespace import XSD

        if self.datatype == XSD.boolean:
            return self.value == "true"
        if self.datatype in (XSD.integer, XSD.int, XSD.long):
            try:
                return int(self.value)
            except ValueError:
                return self.value
        if self.datatype in (XSD.double, XSD.float, XSD.decimal):
            try:
                return float(self.value)
            except ValueError:
                return self.value
        return self.value

    def n3(self) -> str:
        base = f'"{_escape_literal(self.value)}"'
        if self.language:
            return f"{base}@{self.language}"
        if self.datatype:
            return f"{base}^^<{self.datatype}>"
        return base

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Literal):
            return NotImplemented
        return (
            self.value == other.value
            and self.datatype == other.datatype
            and self.language == other.language
        )

    def __hash__(self) -> int:
        return hash((self.value, self.datatype, self.language))

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return f"Literal({self.value!r}, datatype={self.datatype!r})"

    @staticmethod
    def unescape(text: str) -> str:
        """Inverse of the N-Triples literal escaping."""
        return _unescape_literal(text)


class Triple(NamedTuple):
    """An RDF triple ``(subject, predicate, object)``."""

    subject: Any
    predicate: Any
    object: Any

    def n3(self) -> str:
        return f"{term_n3(self.subject)} {term_n3(self.predicate)} {term_n3(self.object)} ."


class QuotedTriple:
    """An RDF-star quoted triple usable as the subject of annotation triples."""

    __slots__ = ("subject", "predicate", "object")

    def __init__(self, subject: Any, predicate: Any, obj: Any):
        self.subject = subject
        self.predicate = predicate
        self.object = obj

    def as_triple(self) -> Triple:
        return Triple(self.subject, self.predicate, self.object)

    def n3(self) -> str:
        return (
            f"<< {term_n3(self.subject)} {term_n3(self.predicate)} "
            f"{term_n3(self.object)} >>"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, QuotedTriple):
            return NotImplemented
        return (
            self.subject == other.subject
            and self.predicate == other.predicate
            and self.object == other.object
        )

    def __hash__(self) -> int:
        return hash(("<<>>", self.subject, self.predicate, self.object))

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return f"QuotedTriple({self.subject!r}, {self.predicate!r}, {self.object!r})"


Term = Union[URIRef, BNode, Literal, QuotedTriple]


def term_n3(term: Any) -> str:
    """N-Triples serialization of any term (plain strings become literals)."""
    if isinstance(term, (URIRef, BNode, Literal, QuotedTriple)):
        return term.n3()
    return Literal(term).n3()


# ------------------------------------------------------------- term parsing
_TERM_RE = re.compile(
    r"""
    (?P<quoted><<.*?>>)            # RDF-star quoted triple (non-greedy)
    | (?P<uri><[^>]*>)             # URI
    | (?P<bnode>_:[^\s]+)          # blank node
    | (?P<literal>"(?:[^"\\]|\\.)*"(?:\^\^<[^>]*>|@[A-Za-z\-]+)?)  # literal
    """,
    re.VERBOSE,
)


def parse_term(token: str) -> Term:
    """Parse one N-Triples term token back into its term object.

    The inverse of :func:`term_n3` (plain Python values that were coerced to
    literals on serialization come back as :class:`Literal`).  Shared by the
    N-Quads parser and the sqlite quad-store backend, which stores terms in
    their N-Triples text form.
    """
    token = token.strip()
    if token.startswith("<<") and token.endswith(">>"):
        inner = token[2:-2].strip()
        terms = list(iter_terms(inner))
        if len(terms) != 3:
            raise ValueError(f"malformed quoted triple: {token!r}")
        return QuotedTriple(terms[0], terms[1], terms[2])
    if token.startswith("<") and token.endswith(">"):
        return URIRef(token[1:-1])
    if token.startswith("_:"):
        return BNode(token[2:])
    if token.startswith('"'):
        match = re.match(r'^"((?:[^"\\]|\\.)*)"(?:\^\^<([^>]*)>|@([A-Za-z\-]+))?$', token)
        if not match:
            raise ValueError(f"malformed literal: {token!r}")
        value = Literal.unescape(match.group(1))
        datatype = URIRef(match.group(2)) if match.group(2) else None
        language = match.group(3)
        return Literal(value, datatype=datatype, language=language)
    raise ValueError(f"cannot parse term: {token!r}")


def iter_terms(text: str) -> Iterator[Term]:
    """Iterate the term objects of a whitespace-separated N-Triples line."""
    for match in _TERM_RE.finditer(text):
        yield parse_term(match.group(0))
