"""RDF term model: URIs, literals, blank nodes, quoted (RDF-star) triples."""

from __future__ import annotations

import re
from typing import Any, Iterator, NamedTuple, Optional, Union


class URIRef(str):
    """A URI reference.  Subclasses ``str`` so it hashes/compares as its text."""

    __slots__ = ()

    def n3(self) -> str:
        """N-Triples serialization of the term."""
        return f"<{self}>"

    def local_name(self) -> str:
        """The fragment after the last ``/`` or ``#`` (for display purposes)."""
        text = str(self)
        for separator in ("#", "/"):
            if separator in text:
                candidate = text.rsplit(separator, 1)[1]
                if candidate:
                    return candidate
        return text

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return f"URIRef({str(self)!r})"


class BNode(str):
    """A blank node identified by a local label."""

    __slots__ = ()

    def n3(self) -> str:
        return f"_:{self}"

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return f"BNode({str(self)!r})"


def _escape_literal(text: str) -> str:
    return (
        text.replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
        .replace("\r", "\\r")
        .replace("\t", "\\t")
    )


_UNESCAPE_RE = re.compile(r'\\([\\"nrt])')
_UNESCAPE_MAP = {"\\": "\\", '"': '"', "n": "\n", "r": "\r", "t": "\t"}

#: Lazily initialized XSD datatype sets for :meth:`Literal.to_python`
#: (the namespace module imports this one, so they cannot load eagerly).
_XSD_BOOLEAN = None
_XSD_INTEGER_TYPES: frozenset = frozenset()
_XSD_FLOAT_TYPES: frozenset = frozenset()


def _unescape_literal(text: str) -> str:
    # Escapes must be decoded in one left-to-right pass: sequential
    # str.replace would mis-read the character after an escaped backslash
    # (e.g. the serialized form of ``C:\new`` contains ``\\n``, which is an
    # escaped backslash followed by a plain ``n`` — not a newline).
    return _UNESCAPE_RE.sub(lambda match: _UNESCAPE_MAP[match.group(1)], text)


class Literal:
    """An RDF literal with an optional datatype or language tag.

    Python ``int``, ``float`` and ``bool`` values round-trip through the
    corresponding XSD datatypes via :meth:`to_python`.
    """

    __slots__ = ("value", "datatype", "language")

    def __init__(
        self,
        value: Any,
        datatype: Optional["URIRef"] = None,
        language: Optional[str] = None,
    ):
        from repro.rdf.namespace import XSD

        if isinstance(value, bool):
            self.value: str = "true" if value else "false"
            self.datatype: Optional[URIRef] = datatype or XSD.boolean
        elif isinstance(value, int):
            self.value = str(value)
            self.datatype = datatype or XSD.integer
        elif isinstance(value, float):
            self.value = repr(value)
            self.datatype = datatype or XSD.double
        else:
            self.value = str(value)
            self.datatype = datatype
        self.language = language

    def to_python(self) -> Any:
        """Convert back to a Python value based on the datatype."""
        datatype = self.datatype
        if datatype is None:
            return self.value
        global _XSD_BOOLEAN, _XSD_INTEGER_TYPES, _XSD_FLOAT_TYPES
        if _XSD_BOOLEAN is None:
            from repro.rdf.namespace import XSD

            _XSD_BOOLEAN = XSD.boolean
            _XSD_INTEGER_TYPES = frozenset((XSD.integer, XSD.int, XSD.long))
            _XSD_FLOAT_TYPES = frozenset((XSD.double, XSD.float, XSD.decimal))
        if datatype == _XSD_BOOLEAN:
            return self.value == "true"
        if datatype in _XSD_INTEGER_TYPES:
            try:
                return int(self.value)
            except ValueError:
                return self.value
        if datatype in _XSD_FLOAT_TYPES:
            try:
                return float(self.value)
            except ValueError:
                return self.value
        return self.value

    def n3(self) -> str:
        base = f'"{_escape_literal(self.value)}"'
        if self.language:
            return f"{base}@{self.language}"
        if self.datatype:
            return f"{base}^^<{self.datatype}>"
        return base

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Literal):
            return NotImplemented
        return (
            self.value == other.value
            and self.datatype == other.datatype
            and self.language == other.language
        )

    def __hash__(self) -> int:
        return hash((self.value, self.datatype, self.language))

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return f"Literal({self.value!r}, datatype={self.datatype!r})"

    @staticmethod
    def unescape(text: str) -> str:
        """Inverse of the N-Triples literal escaping."""
        return _unescape_literal(text)


class Triple(NamedTuple):
    """An RDF triple ``(subject, predicate, object)``."""

    subject: Any
    predicate: Any
    object: Any

    def n3(self) -> str:
        return f"{term_n3(self.subject)} {term_n3(self.predicate)} {term_n3(self.object)} ."


class QuotedTriple:
    """An RDF-star quoted triple usable as the subject of annotation triples."""

    __slots__ = ("subject", "predicate", "object")

    def __init__(self, subject: Any, predicate: Any, obj: Any):
        self.subject = subject
        self.predicate = predicate
        self.object = obj

    def as_triple(self) -> Triple:
        return Triple(self.subject, self.predicate, self.object)

    def n3(self) -> str:
        return (
            f"<< {term_n3(self.subject)} {term_n3(self.predicate)} "
            f"{term_n3(self.object)} >>"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, QuotedTriple):
            return NotImplemented
        return (
            self.subject == other.subject
            and self.predicate == other.predicate
            and self.object == other.object
        )

    def __hash__(self) -> int:
        return hash(("<<>>", self.subject, self.predicate, self.object))

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return f"QuotedTriple({self.subject!r}, {self.predicate!r}, {self.object!r})"


Term = Union[URIRef, BNode, Literal, QuotedTriple]


def term_n3(term: Any) -> str:
    """N-Triples serialization of any term (plain strings become literals)."""
    if isinstance(term, (URIRef, BNode, Literal, QuotedTriple)):
        return term.n3()
    return Literal(term).n3()


# ------------------------------------------------------------- term parsing
_TERM_RE = re.compile(
    r"""
    (?P<quoted><<.*?>>)            # RDF-star quoted triple (non-greedy)
    | (?P<uri><[^>]*>)             # URI
    | (?P<bnode>_:[^\s]+)          # blank node
    | (?P<literal>"(?:[^"\\]|\\.)*"(?:\^\^<[^>]*>|@[A-Za-z\-]+)?)  # literal
    """,
    re.VERBOSE,
)


def parse_term(token: str) -> Term:
    """Parse one N-Triples term token back into its term object.

    The inverse of :func:`term_n3` (plain Python values that were coerced to
    literals on serialization come back as :class:`Literal`).  Shared by the
    N-Quads parser and the sqlite quad-store backend, which stores terms in
    their N-Triples text form.
    """
    token = token.strip()
    if token.startswith("<<") and token.endswith(">>"):
        inner = token[2:-2].strip()
        terms = list(iter_terms(inner))
        if len(terms) != 3:
            raise ValueError(f"malformed quoted triple: {token!r}")
        return QuotedTriple(terms[0], terms[1], terms[2])
    if token.startswith("<") and token.endswith(">"):
        return URIRef(token[1:-1])
    if token.startswith("_:"):
        return BNode(token[2:])
    if token.startswith('"'):
        match = re.match(r'^"((?:[^"\\]|\\.)*)"(?:\^\^<([^>]*)>|@([A-Za-z\-]+))?$', token)
        if not match:
            raise ValueError(f"malformed literal: {token!r}")
        value = Literal.unescape(match.group(1))
        datatype = URIRef(match.group(2)) if match.group(2) else None
        language = match.group(3)
        return Literal(value, datatype=datatype, language=language)
    raise ValueError(f"cannot parse term: {token!r}")


def iter_terms(text: str) -> Iterator[Term]:
    """Iterate the term objects of a whitespace-separated N-Triples line."""
    for match in _TERM_RE.finditer(text):
        yield parse_term(match.group(0))


# ------------------------------------------------------- dictionary encoding
class TermDictionary:
    """Bidirectional term <-> integer-id interning.

    Every serious triple store dictionary-encodes terms: each distinct term
    gets one small integer id, triples become id-tuples, and joins compare
    machine ints instead of hashing/comparing Python strings and literal
    objects.  One dictionary is shared by all named graphs of a backend, so
    ids are stable across graphs and a term's text is stored exactly once
    regardless of how many triples reference it.

    Ids start at 1 (matching sqlite's ``INTEGER PRIMARY KEY`` row ids so the
    persistent subclass can reuse them verbatim); id 0 is never assigned, and
    negative ids are reserved for the SPARQL engine's query-local values.

    Quoted (RDF-star) triples are first-class terms: encoding one interns its
    inner terms first and records the ``id -> (s, p, o)`` part mapping, so
    the graph index can maintain its partial quoted-triple indexes — and the
    engine can structurally match quoted patterns — without ever decoding.

    Equality follows Python ``dict`` key semantics, exactly like the seed's
    triple sets did: terms that compare equal (e.g. ``URIRef("x")`` and the
    plain string ``"x"``) alias to one id, terms that do not (``Literal("5")``
    vs ``"5"``) stay distinct.
    """

    __slots__ = (
        "_term_to_id",
        "_id_to_term",
        "_quoted_parts",
        "_quoted_by_parts",
        "_quoted_columns",
        "_quoted_appends",
        "_next_id",
    )

    def __init__(self):
        self._term_to_id: dict = {}
        self._id_to_term: dict = {}
        #: ``quoted term id -> (subject id, predicate id, object id)``.
        self._quoted_parts: dict = {}
        #: Inverse of ``_quoted_parts`` for O(1) quoted-term lookups by parts.
        self._quoted_by_parts: dict = {}
        #: Cached :meth:`quoted_columns` arrays; ``None`` after any mutation
        #: the cache cannot absorb (rollback), otherwise extended in place.
        self._quoted_columns = None
        #: ``(quoted id, s, p, o)`` registrations made since the cached
        #: snapshot was taken; merged into it on the next columns request.
        self._quoted_appends: list = []
        self._next_id: int = 1

    def __len__(self) -> int:
        return len(self._id_to_term)

    # ------------------------------------------------------------- interning
    def encode(self, term: Any) -> int:
        """The term's id, interning it (and any inner terms) if new."""
        term_id = self._term_to_id.get(term)
        if term_id is not None:
            return term_id
        if isinstance(term, QuotedTriple):
            parts = (
                self.encode(term.subject),
                self.encode(term.predicate),
                self.encode(term.object),
            )
            term_id = self._quoted_by_parts.get(parts)
            if term_id is None:
                term_id = self._assign(term)
                self._quoted_parts[term_id] = parts
                self._quoted_by_parts[parts] = term_id
                self._note_quoted(term_id, parts)
            else:
                self._term_to_id[term] = term_id
            return term_id
        return self._assign(term)

    def encode_triple(self, subject: Any, predicate: Any, obj: Any) -> "tuple[int, int, int]":
        return (self.encode(subject), self.encode(predicate), self.encode(obj))

    def _assign(self, term: Any) -> int:
        term_id = self._next_id
        self._next_id += 1
        self._term_to_id[term] = term_id
        self._id_to_term[term_id] = term
        return term_id

    @property
    def next_id(self) -> int:
        """The id the next interned term would get (ids below it are taken).

        Replication ships dictionary rows incrementally by this watermark:
        a follower that knows every id below ``next_id`` only needs the
        rows at or above it (interning is append-only between rollbacks).
        """
        return self._next_id

    def export_rows(self, start: int) -> "list[tuple[int, str]]":
        """``(id, n3_text)`` rows for every id in ``[start, next_id)``.

        The wire format of dictionary replication: ids are contiguous from
        1, so a follower's ``next_id`` names exactly the rows it is
        missing.  Rows come back in id order.
        """
        id_to_term = self._id_to_term
        return [
            (term_id, term_n3(id_to_term[term_id]))
            for term_id in range(max(start, 1), self._next_id)
            if term_id in id_to_term
        ]

    def export_quoted_rows(self, start: int) -> "list[int]":
        """Flat ``(quoted id, s, p, o)`` runs for quoted ids in ``[start, next_id)``.

        Replication's sidecar to :meth:`export_rows`: shipping the part
        table spares every follower re-deriving it from the ``<< s p o >>``
        spellings (a parse per annotation term, paid once per replica per
        delta otherwise).  Probing via :meth:`quoted_parts` keeps this
        correct for lazily-registering subclasses.
        """
        out: list = []
        extend = out.extend
        quoted_parts = self.quoted_parts
        for term_id in range(max(start, 1), self._next_id):
            parts = quoted_parts(term_id)
            if parts is not None:
                extend((term_id, parts[0], parts[1], parts[2]))
        return out

    def register_quoted_rows(self, rows) -> None:
        """Adopt shipped ``(quoted id, s, p, o)`` registrations in bulk."""
        quoted_parts = self._quoted_parts
        quoted_by_parts = self._quoted_by_parts
        note = self._note_quoted
        for term_id, subject_id, predicate_id, object_id in rows:
            if term_id in quoted_parts:
                continue
            parts = (subject_id, predicate_id, object_id)
            quoted_parts[term_id] = parts
            quoted_by_parts[parts] = term_id
            note(term_id, parts)

    # ---------------------------------------------------------------- undo
    def mark(self) -> int:
        """A rollback point: the next id that would be assigned.

        ``QuadStore.write_batch`` takes a mark when the outermost batch
        opens; :meth:`rollback_to` discards every id interned since, so an
        aborted batch cannot leak dictionary entries (which would make the
        ids of later terms — and therefore the durable byte layout — depend
        on batches that never committed).
        """
        return self._next_id

    def rollback_to(self, mark: int) -> None:
        """Forget every term interned at or after ``mark``.

        Safe only while the caller holds the store's write gate and after
        the triples referencing those ids have been rolled back.
        """
        for term_id in range(mark, self._next_id):
            term = self._id_to_term.pop(term_id, None)
            if term is not None:
                self._term_to_id.pop(term, None)
            parts = self._quoted_parts.pop(term_id, None)
            if parts is not None:
                self._quoted_by_parts.pop(parts, None)
        self._quoted_columns = None
        self._quoted_appends.clear()
        self._next_id = mark

    # --------------------------------------------------------------- lookups
    def lookup(self, term: Any) -> Optional[int]:
        """The term's id without interning; ``None`` for unknown terms."""
        term_id = self._term_to_id.get(term)
        if term_id is None and isinstance(term, QuotedTriple):
            subject = self.lookup(term.subject)
            predicate = self.lookup(term.predicate)
            obj = self.lookup(term.object)
            if subject is None or predicate is None or obj is None:
                return None
            return self._quoted_by_parts.get((subject, predicate, obj))
        return term_id

    def decode(self, term_id: int) -> Any:
        """The term interned under ``term_id``."""
        return self._id_to_term[term_id]

    def quoted_parts(self, term_id: int) -> Optional["tuple[int, int, int]"]:
        """Inner ``(s, p, o)`` ids of a quoted-triple id, else ``None``."""
        return self._quoted_parts.get(term_id)

    def quoted_id(self, parts: "tuple[int, int, int]") -> Optional[int]:
        """The id of the quoted triple with these inner ids, if interned."""
        return self._quoted_by_parts.get(parts)

    def quoted_columns(self):
        """Every quoted triple as four parallel int64 arrays, sorted by id:
        ``(quoted ids, inner subjects, inner predicates, inner objects)``.

        The vectorized annotation scan resolves a whole candidate column of
        quoted-subject ids with one ``searchsorted`` against these arrays
        instead of a dict probe per row.  The snapshot is cached; quoted
        registrations made since it was taken land in ``_quoted_appends``
        and — because interned ids are monotonically increasing — almost
        always extend the sorted arrays with one concatenate, so a stream
        of small commits pays O(new quoted terms) here rather than a full
        O(total) re-sort per commit.  Rollbacks and out-of-order
        registrations (lazy persistent decodes of old ids) still force the
        full rebuild.
        """
        cached = self._quoted_columns
        if cached is not None and not self._quoted_appends:
            return cached
        import numpy as np

        if cached is not None:
            # Incremental merge.  Every quoted registration since the
            # snapshot went through ``_note_quoted`` (intern, shipped-row
            # load, lazy persistent decode), so the append queue *is* the
            # complete diff — no ``_materialize_quoted`` sweep of the whole
            # text map is needed on this path.
            appends = self._quoted_appends
            chunk = np.array(appends, dtype=np.int64).reshape(len(appends), 4)
            chunk = chunk[np.argsort(chunk[:, 0], kind="stable")]
            if len(cached[0]) == 0 or chunk[0, 0] > cached[0][-1]:
                cached = (
                    np.concatenate([cached[0], chunk[:, 0]]),
                    np.concatenate([cached[1], chunk[:, 1]]),
                    np.concatenate([cached[2], chunk[:, 2]]),
                    np.concatenate([cached[3], chunk[:, 3]]),
                )
                self._quoted_appends = []
                self._quoted_columns = cached
                return cached
            # Out-of-order ids (e.g. a lazy decode of an old persisted
            # quoted term from before the snapshot): full rebuild below.
            self._quoted_columns = None
        self._quoted_appends.clear()
        self._materialize_quoted()
        count = len(self._quoted_parts)
        ids = np.fromiter(self._quoted_parts.keys(), np.int64, count)
        parts = np.fromiter(
            (part for triple in self._quoted_parts.values() for part in triple),
            np.int64,
            3 * count,
        ).reshape(count, 3)
        order = np.argsort(ids, kind="stable")
        cached = (
            ids[order],
            np.ascontiguousarray(parts[order, 0]),
            np.ascontiguousarray(parts[order, 1]),
            np.ascontiguousarray(parts[order, 2]),
        )
        self._quoted_columns = cached
        return cached

    def _note_quoted(self, term_id: int, parts: "tuple[int, int, int]") -> None:
        """Record one fresh quoted-part registration against the cache.

        With a columnar snapshot outstanding the registration is queued for
        the incremental merge in :meth:`quoted_columns`; with no snapshot
        there is nothing to patch and the eventual full build reads the
        maps directly.
        """
        if self._quoted_columns is not None:
            self._quoted_appends.append((term_id, parts[0], parts[1], parts[2]))

    def _materialize_quoted(self) -> None:
        """Hook for subclasses whose quoted-part maps fill lazily: ensure
        ``_quoted_parts`` covers every interned quoted triple before a
        columnar snapshot is taken."""
