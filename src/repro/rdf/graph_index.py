"""The per-graph triple index shared by every :class:`QuadStore` backend.

One :class:`GraphIndex` holds the triples of a single named graph together
with the access structures the SPARQL planner relies on: positional hash
indices, per-predicate cardinality statistics and the partial RDF-star
quoted-triple indexes.  Backends differ only in *where the quads live
durably* (process RAM vs a sqlite shard); the in-memory index — and therefore
``match`` / ``estimate`` semantics and the resulting query plans — is
identical across backends.

Since the dictionary-encoding refactor the index stores **id-triples**:
``(subject_id, predicate_id, object_id)`` tuples of small integers assigned
by the backend's shared :class:`~repro.rdf.terms.TermDictionary`.  All index
dictionaries, candidate sets and cardinality statistics are keyed by ids, so
matching compares machine ints instead of hashing term objects, and each
term's text lives in one place no matter how many triples reference it.
:class:`~repro.rdf.store.QuadStore` translates between terms and ids at its
public API boundary.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterator, Optional, Set, Tuple

import numpy as np

from repro.rdf.terms import TermDictionary

#: An id-encoded triple: ``(subject_id, predicate_id, object_id)``.
IdTriple = Tuple[int, int, int]

#: Shared empty candidate set so missing index entries cost no allocation.
_EMPTY_TRIPLES: Set[IdTriple] = frozenset()  # type: ignore[assignment]


class TripleColumns:
    """A graph's id-triples as parallel int64 arrays — the vectorized scan feed.

    Snapshots the triple set into subject / predicate / object columns so the
    SPARQL engine's scan-mode joins select candidates with numpy masks instead
    of per-triple Python comparisons.  Row order is exactly the triple set's
    iteration order at snapshot time, and per-predicate row blocks
    (:meth:`predicate_rows`) preserve the predicate bucket's own iteration
    order — so executors fed from arrays see candidates in the same order as
    executors iterating the sets, keeping row-order-sensitive results (e.g.
    left-to-right float SUMs) byte-identical across paths.

    Every piece is built on first touch: planner paths that only need one
    predicate's bucket (the common shape) never pay the full-graph
    ``fromiter``.  That matters under replication, where every applied
    commit bumps the graph version and discards the snapshot — an eager
    full-matrix rebuild per commit would scale with total graph size
    instead of with what the next query actually scans.
    """

    __slots__ = ("_index", "_version", "_count", "_matrix", "_predicate_rows", "_quoted_rows")

    def __init__(self, index: "GraphIndex"):
        self._index = index
        self._version = index.version
        self._count = len(index.triples)
        #: Lazily-built ``(count, 3)`` id matrix backing the full columns.
        self._matrix: Optional[np.ndarray] = None
        #: Per-predicate (subject, object) column pairs, built lazily from the
        #: predicate bucket set to preserve its iteration order.
        self._predicate_rows: Dict[int, Tuple[np.ndarray, np.ndarray]] = {}
        #: Per-candidate-bucket quoted-scan rows, keyed by the bucket's
        #: identity key — see :meth:`quoted_rows`.
        self._quoted_rows: Dict[tuple, tuple] = {}

    def _columns(self) -> np.ndarray:
        matrix = self._matrix
        if matrix is None:
            index = self._index
            if index.version != self._version:
                # Readers obtain snapshots under the store's read gate and
                # the graph only mutates under the write gate, so a version
                # skew here means a caller cached this snapshot across
                # commits — fail loudly rather than mix two states.
                raise RuntimeError("TripleColumns snapshot outlived its graph version")
            count = self._count
            flat = np.fromiter(
                (part for triple in index.triples for part in triple),
                np.int64,
                3 * count,
            )
            matrix = self._matrix = flat.reshape(count, 3)
        return matrix

    @property
    def subjects(self) -> np.ndarray:
        return self._columns()[:, 0]

    @property
    def predicates(self) -> np.ndarray:
        return self._columns()[:, 1]

    @property
    def objects(self) -> np.ndarray:
        return self._columns()[:, 2]

    def __len__(self) -> int:
        return self._count

    def predicate_rows(self, predicate_id: int, index: "GraphIndex") -> Tuple[np.ndarray, np.ndarray]:
        """``(subjects, objects)`` of the predicate's triples, bucket-ordered."""
        cached = self._predicate_rows.get(predicate_id)
        if cached is None:
            bucket = index.by_predicate.get(predicate_id, _EMPTY_TRIPLES)
            count = len(bucket)
            flat = np.fromiter(
                (triple[position] for triple in bucket for position in (0, 2)),
                np.int64,
                2 * count,
            )
            pair = flat.reshape(count, 2)
            cached = self._predicate_rows[predicate_id] = (pair[:, 0], pair[:, 1])
        return cached

    def quoted_rows(self, key: tuple, candidates, dictionary) -> tuple:
        """Quoted-scan columns for one candidate bucket, cached per bucket.

        Returns ``(positional s/p/o columns, inner s/p/o part columns,
        quoted-subject validity mask)`` in the bucket's own iteration order.
        ``key`` identifies the bucket within this snapshot (e.g. ``("p",
        predicate_id)`` for a predicate bucket) so repeated annotation scans
        and probes — the dashboard pattern — skip the array rebuild and the
        ``searchsorted`` part resolution entirely.  Safe for the snapshot's
        lifetime: bucket membership only changes with a graph-version bump
        (which discards this snapshot), and a quoted term id's inner parts
        are immutable once encoded.  Callers must not mutate the returned
        arrays — mask with non-inplace operators.
        """
        cached = self._quoted_rows.get(key)
        if cached is not None:
            return cached
        count = len(candidates)
        flat = np.fromiter(
            (part for triple in candidates for part in triple),
            np.int64,
            3 * count,
        ).reshape(count, 3)
        positional = (flat[:, 0], flat[:, 1], flat[:, 2])
        subjects = positional[0]
        quoted_ids, inner_s, inner_p, inner_o = dictionary.quoted_columns()
        if len(quoted_ids):
            positions = np.searchsorted(quoted_ids, subjects).clip(
                0, len(quoted_ids) - 1
            )
            valid = quoted_ids[positions] == subjects
            parts = (inner_s[positions], inner_p[positions], inner_o[positions])
        else:
            valid = np.zeros(count, dtype=bool)
            parts = (subjects, subjects, subjects)
        cached = self._quoted_rows[key] = (positional, parts, valid)
        return cached

    def match_rows(
        self,
        subject: Optional[int] = None,
        predicate: Optional[int] = None,
        obj: Optional[int] = None,
    ) -> np.ndarray:
        """Row positions matching the pattern (``None`` is a wildcard)."""
        mask: Optional[np.ndarray] = None
        for value, column in (
            (subject, self.subjects),
            (predicate, self.predicates),
            (obj, self.objects),
        ):
            if value is None:
                continue
            hits = column == value
            mask = hits if mask is None else mask & hits
        if mask is None:
            return np.arange(self._count)
        return np.nonzero(mask)[0]


class PredicateStats:
    """Incremental cardinality statistics for one predicate in one graph.

    Tracks the triple count plus distinct subject/object counts (via
    refcounting multisets over term ids), giving the SPARQL planner real
    join-size estimates: the expected number of matches of ``(?s p ?o)`` for
    a specific but yet-unknown subject is ``count / distinct_subjects`` (the
    average subject fan-out).
    """

    __slots__ = ("count", "subjects", "objects")

    def __init__(self):
        self.count = 0
        self.subjects: Dict[int, int] = {}
        self.objects: Dict[int, int] = {}

    def add(self, subject_id: int, object_id: int) -> None:
        self.count += 1
        self.subjects[subject_id] = self.subjects.get(subject_id, 0) + 1
        self.objects[object_id] = self.objects.get(object_id, 0) + 1

    def remove(self, subject_id: int, object_id: int) -> None:
        self.count -= 1
        for counter, term_id in ((self.subjects, subject_id), (self.objects, object_id)):
            remaining = counter.get(term_id, 0) - 1
            if remaining > 0:
                counter[term_id] = remaining
            else:
                counter.pop(term_id, None)

    @property
    def distinct_subjects(self) -> int:
        return len(self.subjects)

    @property
    def distinct_objects(self) -> int:
        return len(self.objects)

    def to_dict(self) -> Dict[str, int]:
        return {
            "count": self.count,
            "distinct_subjects": self.distinct_subjects,
            "distinct_objects": self.distinct_objects,
        }


class GraphIndex:
    """Per-graph id-triple set with subject/predicate/object hash indices.

    Beyond the three positional indices, the graph maintains per-predicate
    cardinality statistics (updated incrementally on add/remove) and partial
    RDF-star indices over annotation triples: triples whose subject is a
    quoted triple are additionally keyed by the quoted triple's *inner*
    subject and inner object ids, so ``<< ?c1 p ?c2 >>`` patterns with one
    bound side hit a hash entry instead of scanning all annotations.  The
    shared :class:`TermDictionary` supplies the quoted-part structure.
    """

    __slots__ = (
        "dictionary",
        "triples",
        "by_subject",
        "by_predicate",
        "by_object",
        "by_quoted_subject",
        "by_quoted_object",
        "predicate_stats",
        "version",
        "_columnar",
    )

    def __init__(self, dictionary: TermDictionary):
        self.dictionary = dictionary
        self.triples: Set[IdTriple] = set()
        self.by_subject: Dict[int, Set[IdTriple]] = defaultdict(set)
        self.by_predicate: Dict[int, Set[IdTriple]] = defaultdict(set)
        self.by_object: Dict[int, Set[IdTriple]] = defaultdict(set)
        #: Annotation triples keyed by their quoted subject's inner term ids.
        self.by_quoted_subject: Dict[int, Set[IdTriple]] = defaultdict(set)
        self.by_quoted_object: Dict[int, Set[IdTriple]] = defaultdict(set)
        #: Per-predicate cardinality statistics.
        self.predicate_stats: Dict[int, PredicateStats] = {}
        #: Per-graph mutation counter (bumps on every insert/remove).
        self.version = 0
        #: ``(version, TripleColumns)`` snapshot cache for vectorized scans.
        self._columnar: Optional[Tuple[int, TripleColumns]] = None

    def add(self, triple: IdTriple) -> bool:
        if triple in self.triples:
            return False
        subject_id, predicate_id, object_id = triple
        self.triples.add(triple)
        self.by_subject[subject_id].add(triple)
        self.by_predicate[predicate_id].add(triple)
        self.by_object[object_id].add(triple)
        quoted = self.dictionary.quoted_parts(subject_id)
        if quoted is not None:
            self.by_quoted_subject[quoted[0]].add(triple)
            self.by_quoted_object[quoted[2]].add(triple)
        stats = self.predicate_stats.get(predicate_id)
        if stats is None:
            stats = self.predicate_stats[predicate_id] = PredicateStats()
        stats.add(subject_id, object_id)
        self.version += 1
        return True

    def add_many(self, rows: "list[IdTriple]") -> "list[IdTriple]":
        """Bulk :meth:`add`; returns the genuinely-new triples, in order.

        The replication apply path feeds six-digit row batches through the
        index, where per-row method dispatch and attribute traffic are a
        third of the cost — this loop binds everything once and bumps the
        graph version once per batch instead of per row (any snapshot
        invalidation cares only that the version *moved*).  Large batches
        resolve the quoted-subject probe for the whole batch with one
        ``searchsorted`` against the dictionary's columnar snapshot (which
        covers every registered quoted triple) instead of a dict probe per
        row.
        """
        triples = self.triples
        by_subject = self.by_subject
        by_predicate = self.by_predicate
        by_object = self.by_object
        by_quoted_subject = self.by_quoted_subject
        by_quoted_object = self.by_quoted_object
        predicate_stats = self.predicate_stats
        added = []
        append = added.append
        quoted_rows = None
        if len(rows) >= 1024:
            quoted_ids, inner_s, _, inner_o = self.dictionary.quoted_columns()
            if len(quoted_ids):
                subjects = np.fromiter((row[0] for row in rows), np.int64, len(rows))
                positions = np.searchsorted(quoted_ids, subjects).clip(
                    0, len(quoted_ids) - 1
                )
                valid = quoted_ids[positions] == subjects
                quoted_rows = (
                    valid.tolist(),
                    inner_s[positions].tolist(),
                    inner_o[positions].tolist(),
                )
        if quoted_rows is not None:
            valid, part_subjects, part_objects = quoted_rows
            for position, triple in enumerate(rows):
                if triple in triples:
                    continue
                subject_id, predicate_id, object_id = triple
                triples.add(triple)
                by_subject[subject_id].add(triple)
                by_predicate[predicate_id].add(triple)
                by_object[object_id].add(triple)
                if valid[position]:
                    by_quoted_subject[part_subjects[position]].add(triple)
                    by_quoted_object[part_objects[position]].add(triple)
                stats = predicate_stats.get(predicate_id)
                if stats is None:
                    stats = predicate_stats[predicate_id] = PredicateStats()
                stats.add(subject_id, object_id)
                append(triple)
        else:
            quoted_parts = self.dictionary.quoted_parts
            for triple in rows:
                if triple in triples:
                    continue
                subject_id, predicate_id, object_id = triple
                triples.add(triple)
                by_subject[subject_id].add(triple)
                by_predicate[predicate_id].add(triple)
                by_object[object_id].add(triple)
                quoted = quoted_parts(subject_id)
                if quoted is not None:
                    by_quoted_subject[quoted[0]].add(triple)
                    by_quoted_object[quoted[2]].add(triple)
                stats = predicate_stats.get(predicate_id)
                if stats is None:
                    stats = predicate_stats[predicate_id] = PredicateStats()
                stats.add(subject_id, object_id)
                append(triple)
        if added:
            self.version += 1
        return added

    def remove(self, triple: IdTriple) -> bool:
        if triple not in self.triples:
            return False
        subject_id, predicate_id, object_id = triple
        self.triples.discard(triple)
        self.by_subject[subject_id].discard(triple)
        self.by_predicate[predicate_id].discard(triple)
        self.by_object[object_id].discard(triple)
        quoted = self.dictionary.quoted_parts(subject_id)
        if quoted is not None:
            self.by_quoted_subject[quoted[0]].discard(triple)
            self.by_quoted_object[quoted[2]].discard(triple)
        stats = self.predicate_stats.get(predicate_id)
        if stats is not None:
            stats.remove(subject_id, object_id)
            if stats.count <= 0:
                del self.predicate_stats[predicate_id]
        self.version += 1
        return True

    def match(
        self,
        subject: Optional[int] = None,
        predicate: Optional[int] = None,
        obj: Optional[int] = None,
    ) -> Iterator[IdTriple]:
        """Iterate id-triples matching the pattern (``None`` is a wildcard).

        Scans the smallest index among the bound ids and filters the rest
        with direct slot comparisons, avoiding set-intersection allocations.
        The candidate set is snapshotted so callers may mutate the index
        while iterating (e.g. retraction loops).
        """
        candidates: Set[IdTriple] = self.triples
        if subject is not None:
            candidates = self.by_subject.get(subject, _EMPTY_TRIPLES)
        if predicate is not None:
            by_predicate = self.by_predicate.get(predicate, _EMPTY_TRIPLES)
            if len(by_predicate) < len(candidates):
                candidates = by_predicate
        if obj is not None:
            by_object = self.by_object.get(obj, _EMPTY_TRIPLES)
            if len(by_object) < len(candidates):
                candidates = by_object
        for triple in tuple(candidates):
            if subject is not None and triple[0] != subject:
                continue
            if predicate is not None and triple[1] != predicate:
                continue
            if obj is not None and triple[2] != obj:
                continue
            yield triple

    def columnar(self) -> TripleColumns:
        """The graph's triples as numpy id columns, cached per version.

        The snapshot is invalidated by any mutation (the per-graph
        ``version`` counter bumps on every add/remove), so readers always
        see columns consistent with the sets — and repeated scans within one
        query, or across queries over a quiescent graph, pay the conversion
        once.
        """
        cached = self._columnar
        if cached is not None and cached[0] == self.version:
            return cached[1]
        columns = TripleColumns(self)
        self._columnar = (self.version, columns)
        return columns

    def match_id_arrays(
        self,
        subject: Optional[int] = None,
        predicate: Optional[int] = None,
        obj: Optional[int] = None,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Id-array :meth:`match`: matching triples as three parallel arrays.

        The vectorized executor's scan feed — candidates arrive as int64
        columns ready for numpy key-hashing instead of per-triple tuples.
        """
        columns = self.columnar()
        rows = columns.match_rows(subject, predicate, obj)
        return (
            columns.subjects[rows],
            columns.predicates[rows],
            columns.objects[rows],
        )

    def estimate(
        self,
        subject: Optional[int] = None,
        predicate: Optional[int] = None,
        obj: Optional[int] = None,
    ) -> int:
        """Upper bound on the number of matches, from index sizes alone (O(1))."""
        estimate = len(self.triples)
        if subject is not None:
            estimate = min(estimate, len(self.by_subject.get(subject, _EMPTY_TRIPLES)))
        if predicate is not None:
            estimate = min(estimate, len(self.by_predicate.get(predicate, _EMPTY_TRIPLES)))
        if obj is not None:
            estimate = min(estimate, len(self.by_object.get(obj, _EMPTY_TRIPLES)))
        return estimate

    def _quoted_candidates(
        self,
        inner_subject: Optional[int],
        inner_object: Optional[int],
        predicate: Optional[int],
        obj: Optional[int],
    ) -> Set[IdTriple]:
        """Smallest candidate set for a partially-bound quoted-subject pattern."""
        candidates: Optional[Set[IdTriple]] = None
        if inner_subject is not None:
            candidates = self.by_quoted_subject.get(inner_subject, _EMPTY_TRIPLES)
        if inner_object is not None:
            by_inner_object = self.by_quoted_object.get(inner_object, _EMPTY_TRIPLES)
            if candidates is None or len(by_inner_object) < len(candidates):
                candidates = by_inner_object
        if predicate is not None:
            by_predicate = self.by_predicate.get(predicate, _EMPTY_TRIPLES)
            if candidates is None or len(by_predicate) < len(candidates):
                candidates = by_predicate
        if obj is not None:
            by_object = self.by_object.get(obj, _EMPTY_TRIPLES)
            if candidates is None or len(by_object) < len(candidates):
                candidates = by_object
        return self.triples if candidates is None else candidates

    def match_quoted(
        self,
        inner_subject: Optional[int] = None,
        inner_predicate: Optional[int] = None,
        inner_object: Optional[int] = None,
        predicate: Optional[int] = None,
        obj: Optional[int] = None,
    ) -> Iterator[IdTriple]:
        """Triples whose subject is a quoted triple matching the inner pattern.

        ``inner_*`` constrain the quoted triple's own term ids (``None`` is a
        wildcard); ``predicate``/``obj`` constrain the outer annotation
        triple.  Scans the smallest applicable index — for one-side-bound
        patterns like ``<< ?c1 p ?c2 >>`` with ``?c1`` known this is the
        partial quoted-subject hash entry, not the full annotation set.
        """
        quoted_parts = self.dictionary.quoted_parts
        candidates = self._quoted_candidates(inner_subject, inner_object, predicate, obj)
        for triple in tuple(candidates):
            quoted = quoted_parts(triple[0])
            if quoted is None:
                continue
            if inner_subject is not None and quoted[0] != inner_subject:
                continue
            if inner_predicate is not None and quoted[1] != inner_predicate:
                continue
            if inner_object is not None and quoted[2] != inner_object:
                continue
            if predicate is not None and triple[1] != predicate:
                continue
            if obj is not None and triple[2] != obj:
                continue
            yield triple

    def estimate_quoted(
        self,
        inner_subject: Optional[int] = None,
        inner_object: Optional[int] = None,
        predicate: Optional[int] = None,
        obj: Optional[int] = None,
    ) -> int:
        """Upper bound on :meth:`match_quoted` results from index sizes (O(1))."""
        return len(self._quoted_candidates(inner_subject, inner_object, predicate, obj))
