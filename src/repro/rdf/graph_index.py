"""The per-graph triple index shared by every :class:`QuadStore` backend.

One :class:`GraphIndex` holds the triples of a single named graph together
with the access structures the SPARQL planner relies on: positional hash
indices, per-predicate cardinality statistics and the partial RDF-star
quoted-triple indexes.  Backends differ only in *where the quads live
durably* (process RAM vs a sqlite shard); the in-memory index — and therefore
``match`` / ``estimate`` semantics and the resulting query plans — is
identical across backends.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Dict, Iterator, Optional, Set

from repro.rdf.terms import QuotedTriple, Triple

#: Shared empty candidate set so missing index entries cost no allocation.
_EMPTY_TRIPLES: Set["Triple"] = frozenset()  # type: ignore[assignment]


class PredicateStats:
    """Incremental cardinality statistics for one predicate in one graph.

    Tracks the triple count plus distinct subject/object counts (via
    refcounting multisets), giving the SPARQL planner real join-size
    estimates: the expected number of matches of ``(?s p ?o)`` for a specific
    but yet-unknown subject is ``count / distinct_subjects`` (the average
    subject fan-out).
    """

    __slots__ = ("count", "subjects", "objects")

    def __init__(self):
        self.count = 0
        self.subjects: Dict[Any, int] = {}
        self.objects: Dict[Any, int] = {}

    def add(self, subject: Any, obj: Any) -> None:
        self.count += 1
        self.subjects[subject] = self.subjects.get(subject, 0) + 1
        self.objects[obj] = self.objects.get(obj, 0) + 1

    def remove(self, subject: Any, obj: Any) -> None:
        self.count -= 1
        for counter, term in ((self.subjects, subject), (self.objects, obj)):
            remaining = counter.get(term, 0) - 1
            if remaining > 0:
                counter[term] = remaining
            else:
                counter.pop(term, None)

    @property
    def distinct_subjects(self) -> int:
        return len(self.subjects)

    @property
    def distinct_objects(self) -> int:
        return len(self.objects)

    def to_dict(self) -> Dict[str, int]:
        return {
            "count": self.count,
            "distinct_subjects": self.distinct_subjects,
            "distinct_objects": self.distinct_objects,
        }


class GraphIndex:
    """Per-graph triple set with subject/predicate/object hash indices.

    Beyond the three positional indices, the graph maintains per-predicate
    cardinality statistics (updated incrementally on add/remove) and partial
    RDF-star indices over annotation triples: triples whose subject is a
    quoted triple are additionally keyed by the quoted triple's *inner*
    subject and inner object, so ``<< ?c1 p ?c2 >>`` patterns with one bound
    side hit a hash entry instead of scanning all annotations.
    """

    __slots__ = (
        "triples",
        "by_subject",
        "by_predicate",
        "by_object",
        "by_quoted_subject",
        "by_quoted_object",
        "predicate_stats",
        "version",
    )

    def __init__(self):
        self.triples: Set[Triple] = set()
        self.by_subject: Dict[Any, Set[Triple]] = defaultdict(set)
        self.by_predicate: Dict[Any, Set[Triple]] = defaultdict(set)
        self.by_object: Dict[Any, Set[Triple]] = defaultdict(set)
        #: Annotation triples keyed by their quoted subject's inner terms.
        self.by_quoted_subject: Dict[Any, Set[Triple]] = defaultdict(set)
        self.by_quoted_object: Dict[Any, Set[Triple]] = defaultdict(set)
        #: Per-predicate cardinality statistics.
        self.predicate_stats: Dict[Any, PredicateStats] = {}
        #: Per-graph mutation counter (bumps on every insert/remove).
        self.version = 0

    def add(self, triple: Triple) -> bool:
        if triple in self.triples:
            return False
        self.triples.add(triple)
        self.by_subject[triple.subject].add(triple)
        self.by_predicate[triple.predicate].add(triple)
        self.by_object[triple.object].add(triple)
        if isinstance(triple.subject, QuotedTriple):
            self.by_quoted_subject[triple.subject.subject].add(triple)
            self.by_quoted_object[triple.subject.object].add(triple)
        stats = self.predicate_stats.get(triple.predicate)
        if stats is None:
            stats = self.predicate_stats[triple.predicate] = PredicateStats()
        stats.add(triple.subject, triple.object)
        self.version += 1
        return True

    def remove(self, triple: Triple) -> bool:
        if triple not in self.triples:
            return False
        self.triples.discard(triple)
        self.by_subject[triple.subject].discard(triple)
        self.by_predicate[triple.predicate].discard(triple)
        self.by_object[triple.object].discard(triple)
        if isinstance(triple.subject, QuotedTriple):
            self.by_quoted_subject[triple.subject.subject].discard(triple)
            self.by_quoted_object[triple.subject.object].discard(triple)
        stats = self.predicate_stats.get(triple.predicate)
        if stats is not None:
            stats.remove(triple.subject, triple.object)
            if stats.count <= 0:
                del self.predicate_stats[triple.predicate]
        self.version += 1
        return True

    def match(
        self, subject: Any = None, predicate: Any = None, obj: Any = None
    ) -> Iterator[Triple]:
        """Iterate triples matching the pattern (``None`` is a wildcard).

        Scans the smallest index among the bound terms and filters the rest
        with direct field comparisons, avoiding set-intersection allocations.
        The candidate set is snapshotted so callers may mutate the index
        while iterating (e.g. retraction loops).
        """
        candidates: Set[Triple] = self.triples
        if subject is not None:
            candidates = self.by_subject.get(subject, _EMPTY_TRIPLES)
        if predicate is not None:
            by_predicate = self.by_predicate.get(predicate, _EMPTY_TRIPLES)
            if len(by_predicate) < len(candidates):
                candidates = by_predicate
        if obj is not None:
            by_object = self.by_object.get(obj, _EMPTY_TRIPLES)
            if len(by_object) < len(candidates):
                candidates = by_object
        for triple in tuple(candidates):
            if subject is not None and triple.subject != subject:
                continue
            if predicate is not None and triple.predicate != predicate:
                continue
            if obj is not None and triple.object != obj:
                continue
            yield triple

    def estimate(
        self, subject: Any = None, predicate: Any = None, obj: Any = None
    ) -> int:
        """Upper bound on the number of matches, from index sizes alone (O(1))."""
        estimate = len(self.triples)
        if subject is not None:
            estimate = min(estimate, len(self.by_subject.get(subject, _EMPTY_TRIPLES)))
        if predicate is not None:
            estimate = min(estimate, len(self.by_predicate.get(predicate, _EMPTY_TRIPLES)))
        if obj is not None:
            estimate = min(estimate, len(self.by_object.get(obj, _EMPTY_TRIPLES)))
        return estimate

    def _quoted_candidates(
        self,
        inner_subject: Any,
        inner_object: Any,
        predicate: Any,
        obj: Any,
    ) -> Set[Triple]:
        """Smallest candidate set for a partially-bound quoted-subject pattern."""
        candidates: Optional[Set[Triple]] = None
        if inner_subject is not None:
            candidates = self.by_quoted_subject.get(inner_subject, _EMPTY_TRIPLES)
        if inner_object is not None:
            by_inner_object = self.by_quoted_object.get(inner_object, _EMPTY_TRIPLES)
            if candidates is None or len(by_inner_object) < len(candidates):
                candidates = by_inner_object
        if predicate is not None:
            by_predicate = self.by_predicate.get(predicate, _EMPTY_TRIPLES)
            if candidates is None or len(by_predicate) < len(candidates):
                candidates = by_predicate
        if obj is not None:
            by_object = self.by_object.get(obj, _EMPTY_TRIPLES)
            if candidates is None or len(by_object) < len(candidates):
                candidates = by_object
        return self.triples if candidates is None else candidates

    def match_quoted(
        self,
        inner_subject: Any = None,
        inner_predicate: Any = None,
        inner_object: Any = None,
        predicate: Any = None,
        obj: Any = None,
    ) -> Iterator[Triple]:
        """Triples whose subject is a quoted triple matching the inner pattern.

        ``inner_*`` constrain the quoted triple's own terms (``None`` is a
        wildcard); ``predicate``/``obj`` constrain the outer annotation
        triple.  Scans the smallest applicable index — for one-side-bound
        patterns like ``<< ?c1 p ?c2 >>`` with ``?c1`` known this is the
        partial quoted-subject hash entry, not the full annotation set.
        """
        candidates = self._quoted_candidates(inner_subject, inner_object, predicate, obj)
        for triple in tuple(candidates):
            quoted = triple.subject
            if not isinstance(quoted, QuotedTriple):
                continue
            if inner_subject is not None and quoted.subject != inner_subject:
                continue
            if inner_predicate is not None and quoted.predicate != inner_predicate:
                continue
            if inner_object is not None and quoted.object != inner_object:
                continue
            if predicate is not None and triple.predicate != predicate:
                continue
            if obj is not None and triple.object != obj:
                continue
            yield triple

    def estimate_quoted(
        self,
        inner_subject: Any = None,
        inner_object: Any = None,
        predicate: Any = None,
        obj: Any = None,
    ) -> int:
        """Upper bound on :meth:`match_quoted` results from index sizes (O(1))."""
        return len(self._quoted_candidates(inner_subject, inner_object, predicate, obj))
