"""Fault injection for the storage layer: prove rollback, not just hope.

:class:`FaultInjectingBackend` wraps any :class:`QuadStoreBackend` and
counts *fault points* — mutation hooks, flushes, batch commits.  A
:class:`FaultPlan` arms one point: when the counter reaches it, the wrapper
either raises (:class:`InjectedFault` — an "application" failure the undo
log must roll back) or severs the inner backend mid-write
(:class:`InjectedCrash` — buffered writes dropped, the open sqlite
transaction left uncommitted, as a ``kill -9`` would).

The crash-point sweep tests drive a governed ingestion once per fault
point and assert the store afterwards is byte-identical to one that never
saw the failed batch — at *every* point, which is what makes the batch
"all-or-nothing" rather than "usually fine".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, List, Optional, Tuple

from repro.rdf.backend import QuadStoreBackend
from repro.rdf.graph_index import GraphIndex, IdTriple
from repro.rdf.terms import TermDictionary, URIRef


class InjectedFault(RuntimeError):
    """An injected in-process failure (the batch body observes it raising)."""


class InjectedCrash(RuntimeError):
    """An injected process death: the inner backend was severed mid-write.

    After this raises the backend is unusable; recovery is reopening the
    durable path, which rolls back to the last committed ``commit_version``
    via the sqlite journal.
    """


@dataclass
class FaultPlan:
    """Arm one fault point.

    ``at`` is the 1-based fault-point count to fire on; ``kind`` is
    ``"raise"`` (recoverable in-process error) or ``"crash"`` (sever the
    backend as a process kill would).  One-shot by default: the plan disarms
    after firing so the rolled-back batch can be retried; ``sticky`` keeps
    it armed (every retry fails at the same point — the poison-table case).
    """

    at: int
    kind: str = "raise"
    sticky: bool = False

    def __post_init__(self) -> None:
        if self.kind not in ("raise", "crash"):
            raise ValueError(f"unknown fault kind: {self.kind!r}")
        if self.at < 1:
            raise ValueError("fault point counts are 1-based")


class FaultInjectingBackend(QuadStoreBackend):
    """A delegating backend that fails on command (see module docstring).

    Fault points tick on every mutation hook (``quad_added`` /
    ``quad_removed`` / ``predicate_removed`` / ``delete_predicate_unloaded``
    / graph drops) and on every durability boundary (``flush`` /
    ``commit_batch``) — *before* the inner backend sees the operation, so a
    fired fault models dying during the op.  ``op_count`` keeps counting
    with no plan armed; a sweep first runs fault-free to learn how many
    points one workload has, then replays it once per point.
    """

    def __init__(self, inner: QuadStoreBackend, plan: Optional[FaultPlan] = None):
        self._inner = inner
        self.plan = plan
        #: Total fault points seen (keeps counting after the plan fires).
        self.op_count = 0
        #: ``(operation, count)`` of the last fired fault, if any.
        self.fired: Optional[Tuple[str, int]] = None

    # ------------------------------------------------------------ fault engine
    def _tick(self, operation: str) -> None:
        self.op_count += 1
        plan = self.plan
        if plan is None or self.op_count != plan.at:
            return
        if not plan.sticky:
            self.plan = None
        self.fired = (operation, self.op_count)
        if plan.kind == "crash":
            crash = getattr(self._inner, "crash", None)
            if crash is not None:
                crash()
            raise InjectedCrash(f"injected crash at {operation} #{self.op_count}")
        raise InjectedFault(f"injected fault at {operation} #{self.op_count}")

    # -------------------------------------------------------------- delegation
    @property
    def persistent(self) -> bool:  # type: ignore[override]
        return self._inner.persistent

    @property
    def dictionary(self) -> TermDictionary:  # type: ignore[override]
        return self._inner.dictionary

    @property
    def inner(self) -> QuadStoreBackend:
        """The wrapped backend (e.g. to reach ``SqliteBackend.path``)."""
        return self._inner

    def graph_names(self) -> List[URIRef]:
        return self._inner.graph_names()

    def get_index(self, graph: URIRef) -> Optional[GraphIndex]:
        return self._inner.get_index(graph)

    def ensure_index(self, graph: URIRef) -> GraphIndex:
        return self._inner.ensure_index(graph)

    def items(self) -> Iterable[Tuple[URIRef, GraphIndex]]:
        return self._inner.items()

    def triple_count(self, graph: URIRef) -> int:
        return self._inner.triple_count(graph)

    def pin_residency(self) -> None:
        self._inner.pin_residency()

    def unpin_residency(self) -> None:
        self._inner.unpin_residency()

    def close(self) -> None:
        self._inner.close()

    # ------------------------------------------- faulting mutation delegation
    def quad_added(self, graph: URIRef, triple: IdTriple) -> None:
        self._tick("quad_added")
        self._inner.quad_added(graph, triple)

    def quad_removed(self, graph: URIRef, triple: IdTriple) -> None:
        self._tick("quad_removed")
        self._inner.quad_removed(graph, triple)

    def predicate_removed(self, graph: URIRef, predicate_id: int) -> None:
        self._tick("predicate_removed")
        self._inner.predicate_removed(graph, predicate_id)

    def delete_predicate_unloaded(
        self, graph: URIRef, predicate_id: int
    ) -> Optional[int]:
        self._tick("delete_predicate_unloaded")
        return self._inner.delete_predicate_unloaded(graph, predicate_id)

    def drop_graph(self, graph: URIRef) -> bool:
        self._tick("drop_graph")
        return self._inner.drop_graph(graph)

    def drop_graph_for_undo(self, graph: URIRef) -> Optional[Any]:
        self._tick("drop_graph")
        return self._inner.drop_graph_for_undo(graph)

    def restore_graph(self, graph: URIRef, token: Any) -> None:
        # Undo replay must never fault: a failed rollback is corruption.
        self._inner.restore_graph(graph, token)

    def flush(self) -> None:
        self._tick("flush")
        self._inner.flush()

    # ---------------------------------------------------- transaction protocol
    def begin_batch(self) -> None:
        self._inner.begin_batch()

    def commit_batch(self, commit_version: int) -> None:
        self._tick("commit_batch")
        self._inner.commit_batch(commit_version)

    def rollback_batch(self) -> None:
        self._inner.rollback_batch()

    def resident_index(self, graph: URIRef) -> Optional[GraphIndex]:
        return self._inner.resident_index(graph)

    def committed_version(self) -> int:
        return self._inner.committed_version()

    def note_commit_version(self, commit_version: int) -> None:
        self._inner.note_commit_version(commit_version)

    @property
    def recovery(self) -> Any:
        return getattr(self._inner, "recovery", {})
