"""The quad store: named graphs, triple-pattern matching, RDF-star annotations."""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Dict, Iterable, Iterator, List, Optional, Set, Tuple

from repro.rdf.terms import Literal, QuotedTriple, Triple, URIRef

#: Name of the default graph (triples added without an explicit graph).
DEFAULT_GRAPH = URIRef("http://kglids.org/resource/defaultGraph")

#: Shared empty candidate set so missing index entries cost no allocation.
_EMPTY_TRIPLES: Set["Triple"] = frozenset()  # type: ignore[assignment]


class _GraphIndex:
    """Per-graph triple set with subject/predicate/object hash indices."""

    __slots__ = ("triples", "by_subject", "by_predicate", "by_object", "version")

    def __init__(self):
        self.triples: Set[Triple] = set()
        self.by_subject: Dict[Any, Set[Triple]] = defaultdict(set)
        self.by_predicate: Dict[Any, Set[Triple]] = defaultdict(set)
        self.by_object: Dict[Any, Set[Triple]] = defaultdict(set)
        #: Per-graph mutation counter (bumps on every insert/remove).
        self.version = 0

    def add(self, triple: Triple) -> bool:
        if triple in self.triples:
            return False
        self.triples.add(triple)
        self.by_subject[triple.subject].add(triple)
        self.by_predicate[triple.predicate].add(triple)
        self.by_object[triple.object].add(triple)
        self.version += 1
        return True

    def remove(self, triple: Triple) -> bool:
        if triple not in self.triples:
            return False
        self.triples.discard(triple)
        self.by_subject[triple.subject].discard(triple)
        self.by_predicate[triple.predicate].discard(triple)
        self.by_object[triple.object].discard(triple)
        self.version += 1
        return True

    def match(
        self, subject: Any = None, predicate: Any = None, obj: Any = None
    ) -> Iterator[Triple]:
        """Iterate triples matching the pattern (``None`` is a wildcard).

        Scans the smallest index among the bound terms and filters the rest
        with direct field comparisons, avoiding set-intersection allocations.
        The candidate set is snapshotted so callers may mutate the index
        while iterating (e.g. retraction loops).
        """
        candidates: Set[Triple] = self.triples
        if subject is not None:
            candidates = self.by_subject.get(subject, _EMPTY_TRIPLES)
        if predicate is not None:
            by_predicate = self.by_predicate.get(predicate, _EMPTY_TRIPLES)
            if len(by_predicate) < len(candidates):
                candidates = by_predicate
        if obj is not None:
            by_object = self.by_object.get(obj, _EMPTY_TRIPLES)
            if len(by_object) < len(candidates):
                candidates = by_object
        for triple in tuple(candidates):
            if subject is not None and triple.subject != subject:
                continue
            if predicate is not None and triple.predicate != predicate:
                continue
            if obj is not None and triple.object != obj:
                continue
            yield triple

    def estimate(
        self, subject: Any = None, predicate: Any = None, obj: Any = None
    ) -> int:
        """Upper bound on the number of matches, from index sizes alone (O(1))."""
        estimate = len(self.triples)
        if subject is not None:
            estimate = min(estimate, len(self.by_subject.get(subject, _EMPTY_TRIPLES)))
        if predicate is not None:
            estimate = min(estimate, len(self.by_predicate.get(predicate, _EMPTY_TRIPLES)))
        if obj is not None:
            estimate = min(estimate, len(self.by_object.get(obj, _EMPTY_TRIPLES)))
        return estimate


class QuadStore:
    """An in-memory RDF-star store with named graphs.

    This is the storage engine of the reproduction: the KG Governor writes the
    LiDS graph into it (one named graph per pipeline, plus the dataset,
    library and ontology graphs) and the SPARQL engine evaluates queries
    against it.
    """

    def __init__(self):
        self._graphs: Dict[URIRef, _GraphIndex] = {}
        self._version = 0

    @property
    def version(self) -> int:
        """Monotonic mutation counter: bumps on every successful write.

        Readers (e.g. the Global Graph Linker) key caches on this to detect
        *any* change, including remove-then-add sequences that leave the
        triple count unchanged.
        """
        return self._version

    def graph_version(self, graph: URIRef) -> int:
        """Mutation counter of one named graph (0 for an absent graph).

        Lets readers cache per-graph derived state (e.g. the linker's table
        map over the dataset graph) without being invalidated by writes to
        unrelated graphs.
        """
        index = self._graphs.get(graph)
        return index.version if index is not None else 0

    # ------------------------------------------------------------------- add
    def add(
        self,
        subject: Any,
        predicate: Any,
        obj: Any,
        graph: URIRef = DEFAULT_GRAPH,
    ) -> bool:
        """Add a triple to ``graph``; returns ``False`` if it already existed."""
        if graph not in self._graphs:
            self._graphs[graph] = _GraphIndex()
        inserted = self._graphs[graph].add(Triple(subject, predicate, obj))
        if inserted:
            self._version += 1
        return inserted

    def add_triples(
        self, triples: Iterable[Tuple[Any, Any, Any]], graph: URIRef = DEFAULT_GRAPH
    ) -> int:
        """Add many triples; returns the number actually inserted."""
        inserted = 0
        for subject, predicate, obj in triples:
            if self.add(subject, predicate, obj, graph=graph):
                inserted += 1
        return inserted

    def annotate(
        self,
        subject: Any,
        predicate: Any,
        obj: Any,
        annotation_predicate: Any,
        annotation_value: Any,
        graph: URIRef = DEFAULT_GRAPH,
    ) -> QuotedTriple:
        """Add an RDF-star annotation on the (asserted) triple.

        The base triple is added if absent, then
        ``<< s p o >> annotation_predicate annotation_value`` is asserted.
        This is how Algorithm 3 attaches similarity scores to similarity edges.
        """
        self.add(subject, predicate, obj, graph=graph)
        quoted = QuotedTriple(subject, predicate, obj)
        self.add(quoted, annotation_predicate, annotation_value, graph=graph)
        return quoted

    def remove(
        self, subject: Any, predicate: Any, obj: Any, graph: URIRef = DEFAULT_GRAPH
    ) -> bool:
        """Remove a triple from ``graph`` if present."""
        index = self._graphs.get(graph)
        if index is None:
            return False
        removed = index.remove(Triple(subject, predicate, obj))
        if removed:
            self._version += 1
        return removed

    def remove_graph(self, graph: URIRef) -> bool:
        """Drop an entire named graph."""
        dropped = self._graphs.pop(graph, None) is not None
        if dropped:
            self._version += 1
        return dropped

    # ----------------------------------------------------------------- query
    def graphs(self) -> List[URIRef]:
        """The names of all graphs currently holding triples."""
        return list(self._graphs.keys())

    def match(
        self,
        subject: Any = None,
        predicate: Any = None,
        obj: Any = None,
        graph: Optional[URIRef] = None,
    ) -> Iterator[Tuple[Triple, URIRef]]:
        """Iterate ``(triple, graph)`` pairs matching the quad pattern."""
        if graph is not None:
            index = self._graphs.get(graph)
            if index is None:
                return
            for triple in index.match(subject, predicate, obj):
                yield triple, graph
            return
        for graph_name, index in self._graphs.items():
            for triple in index.match(subject, predicate, obj):
                yield triple, graph_name

    def estimate_matches(
        self,
        subject: Any = None,
        predicate: Any = None,
        obj: Any = None,
        graph: Optional[URIRef] = None,
    ) -> int:
        """Cheap upper bound on quad-pattern matches (index sizes, no scan).

        The SPARQL engine uses this as the selectivity estimate when ordering
        triple patterns; it never materializes candidates.
        """
        if graph is not None:
            index = self._graphs.get(graph)
            return index.estimate(subject, predicate, obj) if index else 0
        return sum(
            index.estimate(subject, predicate, obj) for index in self._graphs.values()
        )

    def triples(
        self,
        subject: Any = None,
        predicate: Any = None,
        obj: Any = None,
        graph: Optional[URIRef] = None,
    ) -> Iterator[Triple]:
        """Iterate triples matching the pattern across the selected graph(s)."""
        for triple, _ in self.match(subject, predicate, obj, graph):
            yield triple

    def contains(
        self,
        subject: Any,
        predicate: Any,
        obj: Any,
        graph: Optional[URIRef] = None,
    ) -> bool:
        """``True`` when the exact triple exists."""
        return any(True for _ in self.match(subject, predicate, obj, graph))

    def objects(
        self, subject: Any, predicate: Any, graph: Optional[URIRef] = None
    ) -> List[Any]:
        """All objects of ``(subject, predicate, ?)``."""
        return [t.object for t in self.triples(subject, predicate, None, graph)]

    def subjects(
        self, predicate: Any, obj: Any, graph: Optional[URIRef] = None
    ) -> List[Any]:
        """All subjects of ``(?, predicate, obj)``."""
        return [t.subject for t in self.triples(None, predicate, obj, graph)]

    def value(
        self, subject: Any, predicate: Any, graph: Optional[URIRef] = None, default: Any = None
    ) -> Any:
        """First object of ``(subject, predicate, ?)`` converted to Python."""
        for triple in self.triples(subject, predicate, None, graph):
            obj = triple.object
            return obj.to_python() if isinstance(obj, Literal) else obj
        return default

    def annotation(
        self,
        subject: Any,
        predicate: Any,
        obj: Any,
        annotation_predicate: Any,
        graph: Optional[URIRef] = None,
        default: Any = None,
    ) -> Any:
        """Read back an RDF-star annotation value for a triple."""
        quoted = QuotedTriple(subject, predicate, obj)
        return self.value(quoted, annotation_predicate, graph=graph, default=default)

    # ------------------------------------------------------------ statistics
    def __len__(self) -> int:
        return sum(len(index.triples) for index in self._graphs.values())

    def num_triples(self, graph: Optional[URIRef] = None) -> int:
        """Number of triples, optionally restricted to one graph."""
        if graph is not None:
            index = self._graphs.get(graph)
            return len(index.triples) if index else 0
        return len(self)

    def unique_nodes(self) -> Set[Any]:
        """All subjects and objects that are not literals (LiDS-graph nodes)."""
        nodes: Set[Any] = set()
        for index in self._graphs.values():
            for triple in index.triples:
                if not isinstance(triple.subject, (Literal,)):
                    nodes.add(triple.subject)
                if not isinstance(triple.object, (Literal,)):
                    nodes.add(triple.object)
        return nodes

    def unique_predicates(self) -> Set[Any]:
        """All predicates in the store."""
        predicates: Set[Any] = set()
        for index in self._graphs.values():
            predicates.update(index.by_predicate.keys())
        return predicates

    def statistics(self) -> Dict[str, int]:
        """Summary statistics used by Table 3 (triples, nodes, edge types, graphs)."""
        return {
            "num_triples": len(self),
            "num_unique_nodes": len(self.unique_nodes()),
            "num_unique_predicates": len(self.unique_predicates()),
            "num_graphs": len(self._graphs),
        }

    def estimated_size_bytes(self) -> int:
        """Rough serialized size: sum of N-Triples line lengths."""
        total = 0
        for index in self._graphs.values():
            for triple in index.triples:
                total += len(triple.n3()) + 1
        return total
