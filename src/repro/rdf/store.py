"""The quad store: named graphs, triple-pattern matching, RDF-star annotations."""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Dict, Iterable, Iterator, List, Optional, Set, Tuple

from repro.rdf.terms import Literal, QuotedTriple, Triple, URIRef

#: Name of the default graph (triples added without an explicit graph).
DEFAULT_GRAPH = URIRef("http://kglids.org/resource/defaultGraph")

#: Shared empty candidate set so missing index entries cost no allocation.
_EMPTY_TRIPLES: Set["Triple"] = frozenset()  # type: ignore[assignment]


class _PredicateStats:
    """Incremental cardinality statistics for one predicate in one graph.

    Tracks the triple count plus distinct subject/object counts (via
    refcounting multisets), giving the SPARQL planner real join-size
    estimates: the expected number of matches of ``(?s p ?o)`` for a specific
    but yet-unknown subject is ``count / distinct_subjects`` (the average
    subject fan-out).
    """

    __slots__ = ("count", "subjects", "objects")

    def __init__(self):
        self.count = 0
        self.subjects: Dict[Any, int] = {}
        self.objects: Dict[Any, int] = {}

    def add(self, subject: Any, obj: Any) -> None:
        self.count += 1
        self.subjects[subject] = self.subjects.get(subject, 0) + 1
        self.objects[obj] = self.objects.get(obj, 0) + 1

    def remove(self, subject: Any, obj: Any) -> None:
        self.count -= 1
        for counter, term in ((self.subjects, subject), (self.objects, obj)):
            remaining = counter.get(term, 0) - 1
            if remaining > 0:
                counter[term] = remaining
            else:
                counter.pop(term, None)

    @property
    def distinct_subjects(self) -> int:
        return len(self.subjects)

    @property
    def distinct_objects(self) -> int:
        return len(self.objects)

    def to_dict(self) -> Dict[str, int]:
        return {
            "count": self.count,
            "distinct_subjects": self.distinct_subjects,
            "distinct_objects": self.distinct_objects,
        }


class _GraphIndex:
    """Per-graph triple set with subject/predicate/object hash indices.

    Beyond the three positional indices, the graph maintains per-predicate
    cardinality statistics (updated incrementally on add/remove) and partial
    RDF-star indices over annotation triples: triples whose subject is a
    quoted triple are additionally keyed by the quoted triple's *inner*
    subject and inner object, so ``<< ?c1 p ?c2 >>`` patterns with one bound
    side hit a hash entry instead of scanning all annotations.
    """

    __slots__ = (
        "triples",
        "by_subject",
        "by_predicate",
        "by_object",
        "by_quoted_subject",
        "by_quoted_object",
        "predicate_stats",
        "version",
    )

    def __init__(self):
        self.triples: Set[Triple] = set()
        self.by_subject: Dict[Any, Set[Triple]] = defaultdict(set)
        self.by_predicate: Dict[Any, Set[Triple]] = defaultdict(set)
        self.by_object: Dict[Any, Set[Triple]] = defaultdict(set)
        #: Annotation triples keyed by their quoted subject's inner terms.
        self.by_quoted_subject: Dict[Any, Set[Triple]] = defaultdict(set)
        self.by_quoted_object: Dict[Any, Set[Triple]] = defaultdict(set)
        #: Per-predicate cardinality statistics.
        self.predicate_stats: Dict[Any, _PredicateStats] = {}
        #: Per-graph mutation counter (bumps on every insert/remove).
        self.version = 0

    def add(self, triple: Triple) -> bool:
        if triple in self.triples:
            return False
        self.triples.add(triple)
        self.by_subject[triple.subject].add(triple)
        self.by_predicate[triple.predicate].add(triple)
        self.by_object[triple.object].add(triple)
        if isinstance(triple.subject, QuotedTriple):
            self.by_quoted_subject[triple.subject.subject].add(triple)
            self.by_quoted_object[triple.subject.object].add(triple)
        stats = self.predicate_stats.get(triple.predicate)
        if stats is None:
            stats = self.predicate_stats[triple.predicate] = _PredicateStats()
        stats.add(triple.subject, triple.object)
        self.version += 1
        return True

    def remove(self, triple: Triple) -> bool:
        if triple not in self.triples:
            return False
        self.triples.discard(triple)
        self.by_subject[triple.subject].discard(triple)
        self.by_predicate[triple.predicate].discard(triple)
        self.by_object[triple.object].discard(triple)
        if isinstance(triple.subject, QuotedTriple):
            self.by_quoted_subject[triple.subject.subject].discard(triple)
            self.by_quoted_object[triple.subject.object].discard(triple)
        stats = self.predicate_stats.get(triple.predicate)
        if stats is not None:
            stats.remove(triple.subject, triple.object)
            if stats.count <= 0:
                del self.predicate_stats[triple.predicate]
        self.version += 1
        return True

    def match(
        self, subject: Any = None, predicate: Any = None, obj: Any = None
    ) -> Iterator[Triple]:
        """Iterate triples matching the pattern (``None`` is a wildcard).

        Scans the smallest index among the bound terms and filters the rest
        with direct field comparisons, avoiding set-intersection allocations.
        The candidate set is snapshotted so callers may mutate the index
        while iterating (e.g. retraction loops).
        """
        candidates: Set[Triple] = self.triples
        if subject is not None:
            candidates = self.by_subject.get(subject, _EMPTY_TRIPLES)
        if predicate is not None:
            by_predicate = self.by_predicate.get(predicate, _EMPTY_TRIPLES)
            if len(by_predicate) < len(candidates):
                candidates = by_predicate
        if obj is not None:
            by_object = self.by_object.get(obj, _EMPTY_TRIPLES)
            if len(by_object) < len(candidates):
                candidates = by_object
        for triple in tuple(candidates):
            if subject is not None and triple.subject != subject:
                continue
            if predicate is not None and triple.predicate != predicate:
                continue
            if obj is not None and triple.object != obj:
                continue
            yield triple

    def estimate(
        self, subject: Any = None, predicate: Any = None, obj: Any = None
    ) -> int:
        """Upper bound on the number of matches, from index sizes alone (O(1))."""
        estimate = len(self.triples)
        if subject is not None:
            estimate = min(estimate, len(self.by_subject.get(subject, _EMPTY_TRIPLES)))
        if predicate is not None:
            estimate = min(estimate, len(self.by_predicate.get(predicate, _EMPTY_TRIPLES)))
        if obj is not None:
            estimate = min(estimate, len(self.by_object.get(obj, _EMPTY_TRIPLES)))
        return estimate

    def _quoted_candidates(
        self,
        inner_subject: Any,
        inner_object: Any,
        predicate: Any,
        obj: Any,
    ) -> Set[Triple]:
        """Smallest candidate set for a partially-bound quoted-subject pattern."""
        candidates: Optional[Set[Triple]] = None
        if inner_subject is not None:
            candidates = self.by_quoted_subject.get(inner_subject, _EMPTY_TRIPLES)
        if inner_object is not None:
            by_inner_object = self.by_quoted_object.get(inner_object, _EMPTY_TRIPLES)
            if candidates is None or len(by_inner_object) < len(candidates):
                candidates = by_inner_object
        if predicate is not None:
            by_predicate = self.by_predicate.get(predicate, _EMPTY_TRIPLES)
            if candidates is None or len(by_predicate) < len(candidates):
                candidates = by_predicate
        if obj is not None:
            by_object = self.by_object.get(obj, _EMPTY_TRIPLES)
            if candidates is None or len(by_object) < len(candidates):
                candidates = by_object
        return self.triples if candidates is None else candidates

    def match_quoted(
        self,
        inner_subject: Any = None,
        inner_predicate: Any = None,
        inner_object: Any = None,
        predicate: Any = None,
        obj: Any = None,
    ) -> Iterator[Triple]:
        """Triples whose subject is a quoted triple matching the inner pattern.

        ``inner_*`` constrain the quoted triple's own terms (``None`` is a
        wildcard); ``predicate``/``obj`` constrain the outer annotation
        triple.  Scans the smallest applicable index — for one-side-bound
        patterns like ``<< ?c1 p ?c2 >>`` with ``?c1`` known this is the
        partial quoted-subject hash entry, not the full annotation set.
        """
        candidates = self._quoted_candidates(inner_subject, inner_object, predicate, obj)
        for triple in tuple(candidates):
            quoted = triple.subject
            if not isinstance(quoted, QuotedTriple):
                continue
            if inner_subject is not None and quoted.subject != inner_subject:
                continue
            if inner_predicate is not None and quoted.predicate != inner_predicate:
                continue
            if inner_object is not None and quoted.object != inner_object:
                continue
            if predicate is not None and triple.predicate != predicate:
                continue
            if obj is not None and triple.object != obj:
                continue
            yield triple

    def estimate_quoted(
        self,
        inner_subject: Any = None,
        inner_object: Any = None,
        predicate: Any = None,
        obj: Any = None,
    ) -> int:
        """Upper bound on :meth:`match_quoted` results from index sizes (O(1))."""
        return len(self._quoted_candidates(inner_subject, inner_object, predicate, obj))


class QuadStore:
    """An in-memory RDF-star store with named graphs.

    This is the storage engine of the reproduction: the KG Governor writes the
    LiDS graph into it (one named graph per pipeline, plus the dataset,
    library and ontology graphs) and the SPARQL engine evaluates queries
    against it.
    """

    def __init__(self):
        self._graphs: Dict[URIRef, _GraphIndex] = {}
        self._version = 0

    @property
    def version(self) -> int:
        """Monotonic mutation counter: bumps on every successful write.

        Readers (e.g. the Global Graph Linker) key caches on this to detect
        *any* change, including remove-then-add sequences that leave the
        triple count unchanged.
        """
        return self._version

    def graph_version(self, graph: URIRef) -> int:
        """Mutation counter of one named graph (0 for an absent graph).

        Lets readers cache per-graph derived state (e.g. the linker's table
        map over the dataset graph) without being invalidated by writes to
        unrelated graphs.
        """
        index = self._graphs.get(graph)
        return index.version if index is not None else 0

    # ------------------------------------------------------------------- add
    def add(
        self,
        subject: Any,
        predicate: Any,
        obj: Any,
        graph: URIRef = DEFAULT_GRAPH,
    ) -> bool:
        """Add a triple to ``graph``; returns ``False`` if it already existed."""
        if graph not in self._graphs:
            self._graphs[graph] = _GraphIndex()
        inserted = self._graphs[graph].add(Triple(subject, predicate, obj))
        if inserted:
            self._version += 1
        return inserted

    def add_triples(
        self, triples: Iterable[Tuple[Any, Any, Any]], graph: URIRef = DEFAULT_GRAPH
    ) -> int:
        """Add many triples; returns the number actually inserted."""
        inserted = 0
        for subject, predicate, obj in triples:
            if self.add(subject, predicate, obj, graph=graph):
                inserted += 1
        return inserted

    def annotate(
        self,
        subject: Any,
        predicate: Any,
        obj: Any,
        annotation_predicate: Any,
        annotation_value: Any,
        graph: URIRef = DEFAULT_GRAPH,
    ) -> QuotedTriple:
        """Add an RDF-star annotation on the (asserted) triple.

        The base triple is added if absent, then
        ``<< s p o >> annotation_predicate annotation_value`` is asserted.
        This is how Algorithm 3 attaches similarity scores to similarity edges.
        """
        self.add(subject, predicate, obj, graph=graph)
        quoted = QuotedTriple(subject, predicate, obj)
        self.add(quoted, annotation_predicate, annotation_value, graph=graph)
        return quoted

    def remove(
        self, subject: Any, predicate: Any, obj: Any, graph: URIRef = DEFAULT_GRAPH
    ) -> bool:
        """Remove a triple from ``graph`` if present."""
        index = self._graphs.get(graph)
        if index is None:
            return False
        removed = index.remove(Triple(subject, predicate, obj))
        if removed:
            self._version += 1
        return removed

    def remove_graph(self, graph: URIRef) -> bool:
        """Drop an entire named graph."""
        dropped = self._graphs.pop(graph, None) is not None
        if dropped:
            self._version += 1
        return dropped

    # ----------------------------------------------------------------- query
    def graphs(self) -> List[URIRef]:
        """The names of all graphs currently holding triples."""
        return list(self._graphs.keys())

    def match(
        self,
        subject: Any = None,
        predicate: Any = None,
        obj: Any = None,
        graph: Optional[URIRef] = None,
    ) -> Iterator[Tuple[Triple, URIRef]]:
        """Iterate ``(triple, graph)`` pairs matching the quad pattern."""
        if graph is not None:
            index = self._graphs.get(graph)
            if index is None:
                return
            for triple in index.match(subject, predicate, obj):
                yield triple, graph
            return
        for graph_name, index in self._graphs.items():
            for triple in index.match(subject, predicate, obj):
                yield triple, graph_name

    def estimate_matches(
        self,
        subject: Any = None,
        predicate: Any = None,
        obj: Any = None,
        graph: Optional[URIRef] = None,
    ) -> int:
        """Cheap upper bound on quad-pattern matches (index sizes, no scan).

        The SPARQL engine uses this as the selectivity estimate when ordering
        triple patterns; it never materializes candidates.
        """
        if graph is not None:
            index = self._graphs.get(graph)
            return index.estimate(subject, predicate, obj) if index else 0
        return sum(
            index.estimate(subject, predicate, obj) for index in self._graphs.values()
        )

    def match_quoted(
        self,
        inner_subject: Any = None,
        inner_predicate: Any = None,
        inner_object: Any = None,
        predicate: Any = None,
        obj: Any = None,
        graph: Optional[URIRef] = None,
    ) -> Iterator[Tuple[Triple, URIRef]]:
        """Annotation triples whose quoted subject matches a *partial* pattern.

        The one-side-bound access path of RDF-star patterns: when only
        ``?c1`` of ``<< ?c1 p ?c2 >> ann ?v`` is known, the partial
        quoted-subject index answers directly instead of scanning every
        annotation triple.
        """
        if graph is not None:
            index = self._graphs.get(graph)
            if index is None:
                return
            for triple in index.match_quoted(
                inner_subject, inner_predicate, inner_object, predicate, obj
            ):
                yield triple, graph
            return
        for graph_name, index in self._graphs.items():
            for triple in index.match_quoted(
                inner_subject, inner_predicate, inner_object, predicate, obj
            ):
                yield triple, graph_name

    def estimate_quoted_matches(
        self,
        inner_subject: Any = None,
        inner_object: Any = None,
        predicate: Any = None,
        obj: Any = None,
        graph: Optional[URIRef] = None,
    ) -> int:
        """Cheap upper bound on :meth:`match_quoted` results (index sizes only)."""
        if graph is not None:
            index = self._graphs.get(graph)
            return (
                index.estimate_quoted(inner_subject, inner_object, predicate, obj)
                if index
                else 0
            )
        return sum(
            index.estimate_quoted(inner_subject, inner_object, predicate, obj)
            for index in self._graphs.values()
        )

    def triples(
        self,
        subject: Any = None,
        predicate: Any = None,
        obj: Any = None,
        graph: Optional[URIRef] = None,
    ) -> Iterator[Triple]:
        """Iterate triples matching the pattern across the selected graph(s)."""
        for triple, _ in self.match(subject, predicate, obj, graph):
            yield triple

    def contains(
        self,
        subject: Any,
        predicate: Any,
        obj: Any,
        graph: Optional[URIRef] = None,
    ) -> bool:
        """``True`` when the exact triple exists."""
        return any(True for _ in self.match(subject, predicate, obj, graph))

    def objects(
        self, subject: Any, predicate: Any, graph: Optional[URIRef] = None
    ) -> List[Any]:
        """All objects of ``(subject, predicate, ?)``."""
        return [t.object for t in self.triples(subject, predicate, None, graph)]

    def subjects(
        self, predicate: Any, obj: Any, graph: Optional[URIRef] = None
    ) -> List[Any]:
        """All subjects of ``(?, predicate, obj)``."""
        return [t.subject for t in self.triples(None, predicate, obj, graph)]

    def value(
        self, subject: Any, predicate: Any, graph: Optional[URIRef] = None, default: Any = None
    ) -> Any:
        """First object of ``(subject, predicate, ?)`` converted to Python."""
        for triple in self.triples(subject, predicate, None, graph):
            obj = triple.object
            return obj.to_python() if isinstance(obj, Literal) else obj
        return default

    def annotation(
        self,
        subject: Any,
        predicate: Any,
        obj: Any,
        annotation_predicate: Any,
        graph: Optional[URIRef] = None,
        default: Any = None,
    ) -> Any:
        """Read back an RDF-star annotation value for a triple."""
        quoted = QuotedTriple(subject, predicate, obj)
        return self.value(quoted, annotation_predicate, graph=graph, default=default)

    # ------------------------------------------------------------ statistics
    def __len__(self) -> int:
        return sum(len(index.triples) for index in self._graphs.values())

    def num_triples(self, graph: Optional[URIRef] = None) -> int:
        """Number of triples, optionally restricted to one graph."""
        if graph is not None:
            index = self._graphs.get(graph)
            return len(index.triples) if index else 0
        return len(self)

    def unique_nodes(self) -> Set[Any]:
        """All subjects and objects that are not literals (LiDS-graph nodes)."""
        nodes: Set[Any] = set()
        for index in self._graphs.values():
            for triple in index.triples:
                if not isinstance(triple.subject, (Literal,)):
                    nodes.add(triple.subject)
                if not isinstance(triple.object, (Literal,)):
                    nodes.add(triple.object)
        return nodes

    def unique_predicates(self) -> Set[Any]:
        """All predicates in the store."""
        predicates: Set[Any] = set()
        for index in self._graphs.values():
            predicates.update(index.by_predicate.keys())
        return predicates

    def predicate_statistics(
        self, predicate: Any, graph: Optional[URIRef] = None
    ) -> Optional[Dict[str, int]]:
        """Live cardinality statistics for one predicate.

        Returns ``{"count", "distinct_subjects", "distinct_objects"}``
        aggregated over the selected graph(s), or ``None`` when the predicate
        holds no triples there.  The statistics are maintained incrementally
        on every add/remove, so the SPARQL planner reads real cardinalities
        instead of applying fixed selectivity discounts.
        """
        if graph is not None:
            index = self._graphs.get(graph)
            if index is None:
                return None
            stats = index.predicate_stats.get(predicate)
            return stats.to_dict() if stats is not None else None
        combined: Optional[Dict[str, int]] = None
        for index in self._graphs.values():
            stats = index.predicate_stats.get(predicate)
            if stats is None:
                continue
            if combined is None:
                combined = stats.to_dict()
            else:
                # Distinct counts cannot be merged exactly across graphs;
                # summing gives a safe upper bound on distinct terms (it can
                # only under-estimate fan-out, never the match count).
                for key, value in stats.to_dict().items():
                    combined[key] += value
        return combined

    def cardinality_statistics(
        self, graph: Optional[URIRef] = None
    ) -> Dict[Any, Dict[str, int]]:
        """Per-predicate cardinality statistics over the selected graph(s)."""
        predicates: Set[Any] = set()
        if graph is not None:
            index = self._graphs.get(graph)
            predicates = set(index.predicate_stats) if index else set()
        else:
            for index in self._graphs.values():
                predicates.update(index.predicate_stats)
        return {
            predicate: self.predicate_statistics(predicate, graph)
            for predicate in predicates
        }

    def statistics(self) -> Dict[str, int]:
        """Summary statistics used by Table 3 (triples, nodes, edge types, graphs)."""
        return {
            "num_triples": len(self),
            "num_unique_nodes": len(self.unique_nodes()),
            "num_unique_predicates": len(self.unique_predicates()),
            "num_graphs": len(self._graphs),
        }

    def estimated_size_bytes(self) -> int:
        """Rough serialized size: sum of N-Triples line lengths."""
        total = 0
        for index in self._graphs.values():
            for triple in index.triples:
                total += len(triple.n3()) + 1
        return total
