"""The quad store: named graphs, triple-pattern matching, RDF-star annotations.

Storage is pluggable: a :class:`QuadStore` delegates graph management to a
:class:`~repro.rdf.backend.QuadStoreBackend` (in-memory by default,
sqlite-sharded via :meth:`QuadStore.sqlite`), while every matching /
estimation / statistics code path runs on the backend's shared
:class:`~repro.rdf.graph_index.GraphIndex` — so query semantics and SPARQL
plans do not depend on where the quads live durably.

Terms are dictionary-encoded: the backend's shared
:class:`~repro.rdf.terms.TermDictionary` interns every distinct term to one
integer id and the indexes store id-triples.  This class is the translation
boundary — the public API stays term-based (``add``/``match``/``triples``
accept and yield term objects exactly as before), while the SPARQL engine's
batched executor talks to the id-level API (:meth:`match_ids`,
:meth:`match_quoted_ids`, :attr:`dictionary`) and only decodes ids at FILTER
evaluation and final projection.
"""

from __future__ import annotations

from collections import deque
from contextlib import contextmanager
from typing import Any, Deque, Dict, Iterable, Iterator, List, Optional, Set, Tuple

import numpy as np

from repro.rdf.backend import InMemoryBackend, PathLike, QuadStoreBackend, SqliteBackend
from repro.rdf.gate import ReadView, ReadWriteGate
from repro.rdf.graph_index import IdTriple
from repro.rdf.terms import Literal, QuotedTriple, TermDictionary, Triple, URIRef, term_n3

#: Name of the default graph (triples added without an explicit graph).
DEFAULT_GRAPH = URIRef("http://kglids.org/resource/defaultGraph")

#: Sentinel distinguishing "term not interned" from the ``None`` wildcard.
_ABSENT = object()


class QuadStore:
    """An RDF-star store with named graphs and pluggable storage backends.

    This is the storage engine of the reproduction: the KG Governor writes the
    LiDS graph into it (one named graph per pipeline, plus the dataset,
    library and ontology graphs) and the SPARQL engine evaluates queries
    against it.  The default backend keeps everything in process RAM (the
    seed behaviour); :meth:`sqlite` opens a disk-backed store whose named
    graphs are sqlite shards, reloaded lazily on open.
    """

    def __init__(self, backend: Optional[QuadStoreBackend] = None):
        self._backend = backend or InMemoryBackend()
        self._version = 0
        #: Readers-writer gate making writes batch-atomic w.r.t. read views.
        self._gate = ReadWriteGate()
        #: Monotonic count of committed write batches (standalone mutations
        #: count as single-op batches).  Read views pin this number.  Durable
        #: backends resume it from their committed marker so a reopened
        #: store's versions continue where the last durable commit ended.
        self._commit_version = self._backend.committed_version()
        #: Whether :meth:`write_batch` keeps an undo log (rollback support).
        #: Disable only to measure the log's overhead — with it off a raising
        #: batch body falls back to the legacy flush-and-advance behaviour.
        self.undo_enabled = True
        #: The open batch's undo log (``None`` outside a batch / when disabled).
        self._undo: Optional[List[Tuple[str, URIRef, Any]]] = None
        self._in_batch = False
        self._version_mark = 0
        self._rollback_callbacks: List[Any] = []
        self._commit_callbacks: List[Any] = []
        self._closed = False
        #: Row-level per-commit op log for delta replication: entries are
        #: ``(commit_version, [(kind, graph, payload), ...])``.  ``None``
        #: until :meth:`enable_delta_log` — only replication sources pay the
        #: recording cost.
        self._delta_log: Optional[Deque[Tuple[int, List[Tuple[str, URIRef, Any]]]]] = None
        #: Followers at a version >= the floor can be bridged from the log.
        self._delta_log_floor = 0
        self._delta_log_cap = 0
        #: Set when a mutation the log cannot express happened mid-commit
        #: (bulk unloaded-shard deletes, undo-disabled partial aborts); the
        #: next :meth:`_log_commit` resets the log instead of appending.
        self._delta_log_broken = False
        #: Ops recorded for the commit currently being built (``None``
        #: outside a write span / when the log is disabled).
        self._pending_ops: Optional[List[Tuple[str, URIRef, Any]]] = None

    @classmethod
    def sqlite(
        cls, path: PathLike, max_resident_graphs: Optional[int] = None
    ) -> "QuadStore":
        """Open (or create) a sqlite-backed store at ``path``.

        ``max_resident_graphs`` caps how many lazily-loaded graph indexes
        stay in RAM (LRU eviction with write-through); ``None`` keeps every
        touched graph resident.
        """
        return cls(backend=SqliteBackend(path, max_resident_graphs=max_resident_graphs))

    @property
    def backend(self) -> QuadStoreBackend:
        """The storage backend holding this store's graphs."""
        return self._backend

    @property
    def dictionary(self) -> TermDictionary:
        """The backend's shared term dictionary (term <-> integer id)."""
        return self._backend.dictionary

    @property
    def persistent(self) -> bool:
        """Whether this store's contents survive process restarts."""
        return self._backend.persistent

    def flush(self) -> None:
        """Make all buffered backend writes durable (no-op when in-memory)."""
        self._backend.note_commit_version(self._commit_version)
        self._backend.flush()

    def pin_residency(self) -> None:
        """Pause index eviction (see the backend hook); pair with unpin.

        Query engines hold this across one evaluation so a residency-capped
        backend loads each missing shard at most once per query instead of
        thrashing on every cross-graph scan.
        """
        self._backend.pin_residency()

    def unpin_residency(self) -> None:
        """Release one pin level (the cap re-applies at depth 0)."""
        self._backend.unpin_residency()

    # ------------------------------------------------- read views / write gate
    @property
    def commit_version(self) -> int:
        """Count of committed write batches (the read-view snapshot key).

        Unlike :attr:`version` (which bumps per triple), this only moves
        when a whole batch commits — so two reads under one
        :meth:`read_view` seeing the same ``commit_version`` are guaranteed
        to observe the same committed state.
        """
        return self._commit_version

    @contextmanager
    def read_view(self):
        """A consistent read scope: no write batch can commit while open.

        Yields a :class:`~repro.rdf.gate.ReadView` pinned to the current
        commit version.  Nested views (including views opened by the thread
        holding the write side) are cheap counter bumps.  The SPARQL engine
        opens one per evaluation; multi-query read operations (e.g. the
        discovery API's join-path walks) should hold one view across all
        their lookups to observe a single store state.
        """
        self._gate.acquire_read()
        try:
            yield ReadView(self, self._commit_version)
        finally:
            self._gate.release_read()

    def in_read_view(self) -> bool:
        """Whether the calling thread currently holds a read view."""
        return self._gate.read_depth() > 0

    @contextmanager
    def write_batch(self):
        """Group mutations into one atomic, durable commit batch.

        While the batch is open the calling thread holds the store
        exclusively: concurrent read views wait and then observe either none
        or all of the batch's writes.  On successful exit the backend commits
        (one durable, journaled transaction per batch on sqlite) and the
        commit version advances by one regardless of how many triples
        changed.  Batches nest — only the outermost one commits.  Starting a
        batch while holding only a read view raises instead of deadlocking.

        Atomicity includes rollback: every mutation records its inverse in
        an undo log, and if the batch *body* raises, the resident graph
        indexes, the term dictionary and the durable backend are all wound
        back to the pre-batch state before the gate releases — the commit
        version does not advance and readers (and version-keyed caches)
        never observe the aborted writes.  The exception then propagates for
        the caller to handle (the governor service fails the batch's tickets
        with it and retries transient errors).  Set :attr:`undo_enabled` to
        ``False`` to skip the log (benchmark mode): a raising body then
        falls back to the legacy flush-and-advance behaviour.
        """
        depth = self._gate.acquire_write()
        if depth == 1:
            try:
                self._begin_batch()
            except BaseException:
                self._gate.release_write()
                raise
        try:
            yield self
        except BaseException:
            if depth == 1:
                try:
                    self._abort_batch()
                finally:
                    self._gate.release_write()
            else:
                self._gate.release_write()
            raise
        else:
            if depth == 1:
                try:
                    self._commit_batch()
                finally:
                    self._gate.release_write()
            else:
                self._gate.release_write()

    def _begin_batch(self) -> None:
        self._undo = [] if self.undo_enabled else None
        self._version_mark = self._version
        self._rollback_callbacks = []
        self._commit_callbacks = []
        if self._delta_log is not None:
            self._pending_ops = []
        self._backend.begin_batch()
        self._in_batch = True

    def _commit_batch(self) -> None:
        try:
            self._backend.commit_batch(self._commit_version + 1)
        except BaseException:
            # The commit itself failed (e.g. disk full, injected fault):
            # treat it exactly like a raising batch body.
            self._abort_batch()
            raise
        self._in_batch = False
        self._commit_version += 1
        self._log_commit(self._commit_version)
        callbacks = self._commit_callbacks
        self._undo = None
        self._rollback_callbacks = []
        self._commit_callbacks = []
        for callback in callbacks:
            callback()

    def _abort_batch(self) -> None:
        self._in_batch = False
        undo, self._undo = self._undo, None
        if undo is None:
            # Undo disabled: preserve the legacy behaviour — flush what was
            # written and advance the version so durable state keeps
            # mirroring the resident indexes (partial, but consistent).
            # Partial commits are unexpressible as a delta, so the op log
            # resets rather than guessing.
            try:
                self._backend.commit_batch(self._commit_version + 1)
            finally:
                self._commit_version += 1
                self._delta_log_broken = True
                self._log_commit(self._commit_version)
                self._rollback_callbacks = []
                self._commit_callbacks = []
            return
        self._pending_ops = None
        # Replay inverses newest-first against *resident* indexes only: an
        # index evicted (or never loaded) during the batch re-materializes
        # from durable storage, which the backend rollback below restores —
        # replaying into a fresh load would double-revert.  Index replay
        # must run before the backend rollback because removing a quoted
        # triple consults the dictionary's quoted-part maps, which the
        # backend rollback unwinds.
        for kind, graph, payload in reversed(undo):
            if kind == "drop":
                self._backend.restore_graph(graph, payload)
                continue
            index = self._backend.resident_index(graph)
            if index is None:
                continue
            if kind == "add":
                index.remove(payload)
            else:  # "remove"
                index.add(payload)
        self._version = self._version_mark
        self._backend.rollback_batch()
        callbacks = self._rollback_callbacks
        self._rollback_callbacks = []
        self._commit_callbacks = []
        for callback in reversed(callbacks):
            callback()

    def on_rollback(self, callback) -> None:
        """Run ``callback`` if the open batch rolls back (LIFO order).

        Companion stores (embeddings, governor profile registries) register
        their own inverse operations here so one raising batch body unwinds
        *all* state mutated under the batch, not just quads.  Raises when no
        batch is open — there is nothing to attach the callback to.
        """
        if not self._in_batch:
            raise RuntimeError("on_rollback requires an open write batch")
        if self._undo is not None:
            self._rollback_callbacks.append(callback)

    def on_commit(self, callback) -> None:
        """Run ``callback`` after the open batch commits (FIFO order)."""
        if not self._in_batch:
            raise RuntimeError("on_commit requires an open write batch")
        self._commit_callbacks.append(callback)

    @property
    def in_write_batch(self) -> bool:
        """Whether a write batch is currently open (any thread)."""
        return self._in_batch

    @property
    def gate(self) -> ReadWriteGate:
        """The store's readers-writer gate (shared with companion stores)."""
        return self._gate

    @property
    def recovery(self) -> Dict[str, Any]:
        """What the backend verified/repaired on open (empty when volatile)."""
        return getattr(self._backend, "recovery", {})

    def _begin_write(self) -> int:
        """Gate one standalone mutation (reentrant under an open batch)."""
        depth = self._gate.acquire_write()
        if depth == 1 and self._delta_log is not None and not self._in_batch:
            self._pending_ops = []
        return depth

    def _end_write(self, depth: int) -> None:
        # A standalone op (no surrounding batch) is its own micro-commit:
        # bump the commit version, but skip the flush — buffered-backend
        # write batching must not degrade to one fsync per triple.  The
        # backend notes the new version so the next durable commit stamps
        # its recovery marker with it.
        if depth == 1:
            self._commit_version += 1
            self._backend.note_commit_version(self._commit_version)
            if not self._in_batch:
                self._log_commit(self._commit_version)
        self._gate.release_write()

    # ------------------------------------------------------------- replication
    def enable_delta_log(self, capacity: int = 1024) -> None:
        """Start recording per-commit row ops for delta replication.

        Keeps the last ``capacity`` commits as ``(version, ops)`` entries so
        a follower pinned at any version at or above the log floor can be
        brought current by shipping ops instead of whole shards.  Only
        replication *sources* enable this; the recording cost is a list
        append per mutation.
        """
        if capacity < 1:
            raise ValueError("delta log capacity must be >= 1")
        with self.read_view():
            self._delta_log = deque()
            self._delta_log_floor = self._commit_version
            self._delta_log_cap = capacity
            self._delta_log_broken = False

    @property
    def delta_log_floor(self) -> int:
        """Lowest follower version the op log can still bridge from."""
        return self._delta_log_floor

    def delta_log_since(
        self, version: int
    ) -> Optional[List[Tuple[int, List[Tuple[str, URIRef, Any]]]]]:
        """Per-commit ops for every commit after ``version``.

        Returns ``None`` when the log cannot bridge (disabled, truncated
        past ``version``, or reset by an unexpressible mutation) — the
        caller falls back to full changed-shard shipping.  Call under a
        :meth:`read_view` so the log cannot advance mid-read.
        """
        log = self._delta_log
        if log is None or self._delta_log_broken or version < self._delta_log_floor:
            return None
        return [entry for entry in log if entry[0] > version]

    def _record_op(self, kind: str, graph: URIRef, payload: Any) -> None:
        ops = self._pending_ops
        if ops is not None:
            ops.append((kind, graph, payload))

    def _log_commit(self, version: int) -> None:
        """Seal the pending ops as the log entry for ``version``."""
        ops, self._pending_ops = self._pending_ops, None
        log = self._delta_log
        if log is None:
            return
        if self._delta_log_broken:
            log.clear()
            self._delta_log_floor = version
            self._delta_log_broken = False
            return
        log.append((version, ops or []))
        while len(log) > self._delta_log_cap:
            dropped_version, _ = log.popleft()
            self._delta_log_floor = dropped_version

    def _break_delta_log(self) -> None:
        """Reset the log after a non-loggable state change (jump, reopen)."""
        self._pending_ops = None
        self._delta_log_broken = False
        if self._delta_log is not None:
            self._delta_log.clear()
            self._delta_log_floor = self._commit_version

    def graphs_changed_since(self, version: int) -> List[URIRef]:
        """Graphs that may hold changes committed after ``version``.

        Over-reporting is possible (the backend tracks change marks
        conservatively); under-reporting is not.  Dropped graphs are not
        listed — diff the graph catalog to observe drops.
        """
        return self._backend.changed_since(version)

    def graph_change_versions(self) -> Dict[URIRef, int]:
        """Upper bound on each graph's last-change commit version."""
        return self._backend.change_versions()

    @contextmanager
    def replication_batch(self, target_version: int, durable: bool = True):
        """An exclusive write scope that commits at an explicit version.

        The replica apply path: shipped state lands through backend-level
        primitives inside this scope, and on success the commit version
        *jumps* to the source's ``target_version`` (a follower replays the
        source's version line, it does not mint its own).  Readers behave
        exactly as under :meth:`write_batch` — they wait, then observe all
        of the shipped state or none of it.  On failure the backend
        transaction rolls back; the caller must invalidate any resident
        indexes it patched (there is no undo log here).

        ``durable=False`` (honoured only when the backend advertises
        ``supports_lazy_replication``) applies to the resident indexes and
        the write buffer but defers the sqlite flush, the meta stamp and
        the transaction entirely — the serving-replica hot path, where
        shipping durability work out of the request window is worth a
        weaker crash story.  The durable version stays *conservative*
        (whatever the last :meth:`checkpoint` wrote), which is safe because
        replication ops are idempotent: a restart re-pulls the delta since
        the stale durable version and replaying over already-flushed rows
        converges on the same state.  On failure the deferred ops and the
        terms interned by this apply are discarded instead of rolled back
        through sqlite.
        """
        lazy = not durable and getattr(
            self._backend, "supports_lazy_replication", False
        )
        depth = self._gate.acquire_write()
        try:
            if depth != 1:
                raise RuntimeError(
                    "replication_batch cannot nest inside writes or batches"
                )
            if target_version <= self._commit_version:
                raise ValueError(
                    f"replication target {target_version} is not ahead of "
                    f"commit version {self._commit_version}"
                )
            if lazy:
                pending_mark = self._backend.pending_mark()
                dictionary_mark = self.dictionary.mark()
            else:
                self._backend.begin_batch()
            self._in_batch = True
            try:
                yield self
            except BaseException:
                self._in_batch = False
                if lazy:
                    self._backend.discard_pending(pending_mark)
                    self.dictionary.rollback_to(dictionary_mark)
                else:
                    self._backend.rollback_batch()
                raise
            self._in_batch = False
            if not lazy:
                self._backend.commit_batch(target_version)
            self._commit_version = target_version
            self._version += 1
            self._break_delta_log()
        finally:
            self._gate.release_write()

    def checkpoint(self) -> None:
        """Flush deferred replication state and stamp the durable version.

        The companion to ``replication_batch(durable=False)``: everything
        applied lazily since the last checkpoint becomes durable in one
        sqlite transaction, meta version included.  A no-op when nothing is
        deferred; cheap enough to call from a replica's idle loop.
        """
        self._backend.note_commit_version(self._commit_version)
        self._backend.flush()

    def reopen(self, changed_graphs: Optional[Iterable[URIRef]] = None) -> Dict[str, Any]:
        """Re-read a durable backend replaced underneath this store in place.

        Cheap re-open: the backend keeps its interned term dictionary when
        the new file shares its lineage and drops only ``changed_graphs``'s
        resident indexes (``None`` = all).  Runs under the write gate so
        in-flight read views finish on the old state and the swap is atomic
        for the next reader.  Returns the backend's info dict.
        """
        depth = self._gate.acquire_write()
        try:
            if depth != 1:
                raise RuntimeError("reopen requires exclusive access, not a nested write")
            reopen = getattr(self._backend, "reopen", None)
            if reopen is None:
                raise RuntimeError(
                    f"{type(self._backend).__name__} does not support reopen"
                )
            info = reopen(changed_graphs=changed_graphs)
            self._commit_version = self._backend.committed_version()
            self._version += 1
            self._break_delta_log()
            return info
        finally:
            self._gate.release_write()

    def close(self) -> None:
        """Flush and release the backend; idempotent (double-close is a no-op)."""
        if self._closed:
            return
        self._backend.note_commit_version(self._commit_version)
        self._backend.close()
        self._closed = True

    @property
    def version(self) -> int:
        """Monotonic mutation counter: bumps on every successful write.

        Readers (e.g. the Global Graph Linker) key caches on this to detect
        *any* change, including remove-then-add sequences that leave the
        triple count unchanged.
        """
        return self._version

    def graph_version(self, graph: URIRef) -> int:
        """Mutation counter of one named graph (0 for an absent graph).

        Lets readers cache per-graph derived state (e.g. the linker's table
        map over the dataset graph) without being invalidated by writes to
        unrelated graphs.
        """
        index = self._backend.get_index(graph)
        return index.version if index is not None else 0

    # --------------------------------------------------------- id translation
    def _lookup_id(self, term: Any) -> Any:
        """The term's id, ``None`` for the wildcard, ``_ABSENT`` if unknown."""
        if term is None:
            return None
        term_id = self._backend.dictionary.lookup(term)
        return term_id if term_id is not None else _ABSENT

    def _decode_triple(self, triple: IdTriple) -> Triple:
        decode = self._backend.dictionary.decode
        return Triple(decode(triple[0]), decode(triple[1]), decode(triple[2]))

    # ------------------------------------------------------------------- add
    def add(
        self,
        subject: Any,
        predicate: Any,
        obj: Any,
        graph: URIRef = DEFAULT_GRAPH,
    ) -> bool:
        """Add a triple to ``graph``; returns ``False`` if it already existed."""
        depth = self._begin_write()
        try:
            triple = self._backend.dictionary.encode_triple(subject, predicate, obj)
            inserted = self._backend.ensure_index(graph).add(triple)
            if inserted:
                if self._undo is not None:
                    self._undo.append(("add", graph, triple))
                self._record_op("add", graph, triple)
                self._backend.graph_changed(graph, self._commit_version + 1)
                self._version += 1
                self._backend.quad_added(graph, triple)
            return inserted
        finally:
            self._end_write(depth)

    def add_triples(
        self, triples: Iterable[Tuple[Any, Any, Any]], graph: URIRef = DEFAULT_GRAPH
    ) -> int:
        """Add many triples atomically; returns the number actually inserted."""
        inserted = 0
        with self.write_batch():
            for subject, predicate, obj in triples:
                if self.add(subject, predicate, obj, graph=graph):
                    inserted += 1
        return inserted

    def annotate(
        self,
        subject: Any,
        predicate: Any,
        obj: Any,
        annotation_predicate: Any,
        annotation_value: Any,
        graph: URIRef = DEFAULT_GRAPH,
    ) -> QuotedTriple:
        """Add an RDF-star annotation on the (asserted) triple.

        The base triple is added if absent, then
        ``<< s p o >> annotation_predicate annotation_value`` is asserted.
        This is how Algorithm 3 attaches similarity scores to similarity edges.
        """
        # One gate span (not a flushing batch) keeps the asserted triple and
        # its annotation atomic for concurrent readers.
        depth = self._begin_write()
        try:
            self.add(subject, predicate, obj, graph=graph)
            quoted = QuotedTriple(subject, predicate, obj)
            self.add(quoted, annotation_predicate, annotation_value, graph=graph)
            return quoted
        finally:
            self._end_write(depth)

    def remove(
        self, subject: Any, predicate: Any, obj: Any, graph: URIRef = DEFAULT_GRAPH
    ) -> bool:
        """Remove a triple from ``graph`` if present."""
        depth = self._begin_write()
        try:
            index = self._backend.get_index(graph)
            if index is None:
                return False
            dictionary = self._backend.dictionary
            subject_id = dictionary.lookup(subject)
            predicate_id = dictionary.lookup(predicate)
            object_id = dictionary.lookup(obj)
            if subject_id is None or predicate_id is None or object_id is None:
                return False
            triple = (subject_id, predicate_id, object_id)
            removed = index.remove(triple)
            if removed:
                if self._undo is not None:
                    self._undo.append(("remove", graph, triple))
                self._record_op("remove", graph, triple)
                self._backend.graph_changed(graph, self._commit_version + 1)
                self._version += 1
                self._backend.quad_removed(graph, triple)
            return removed
        finally:
            self._end_write(depth)

    def remove_graph(self, graph: URIRef) -> bool:
        """Drop an entire named graph (one shard delete on durable backends)."""
        depth = self._begin_write()
        try:
            if self._undo is not None:
                token = self._backend.drop_graph_for_undo(graph)
                dropped = token is not None
                if dropped:
                    self._undo.append(("drop", graph, token))
            else:
                dropped = self._backend.drop_graph(graph)
            if dropped:
                self._record_op("drop", graph, None)
                self._version += 1
            return dropped
        finally:
            self._end_write(depth)

    def remove_predicate(self, predicate: Any, graph: Optional[URIRef] = None) -> int:
        """Remove every triple with ``predicate`` from the selected graph(s).

        A bulk retraction primitive (e.g. dropping one similarity-edge type
        lake-wide): the in-memory indexes are updated per triple, but durable
        backends persist the retraction as a single predicate-scoped delete
        per shard instead of per-row deletes.  Returns the number of triples
        removed.  (Table refresh uses node-scoped retraction via the hash /
        quoted-triple indexes instead — see ``KGGovernor.retract_table``.)
        """
        depth = self._begin_write()
        try:
            return self._remove_predicate_locked(predicate, graph)
        finally:
            self._end_write(depth)

    def _remove_predicate_locked(
        self, predicate: Any, graph: Optional[URIRef]
    ) -> int:
        predicate_id = self._backend.dictionary.lookup(predicate)
        if predicate_id is None:
            return 0
        graphs = [graph] if graph is not None else self.graphs()
        removed = 0
        for graph_name in graphs:
            # Graphs whose index is not resident (lazily-stored sqlite
            # shards) are retracted directly in durable storage — no point
            # loading a shard just to delete from it.
            unloaded = self._backend.delete_predicate_unloaded(graph_name, predicate_id)
            if unloaded is not None:
                if unloaded:
                    # The deleted rows were never enumerated — this commit
                    # cannot be expressed as a row delta.
                    self._delta_log_broken = True
                    self._backend.graph_changed(graph_name, self._commit_version + 1)
                removed += unloaded
                continue
            index = self._backend.get_index(graph_name)
            if index is None:
                continue
            victims = tuple(index.by_predicate.get(predicate_id, ()))
            if not victims:
                continue
            for triple in victims:
                index.remove(triple)
                if self._undo is not None:
                    self._undo.append(("remove", graph_name, triple))
                self._record_op("remove", graph_name, triple)
            self._backend.graph_changed(graph_name, self._commit_version + 1)
            self._backend.predicate_removed(graph_name, predicate_id)
            removed += len(victims)
        if removed:
            self._version += removed
        return removed

    # ----------------------------------------------------------------- query
    def graphs(self) -> List[URIRef]:
        """The names of all graphs currently holding triples."""
        return self._backend.graph_names()

    def match(
        self,
        subject: Any = None,
        predicate: Any = None,
        obj: Any = None,
        graph: Optional[URIRef] = None,
    ) -> Iterator[Tuple[Triple, URIRef]]:
        """Iterate ``(triple, graph)`` pairs matching the quad pattern."""
        subject_id = self._lookup_id(subject)
        predicate_id = self._lookup_id(predicate)
        object_id = self._lookup_id(obj)
        if _ABSENT in (subject_id, predicate_id, object_id):
            return
        for triple, graph_name in self.match_ids(
            subject_id, predicate_id, object_id, graph
        ):
            yield self._decode_triple(triple), graph_name

    def match_ids(
        self,
        subject_id: Optional[int] = None,
        predicate_id: Optional[int] = None,
        object_id: Optional[int] = None,
        graph: Optional[URIRef] = None,
    ) -> Iterator[Tuple[IdTriple, URIRef]]:
        """Id-level :meth:`match`: yields ``(id_triple, graph)`` undecoded.

        The batched SPARQL executor's access path — results stay in id space
        so joins compare machine ints and nothing is decoded until FILTER
        evaluation / final projection.
        """
        if graph is not None:
            index = self._backend.get_index(graph)
            if index is None:
                return
            for triple in index.match(subject_id, predicate_id, object_id):
                yield triple, graph
            return
        for graph_name, index in self._backend.items():
            for triple in index.match(subject_id, predicate_id, object_id):
                yield triple, graph_name

    def match_id_arrays(
        self,
        subject_id: Optional[int] = None,
        predicate_id: Optional[int] = None,
        object_id: Optional[int] = None,
        graph: Optional[URIRef] = None,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Array-level :meth:`match_ids`: matches as three parallel id columns.

        Concatenates the per-graph column snapshots when the graph is a
        wildcard; the vectorized SPARQL scan path consumes these directly.
        """
        parts = [
            index.match_id_arrays(subject_id, predicate_id, object_id)
            for index in self._backend.indexes_for(graph)
        ]
        parts = [part for part in parts if len(part[0])]
        if not parts:
            empty = np.empty(0, np.int64)
            return empty, empty, empty
        if len(parts) == 1:
            return parts[0]
        return (
            np.concatenate([part[0] for part in parts]),
            np.concatenate([part[1] for part in parts]),
            np.concatenate([part[2] for part in parts]),
        )

    def estimate_matches(
        self,
        subject: Any = None,
        predicate: Any = None,
        obj: Any = None,
        graph: Optional[URIRef] = None,
    ) -> int:
        """Cheap upper bound on quad-pattern matches (index sizes, no scan).

        The SPARQL engine uses this as the selectivity estimate when ordering
        triple patterns; it never materializes candidates.
        """
        subject_id = self._lookup_id(subject)
        predicate_id = self._lookup_id(predicate)
        object_id = self._lookup_id(obj)
        if _ABSENT in (subject_id, predicate_id, object_id):
            return 0
        if graph is not None:
            index = self._backend.get_index(graph)
            return index.estimate(subject_id, predicate_id, object_id) if index else 0
        return sum(
            index.estimate(subject_id, predicate_id, object_id)
            for _, index in self._backend.items()
        )

    def match_quoted(
        self,
        inner_subject: Any = None,
        inner_predicate: Any = None,
        inner_object: Any = None,
        predicate: Any = None,
        obj: Any = None,
        graph: Optional[URIRef] = None,
    ) -> Iterator[Tuple[Triple, URIRef]]:
        """Annotation triples whose quoted subject matches a *partial* pattern.

        The one-side-bound access path of RDF-star patterns: when only
        ``?c1`` of ``<< ?c1 p ?c2 >> ann ?v`` is known, the partial
        quoted-subject index answers directly instead of scanning every
        annotation triple.
        """
        ids = tuple(
            self._lookup_id(term)
            for term in (inner_subject, inner_predicate, inner_object, predicate, obj)
        )
        if _ABSENT in ids:
            return
        for triple, graph_name in self.match_quoted_ids(*ids, graph=graph):
            yield self._decode_triple(triple), graph_name

    def match_quoted_ids(
        self,
        inner_subject_id: Optional[int] = None,
        inner_predicate_id: Optional[int] = None,
        inner_object_id: Optional[int] = None,
        predicate_id: Optional[int] = None,
        object_id: Optional[int] = None,
        graph: Optional[URIRef] = None,
    ) -> Iterator[Tuple[IdTriple, URIRef]]:
        """Id-level :meth:`match_quoted` (see :meth:`match_ids`)."""
        if graph is not None:
            index = self._backend.get_index(graph)
            if index is None:
                return
            for triple in index.match_quoted(
                inner_subject_id,
                inner_predicate_id,
                inner_object_id,
                predicate_id,
                object_id,
            ):
                yield triple, graph
            return
        for graph_name, index in self._backend.items():
            for triple in index.match_quoted(
                inner_subject_id,
                inner_predicate_id,
                inner_object_id,
                predicate_id,
                object_id,
            ):
                yield triple, graph_name

    def estimate_quoted_matches(
        self,
        inner_subject: Any = None,
        inner_object: Any = None,
        predicate: Any = None,
        obj: Any = None,
        graph: Optional[URIRef] = None,
    ) -> int:
        """Cheap upper bound on :meth:`match_quoted` results (index sizes only)."""
        ids = tuple(
            self._lookup_id(term)
            for term in (inner_subject, inner_object, predicate, obj)
        )
        if _ABSENT in ids:
            return 0
        if graph is not None:
            index = self._backend.get_index(graph)
            return index.estimate_quoted(*ids) if index else 0
        # The store-wide estimate is planner input, so it must never force a
        # shard load: non-resident graphs contribute their raw row count (a
        # valid upper bound on any quoted-pattern match) instead of exact
        # quoted-index sizes.
        total = 0
        for name in self._backend.graph_names():
            index = self._backend.resident_index(name)
            if index is not None:
                total += index.estimate_quoted(*ids)
            else:
                total += self._backend.triple_count(name)
        return total

    def triples(
        self,
        subject: Any = None,
        predicate: Any = None,
        obj: Any = None,
        graph: Optional[URIRef] = None,
    ) -> Iterator[Triple]:
        """Iterate triples matching the pattern across the selected graph(s)."""
        for triple, _ in self.match(subject, predicate, obj, graph):
            yield triple

    def contains(
        self,
        subject: Any,
        predicate: Any,
        obj: Any,
        graph: Optional[URIRef] = None,
    ) -> bool:
        """``True`` when the exact triple exists."""
        return any(True for _ in self.match(subject, predicate, obj, graph))

    def objects(
        self, subject: Any, predicate: Any, graph: Optional[URIRef] = None
    ) -> List[Any]:
        """All objects of ``(subject, predicate, ?)``."""
        return [t.object for t in self.triples(subject, predicate, None, graph)]

    def subjects(
        self, predicate: Any, obj: Any, graph: Optional[URIRef] = None
    ) -> List[Any]:
        """All subjects of ``(?, predicate, obj)``."""
        return [t.subject for t in self.triples(None, predicate, obj, graph)]

    def value(
        self, subject: Any, predicate: Any, graph: Optional[URIRef] = None, default: Any = None
    ) -> Any:
        """First object of ``(subject, predicate, ?)`` converted to Python."""
        for triple in self.triples(subject, predicate, None, graph):
            obj = triple.object
            return obj.to_python() if isinstance(obj, Literal) else obj
        return default

    def annotation(
        self,
        subject: Any,
        predicate: Any,
        obj: Any,
        annotation_predicate: Any,
        graph: Optional[URIRef] = None,
        default: Any = None,
    ) -> Any:
        """Read back an RDF-star annotation value for a triple."""
        quoted = QuotedTriple(subject, predicate, obj)
        return self.value(quoted, annotation_predicate, graph=graph, default=default)

    # ------------------------------------------------------------ statistics
    def __len__(self) -> int:
        return sum(self._backend.triple_count(graph) for graph in self.graphs())

    def num_triples(self, graph: Optional[URIRef] = None) -> int:
        """Number of triples, optionally restricted to one graph.

        Counting does not force lazily-stored graphs to load: durable
        backends answer from the shard catalog.
        """
        if graph is not None:
            return self._backend.triple_count(graph)
        return len(self)

    def unique_nodes(self) -> Set[Any]:
        """All subjects and objects that are not literals (LiDS-graph nodes)."""
        node_ids: Set[int] = set()
        for _, index in self._backend.items():
            for triple in index.triples:
                node_ids.add(triple[0])
                node_ids.add(triple[2])
        decode = self._backend.dictionary.decode
        nodes: Set[Any] = set()
        for node_id in node_ids:
            term = decode(node_id)
            if not isinstance(term, Literal):
                nodes.add(term)
        return nodes

    def unique_predicates(self) -> Set[Any]:
        """All predicates in the store."""
        predicate_ids: Set[int] = set()
        for _, index in self._backend.items():
            predicate_ids.update(index.by_predicate.keys())
        decode = self._backend.dictionary.decode
        return {decode(predicate_id) for predicate_id in predicate_ids}

    def predicate_statistics(
        self, predicate: Any, graph: Optional[URIRef] = None
    ) -> Optional[Dict[str, int]]:
        """Live cardinality statistics for one predicate.

        Returns ``{"count", "distinct_subjects", "distinct_objects"}``
        aggregated over the selected graph(s), or ``None`` when the predicate
        holds no triples there.  The statistics are maintained incrementally
        on every add/remove, so the SPARQL planner reads real cardinalities
        instead of applying fixed selectivity discounts.
        """
        predicate_id = self._backend.dictionary.lookup(predicate)
        if predicate_id is None:
            return None
        if graph is not None:
            index = self._backend.get_index(graph)
            if index is None:
                return None
            stats = index.predicate_stats.get(predicate_id)
            return stats.to_dict() if stats is not None else None
        combined: Optional[Dict[str, int]] = None
        for _, index in self._backend.items():
            stats = index.predicate_stats.get(predicate_id)
            if stats is None:
                continue
            if combined is None:
                combined = stats.to_dict()
            else:
                # Distinct counts cannot be merged exactly across graphs;
                # summing gives a safe upper bound on distinct terms (it can
                # only under-estimate fan-out, never the match count).
                for key, value in stats.to_dict().items():
                    combined[key] += value
        return combined

    def cardinality_statistics(
        self, graph: Optional[URIRef] = None
    ) -> Dict[Any, Dict[str, int]]:
        """Per-predicate cardinality statistics over the selected graph(s)."""
        predicate_ids: Set[int] = set()
        if graph is not None:
            index = self._backend.get_index(graph)
            predicate_ids = set(index.predicate_stats) if index else set()
        else:
            for _, index in self._backend.items():
                predicate_ids.update(index.predicate_stats)
        decode = self._backend.dictionary.decode
        return {
            decode(predicate_id): self.predicate_statistics(decode(predicate_id), graph)
            for predicate_id in predicate_ids
        }

    def statistics(self) -> Dict[str, int]:
        """Summary statistics used by Table 3 (triples, nodes, edge types, graphs)."""
        return {
            "num_triples": len(self),
            "num_unique_nodes": len(self.unique_nodes()),
            "num_unique_predicates": len(self.unique_predicates()),
            "num_graphs": len(self.graphs()),
        }

    def estimated_size_bytes(self) -> int:
        """Rough serialized size: sum of N-Triples line lengths.

        Computed in id space with one length per distinct term — the
        dictionary means a term's text is measured once, not once per
        referencing triple.
        """
        decode = self._backend.dictionary.decode
        lengths: Dict[int, int] = {}
        total = 0
        for _, index in self._backend.items():
            for triple in index.triples:
                line = 5  # two separating spaces, " .", and the newline
                for term_id in triple:
                    length = lengths.get(term_id)
                    if length is None:
                        length = lengths[term_id] = len(term_n3(decode(term_id)))
                    line += length
                total += line
        return total
