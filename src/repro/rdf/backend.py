"""Pluggable quad-store backends: where the LiDS graph's quads live durably.

:class:`QuadStore` delegates all graph management to a
:class:`QuadStoreBackend`.  Every backend owns one shared
:class:`~repro.rdf.terms.TermDictionary` (term <-> integer-id interning) and
hands out the same id-keyed :class:`~repro.rdf.graph_index.GraphIndex`
structure for matching, so pattern semantics, cardinality statistics and
therefore SPARQL ``explain()`` plans are identical across backends — backends
differ only in durability:

* :class:`InMemoryBackend` — the seed behaviour: graphs live in a plain dict
  and die with the process.
* :class:`SqliteBackend` — terms are persisted once in a ``terms`` dictionary
  table and quads are sharded into one sqlite table of integer id-triples per
  named graph (the LiDS layout: one graph per pipeline plus the dataset /
  library / ontology graphs).  Writes are buffered and flushed in batches; on
  open, the term dictionary's text is loaded eagerly (terms parse lazily on
  first decode) while a graph's index — per-predicate statistics and partial
  quoted-triple indexes included — is rebuilt lazily the first time the graph
  is touched, so reopening a governed lake never pays for graphs a query does
  not read.  ``max_resident_graphs`` additionally caps how many loaded
  indexes stay resident: beyond the cap the least-recently-used shard is
  evicted (after a write-through flush), keeping a long-lived governor's
  memory bounded by its working set instead of the lake.

Terms are persisted in their N-Triples text form (``term_n3``) and parsed
back with :func:`repro.rdf.terms.parse_term`; plain Python values that the
in-memory backend would keep raw are therefore normalized to
:class:`~repro.rdf.terms.Literal` objects on reload — and two in-memory
terms whose spelling differs only in that respect (``"5"`` vs
``Literal("5")``) alias to the *same* dictionary id, so their triples
collapse to one durable row.  The product layers always write proper term
objects; mixed raw/term graphs should stay on the in-memory backend.
"""

from __future__ import annotations

import random
import sqlite3
import threading
import time
from abc import ABC, abstractmethod
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Tuple, Union

from repro.rdf.graph_index import GraphIndex, IdTriple
from repro.rdf.terms import TermDictionary, URIRef, parse_term, term_n3

PathLike = Union[str, Path]


class QuadStoreBackend(ABC):
    """Storage backend protocol behind :class:`~repro.rdf.store.QuadStore`.

    The reader side hands out :class:`GraphIndex` objects (``get_index`` /
    ``ensure_index`` / ``items``) that share the backend's ``dictionary``;
    the writer side receives persistence hooks *after* the in-memory index
    has been updated (``quad_added`` etc., all id-encoded), so a non-durable
    backend can ignore them entirely.
    """

    #: Whether this backend survives process restarts.
    persistent: bool = False

    #: The term dictionary shared by every graph of this backend.
    dictionary: TermDictionary

    # ----------------------------------------------------------------- graphs
    @abstractmethod
    def graph_names(self) -> List[URIRef]:
        """Names of all graphs currently holding triples (no index loads)."""

    @abstractmethod
    def get_index(self, graph: URIRef) -> Optional[GraphIndex]:
        """The graph's index, loading it if necessary; ``None`` when absent."""

    @abstractmethod
    def ensure_index(self, graph: URIRef) -> GraphIndex:
        """The graph's index, creating the graph when absent."""

    @abstractmethod
    def drop_graph(self, graph: URIRef) -> bool:
        """Drop a whole named graph (a backend-level retraction primitive)."""

    @abstractmethod
    def items(self) -> Iterable[Tuple[URIRef, GraphIndex]]:
        """``(name, index)`` for every graph (loads all lazily-stored graphs)."""

    def triple_count(self, graph: URIRef) -> int:
        """Number of triples in one graph, without forcing an index load."""
        index = self.get_index(graph)
        return len(index.triples) if index is not None else 0

    def indexes_for(self, graph: Optional[URIRef]) -> List[GraphIndex]:
        """The indexes a quad pattern over ``graph`` must consult.

        One index for a named graph (empty when absent), every index for the
        default-graph wildcard.  The SPARQL planner's single entry point for
        resolving a pattern's graph scope to concrete indexes.
        """
        if graph is not None:
            index = self.get_index(graph)
            return [index] if index is not None else []
        return [index for _, index in self.items()]

    # ------------------------------------------------------ persistence hooks
    def quad_added(self, graph: URIRef, triple: IdTriple) -> None:
        """Called after an id-triple was inserted into the graph's index."""

    def quad_removed(self, graph: URIRef, triple: IdTriple) -> None:
        """Called after an id-triple was removed from the graph's index."""

    def predicate_removed(self, graph: URIRef, predicate_id: int) -> None:
        """Called after all triples with ``predicate_id`` left the graph's index.

        Durable backends translate this into one predicate-scoped delete
        instead of per-triple deletes — the cheap path for bulk schema
        retractions (e.g. dropping a similarity-edge type lake-wide).
        """

    def delete_predicate_unloaded(self, graph: URIRef, predicate_id: int) -> Optional[int]:
        """Predicate-scoped delete on a graph whose index is *not* resident.

        Returns the number of triples removed when the backend could retract
        directly in durable storage (sparing the index load), or ``None``
        when the graph's index is resident (or the backend is volatile) and
        the caller must retract through the index as usual.
        """
        return None

    def flush(self) -> None:
        """Make all buffered writes durable (no-op for volatile backends)."""

    def close(self) -> None:
        """Release any resources; the backend must not be used afterwards."""

    # ------------------------------------------------------- residency pinning
    def pin_residency(self) -> None:
        """Suspend index eviction (re-entrant); no-op without a residency cap.

        Cross-graph evaluation touches every shard many times (planner
        estimates, pattern probes, full scans); pinning for the duration of
        one query makes each missing shard load at most once, and
        :meth:`unpin_residency` enforces the cap once at the end instead of
        thrashing on every intermediate load.
        """

    def unpin_residency(self) -> None:
        """Release one :meth:`pin_residency` level (enforces the cap at 0)."""

    # ------------------------------------------------------------ transactions
    def begin_batch(self) -> None:
        """Open one atomic commit batch (caller holds the store's write gate).

        Everything mutated until :meth:`commit_batch` either lands as one
        durable commit or is wound back entirely by :meth:`rollback_batch`.
        The default implementation only marks the term dictionary so an
        aborted batch cannot leak interned ids (which would change the ids —
        and therefore the durable byte layout — of later terms).
        """
        self._dictionary_mark = self.dictionary.mark()

    def commit_batch(self, commit_version: int) -> None:
        """Make the open batch durable, stamped with ``commit_version``."""
        self.note_commit_version(commit_version)
        self.flush()

    def rollback_batch(self) -> None:
        """Discard the open batch's durable writes and dictionary entries.

        The store has already replayed its undo log against the resident
        indexes; this only unwinds backend-owned state (buffered rows, the
        sqlite transaction, terms interned during the batch).
        """
        self.dictionary.rollback_to(self._dictionary_mark)

    def resident_index(self, graph: URIRef) -> Optional[GraphIndex]:
        """The graph's index only if it is already in memory (no load).

        Undo replay targets exactly the state a failed batch touched: an
        index evicted (or never loaded) during the batch is rebuilt from
        durable storage on next touch, which the backend rollback already
        restored — replaying into a fresh load would double-revert.
        """
        return self.get_index(graph)

    def drop_graph_for_undo(self, graph: URIRef) -> Optional[Any]:
        """Drop a graph, returning an opaque token that can restore it.

        ``None`` means the graph did not exist (nothing to undo).  The token
        is only valid within the current batch, passed to
        :meth:`restore_graph` during rollback.
        """
        raise NotImplementedError

    def restore_graph(self, graph: URIRef, token: Any) -> None:
        """Reinstate a graph dropped via :meth:`drop_graph_for_undo`."""
        raise NotImplementedError

    def committed_version(self) -> int:
        """The last durably committed commit version (0 for volatile stores)."""
        return 0

    def note_commit_version(self, commit_version: int) -> None:
        """Record the store's commit version for the next durable commit."""

    # ------------------------------------------------------- change inspection
    def graph_changed(self, graph: URIRef, version: int) -> None:
        """Record that ``graph`` is mutated by the commit at ``version``.

        The store calls this on every mutation path (with the version the
        mutation will commit as); replication uses the recorded high-water
        marks to ship only the graphs a follower is missing.  Rolled-back
        versions may stay recorded — over-reporting a change is safe (the
        follower re-pulls an identical shard), under-reporting is not.
        """
        versions = getattr(self, "_graph_change_versions", None)
        if versions is None:
            versions = self._graph_change_versions = {}
        previous = versions.get(graph, 0)
        if version > previous:
            versions[graph] = version

    def change_baseline(self) -> int:
        """Versions at or below this may hide changes (see :meth:`changed_since`).

        A freshly created volatile store has seen every mutation, so its
        baseline is 0; a durable backend reopened from disk cannot know when
        its pre-existing graphs last changed, so its baseline is the durable
        commit version at open — ``changed_since`` conservatively reports
        every pre-existing graph to followers older than that.
        """
        return 0

    def changed_since(self, version: int) -> List[URIRef]:
        """Graphs that may hold changes committed after ``version``.

        Never under-reports: graphs with no recorded change version are
        assumed changed at :meth:`change_baseline`.  Dropped graphs are not
        listed (they are no longer in the catalog); followers diff the
        catalog itself to observe drops.
        """
        versions = getattr(self, "_graph_change_versions", {})
        baseline = self.change_baseline()
        return [
            graph
            for graph in self.graph_names()
            if versions.get(graph, baseline) > version
        ]

    def change_versions(self) -> Dict[URIRef, int]:
        """Per-graph change high-water marks (recorded or baseline)."""
        versions = getattr(self, "_graph_change_versions", {})
        baseline = self.change_baseline()
        return {
            graph: versions.get(graph, baseline) for graph in self.graph_names()
        }

    def shard_files(self) -> Dict[str, str]:
        """``graph name -> durable shard name`` (empty for volatile backends).

        The snapshot-shipping inspection API: tooling that copies or
        invalidates shards keys off this mapping instead of reaching into
        backend internals.
        """
        return {}


class InMemoryBackend(QuadStoreBackend):
    """The seed storage: a dict of :class:`GraphIndex` per named graph."""

    persistent = False

    def __init__(self):
        self.dictionary = TermDictionary()
        self._graphs: Dict[URIRef, GraphIndex] = {}
        self._batch_created: Optional[Dict[URIRef, GraphIndex]] = None

    def graph_names(self) -> List[URIRef]:
        return list(self._graphs.keys())

    def get_index(self, graph: URIRef) -> Optional[GraphIndex]:
        return self._graphs.get(graph)

    def ensure_index(self, graph: URIRef) -> GraphIndex:
        index = self._graphs.get(graph)
        if index is None:
            index = self._graphs[graph] = GraphIndex(self.dictionary)
            if self._batch_created is not None:
                self._batch_created.setdefault(graph, index)
        return index

    def drop_graph(self, graph: URIRef) -> bool:
        return self._graphs.pop(graph, None) is not None

    def items(self) -> Iterable[Tuple[URIRef, GraphIndex]]:
        return list(self._graphs.items())

    # ------------------------------------------------------------ transactions
    def begin_batch(self) -> None:
        super().begin_batch()
        self._batch_created = {}

    def commit_batch(self, commit_version: int) -> None:
        self._batch_created = None
        super().commit_batch(commit_version)

    def rollback_batch(self) -> None:
        created, self._batch_created = self._batch_created, None
        for graph, index in (created or {}).items():
            # Identity guard: a graph dropped and re-created during the batch
            # may by now hold a *restored* pre-batch index (undo replay runs
            # before this) — only discard the index this batch created.
            if self._graphs.get(graph) is index:
                del self._graphs[graph]
        super().rollback_batch()

    def drop_graph_for_undo(self, graph: URIRef) -> Optional[GraphIndex]:
        return self._graphs.pop(graph, None)

    def restore_graph(self, graph: URIRef, token: GraphIndex) -> None:
        self._graphs[graph] = token


class PersistentTermDictionary(TermDictionary):
    """A :class:`TermDictionary` whose entries round-trip through sqlite.

    The backend loads the ``terms`` table eagerly as *text* (one cheap scan
    of ``id, n3`` rows); term objects are parsed lazily on first decode and
    cached, so reopening a lake never re-parses terms that no query touches.
    Newly assigned ids queue ``(id, n3)`` rows that the owning backend
    flushes ahead of any quad rows referencing them.

    Interning goes through the N-Triples spelling, which is what makes saved
    governors round-trip ids: the id a term had when written is the id its
    text row decodes to forever after.
    """

    __slots__ = ("_text_to_id", "_id_to_text", "_pending")

    def __init__(self):
        super().__init__()
        self._text_to_id: Dict[str, int] = {}
        self._id_to_text: Dict[int, str] = {}
        self._pending: List[Tuple[int, str]] = []

    # ---------------------------------------------------------------- loading
    def load_rows(self, rows: Iterable[Tuple[int, str]]) -> None:
        """Ingest persisted ``(id, n3)`` rows (text only; no parsing)."""
        quoted: List[int] = []
        for term_id, text in rows:
            self._text_to_id[text] = term_id
            self._id_to_text[term_id] = text
            if term_id >= self._next_id:
                self._next_id = term_id + 1
            if text.startswith("<<"):
                quoted.append(term_id)
        if quoted and self._quoted_columns is not None:
            # A columnar snapshot is live: register the incoming quoted rows
            # now — each registration queues an incremental append — instead
            # of invalidating the snapshot.  Replication ships terms through
            # here on every applied commit, and a full rebuild per commit
            # would scale with the whole dictionary rather than the delta.
            # Registration runs after the loop so inner-part texts arriving
            # in the same batch are probeable.
            for term_id in quoted:
                self.quoted_parts(term_id)

    def drain_pending(self) -> List[Tuple[int, str]]:
        """New ``(id, n3)`` rows awaiting persistence (clears the queue)."""
        pending, self._pending = self._pending, []
        return pending

    def export_rows(self, start: int) -> List[Tuple[int, str]]:
        """Replication rows straight from the text map — no term parsing."""
        id_to_text = self._id_to_text
        return [
            (term_id, id_to_text[term_id])
            for term_id in range(max(start, 1), self._next_id)
            if term_id in id_to_text
        ]

    def has_pending(self) -> bool:
        return bool(self._pending)

    def rollback_to(self, mark: int) -> None:
        """Forget every term interned at or after ``mark``.

        Unlike the volatile base, several live term objects can alias one
        persisted id (``"5"`` and ``Literal("5")`` share an n3 spelling), so
        ``_term_to_id`` is filter-rebuilt rather than popped per id; pending
        rows for unwound ids are dropped so they never reach sqlite.
        """
        if mark >= self._next_id:
            # Nothing interned at or past the mark — skip the rebuild.  The
            # replica sync path rolls back before every apply, so the no-op
            # case runs once per replicated commit.
            return
        for term_id in range(mark, self._next_id):
            text = self._id_to_text.pop(term_id, None)
            if text is not None:
                self._text_to_id.pop(text, None)
            self._id_to_term.pop(term_id, None)
            parts = self._quoted_parts.pop(term_id, None)
            if parts is not None:
                self._quoted_by_parts.pop(parts, None)
        self._quoted_columns = None
        self._quoted_appends.clear()
        self._term_to_id = {
            term: term_id for term, term_id in self._term_to_id.items() if term_id < mark
        }
        self._pending = [(term_id, text) for term_id, text in self._pending if term_id < mark]
        self._next_id = mark

    def __len__(self) -> int:
        return len(self._id_to_text)

    # -------------------------------------------------------------- interning
    def _assign(self, term) -> int:
        """Intern by N-Triples spelling (the base ``encode`` drives this:
        quoted-part maps and inner-term interning are inherited unchanged).

        Unlike the volatile base ``_assign``, the spelling may already hold a
        persisted id from an earlier process — reuse it and just register the
        live term object against it.
        """
        term_id = self._intern_text(term_n3(term))
        self._term_to_id[term] = term_id
        self._id_to_term.setdefault(term_id, term)
        return term_id

    def _intern_text(self, text: str) -> int:
        term_id = self._text_to_id.get(text)
        if term_id is None:
            term_id = self._next_id
            self._next_id += 1
            self._text_to_id[text] = term_id
            self._id_to_text[term_id] = text
            self._pending.append((term_id, text))
        return term_id

    # ---------------------------------------------------------------- lookups
    def lookup(self, term) -> Optional[int]:
        term_id = self._term_to_id.get(term)
        if term_id is None:
            term_id = self._text_to_id.get(term_n3(term))
            if term_id is not None:
                self._term_to_id[term] = term_id
                self._id_to_term.setdefault(term_id, term)
        return term_id

    def decode(self, term_id: int):
        term = self._id_to_term.get(term_id)
        if term is None:
            term = parse_term(self._id_to_text[term_id])
            self._id_to_term[term_id] = term
            self._term_to_id.setdefault(term, term_id)
        return term

    def quoted_parts(self, term_id: int) -> Optional[Tuple[int, int, int]]:
        parts = self._quoted_parts.get(term_id)
        if parts is None:
            text = self._id_to_text.get(term_id)
            if text is None or not text.startswith("<<"):
                return None
            parts = self._split_quoted(text)
            if parts is None:
                quoted = self.decode(term_id)
                parts = (
                    self.encode(quoted.subject),
                    self.encode(quoted.predicate),
                    self.encode(quoted.object),
                )
            self._quoted_parts[term_id] = parts
            self._quoted_by_parts[parts] = term_id
            self._note_quoted(term_id, parts)
        return parts

    def _split_quoted(self, text: str) -> Optional[Tuple[int, int, int]]:
        """Inner part ids straight from the canonical ``<< s p o >>`` spelling.

        Index loads call :meth:`quoted_parts` once per annotation subject, so
        the full parse + re-encode round trip (term object construction plus
        three ``term_n3`` serializations) dominates cold shard rebuilds.  The
        canonical spelling joins the three inner spellings with single
        spaces, so when no token can itself contain a space — no literal
        (``"``) and no nested quoted triple (``<<``) — splitting and probing
        the text map yields the same ids the parse would.  Anything fancier
        falls back to the parser.
        """
        if not text.endswith(" >>") or not text.startswith("<< "):
            return None
        inner = text[3:-3]
        if '"' in inner or "<<" in inner:
            return None
        tokens = inner.split(" ")
        if len(tokens) != 3:
            return None
        text_to_id = self._text_to_id
        subject = text_to_id.get(tokens[0])
        predicate = text_to_id.get(tokens[1])
        obj = text_to_id.get(tokens[2])
        if subject is None or predicate is None or obj is None:
            return None
        return (subject, predicate, obj)

    def quoted_id(self, parts: Tuple[int, int, int]) -> Optional[int]:
        term_id = self._quoted_by_parts.get(parts)
        if term_id is None:
            # Reconstruct the persisted spelling from the part ids; a hit
            # registers the quoted maps so the next probe is one dict get.
            text = (
                f"<< {self._spelling(parts[0])} {self._spelling(parts[1])}"
                f" {self._spelling(parts[2])} >>"
            )
            term_id = self._text_to_id.get(text)
            if term_id is not None:
                self._quoted_parts[term_id] = parts
                self._quoted_by_parts[parts] = term_id
                self._note_quoted(term_id, parts)
        return term_id

    def _materialize_quoted(self) -> None:
        """Decode every persisted-but-untouched quoted spelling so the
        columnar snapshot covers the full quoted population (the maps here
        fill lazily, one id per :meth:`quoted_parts` probe)."""
        quoted_parts = self._quoted_parts
        pending = [
            term_id
            for term_id, text in self._id_to_text.items()
            if text.startswith("<<") and term_id not in quoted_parts
        ]
        for term_id in pending:
            self.quoted_parts(term_id)

    def _spelling(self, term_id: int) -> str:
        text = self._id_to_text.get(term_id)
        return text if text is not None else term_n3(self.decode(term_id))


class SqliteBackend(QuadStoreBackend):
    """A sqlite-backed quad store with one shard table per named graph.

    Layout: a ``graphs`` catalog table maps graph names to shard ids; a
    ``terms`` dictionary table holds every distinct term once (``id``,
    N-Triples ``n3`` text); shard ``quads_<id>`` holds that graph's triples
    as three integer id columns with an ``(s, p, o)`` primary key plus a
    predicate index (for predicate-scoped deletes).  All matching still runs
    on the shared :class:`GraphIndex`, rebuilt lazily per graph on first
    touch — a pure integer scan, no term parsing — so the cardinality
    statistics and partial quoted-triple indexes the SPARQL planner sees are
    exactly the statistics the in-memory backend would produce.

    Writes are buffered (insert/delete order preserved; new dictionary rows
    always land before the quad rows referencing them) and flushed every
    ``flush_threshold`` operations, on :meth:`flush` and on :meth:`close`.

    ``max_resident_graphs`` bounds how many loaded :class:`GraphIndex`es stay
    in RAM: loading a shard past the cap evicts the least-recently-used
    resident index after a write-through :meth:`flush`, so no buffered write
    can be lost and the evicted graph reloads faithfully on next touch.
    ``shard_loads`` / ``shard_evictions`` count both events for tests and
    benchmarks.  Per-graph mutation counters survive eviction: a reloaded
    index resumes *above* its pre-eviction version, so version-keyed caches
    (e.g. the Global Graph Linker's table map) never see a stale counter.

    The sqlite connection is shared across threads (created with
    ``check_same_thread=False``) and every use of it is serialized by an
    internal lock, so a background ingestion thread and reader threads can
    coexist on one backend.  Higher-level read/write *consistency* (torn
    reads, batch atomicity) is the store's gate's job — see
    ``QuadStore.read_view`` / ``QuadStore.write_batch``.
    """

    persistent = True
    #: The store's ``replication_batch(durable=False)`` fast path is only
    #: sound on backends whose buffered ops survive a deferral window and can
    #: be truncated back to a mark — i.e. this one.
    supports_lazy_replication = True

    def __init__(
        self,
        path: PathLike,
        flush_threshold: int = 8192,
        max_resident_graphs: Optional[int] = None,
    ):
        if max_resident_graphs is not None and max_resident_graphs < 1:
            raise ValueError("max_resident_graphs must be >= 1 (or None for unbounded)")
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.flush_threshold = flush_threshold
        self.max_resident_graphs = max_resident_graphs
        #: Shard loads (lazy first touches *and* post-eviction reloads).
        self.shard_loads = 0
        #: Indexes evicted to honour ``max_resident_graphs``.
        self.shard_evictions = 0
        #: Serializes every use of the shared sqlite connection.  The
        #: connection is created with ``check_same_thread=False`` so a
        #: governor-service scheduler thread can flush writes while readers
        #: on other threads trigger lazy shard loads; sqlite objects are
        #: not otherwise thread-safe, so all cursor work happens under this
        #: lock (reentrant: ``flush`` runs inside other locked sections).
        self._db_lock = threading.RLock()
        self._in_batch = False
        self._batch_created: Dict[URIRef, int] = {}
        self._shards_snapshot: Optional[Dict[URIRef, int]] = None
        self._crashed = False
        self._connection = self._connect()
        self._ensure_layout()
        #: The commit version of the last durable commit (the recovery marker).
        self._durable_version = self._read_meta("commit_version")
        #: Random identity stamped into ``meta`` when the database file is
        #: created; two files share a uid only if one is a byte copy (or
        #: flush) of the other, i.e. their term-id spaces are compatible.
        #: ``reopen`` refuses to splice incremental state across lineages.
        self._uid = self._read_meta("store_uid")
        #: Graphs existing at open changed at-or-before this version (see
        #: ``change_baseline``): reopening loses the in-memory change marks.
        self._change_baseline = self._durable_version
        self._noted_version: Optional[int] = None
        self.dictionary = PersistentTermDictionary()
        self.dictionary.load_rows(self._connection.execute("SELECT id, n3 FROM terms"))
        #: graph name -> shard id, in catalog order (deterministic reopen).
        self._shards: Dict[URIRef, int] = {
            URIRef(name): shard_id
            for shard_id, name in self._connection.execute(
                "SELECT id, name FROM graphs ORDER BY id"
            )
        }
        #: Resident per-graph indexes in least- to most-recently-used order.
        self._indexes: Dict[URIRef, GraphIndex] = {}
        #: Version offset carried across evictions, per graph (monotonicity).
        self._version_base: Dict[URIRef, int] = {}
        #: Ordered write buffer: ``(op, shard_id, params)``.
        self._pending: List[Tuple[str, int, Tuple[int, ...]]] = []
        #: Shipped term rows awaiting an ``INSERT OR REPLACE`` flush — filled
        #: only by ``ingest_term_rows(durable=False)`` (lazy replication).
        self._pending_term_replaces: List[Tuple[int, str]] = []
        #: Re-entrant residency-pin depth (evictions paused while > 0).
        self._pin_depth = 0
        self._closed = False
        #: What :meth:`_recover` found and repaired on open (see that method).
        self.recovery: Dict[str, Any] = self._recover()

    def _connect(self) -> sqlite3.Connection:
        # ``isolation_level=None`` turns off the sqlite3 module's implicit
        # transaction management: every commit boundary below is an explicit
        # BEGIN IMMEDIATE / COMMIT, so DDL (shard creation, drops) rides the
        # same journaled transaction as the row writes it belongs with and a
        # crash mid-flush rolls the whole commit back on reopen.
        connection = sqlite3.connect(
            str(self.path), check_same_thread=False, isolation_level=None
        )
        connection.execute("PRAGMA journal_mode=WAL")
        connection.execute("PRAGMA synchronous=NORMAL")
        return connection

    def _ensure_layout(self) -> None:
        self._txn_begin()
        self._connection.execute(
            "CREATE TABLE IF NOT EXISTS graphs ("
            " id INTEGER PRIMARY KEY AUTOINCREMENT,"
            " name TEXT UNIQUE NOT NULL)"
        )
        self._connection.execute(
            "CREATE TABLE IF NOT EXISTS terms ("
            " id INTEGER PRIMARY KEY,"
            " n3 TEXT UNIQUE NOT NULL)"
        )
        self._connection.execute(
            "CREATE TABLE IF NOT EXISTS meta ("
            " key TEXT PRIMARY KEY,"
            " value INTEGER NOT NULL)"
        )
        self._connection.execute(
            "INSERT OR IGNORE INTO meta (key, value) VALUES ('commit_version', 0)"
        )
        self._connection.execute(
            "INSERT OR IGNORE INTO meta (key, value) VALUES ('store_uid', ?)",
            (random.getrandbits(62) or 1,),
        )
        self._txn_commit()

    def _read_meta(self, key: str) -> int:
        return int(
            self._connection.execute(
                "SELECT value FROM meta WHERE key = ?", (key,)
            ).fetchone()[0]
        )

    @property
    def uid(self) -> int:
        """Lineage identity of the database file (stable across flushes)."""
        return self._uid

    def change_baseline(self) -> int:
        return self._change_baseline

    # ----------------------------------------------------------------- graphs
    def graph_names(self) -> List[URIRef]:
        return list(self._shards.keys())

    def get_index(self, graph: URIRef) -> Optional[GraphIndex]:
        index = self._indexes.get(graph)
        if index is None:
            with self._db_lock:
                # Re-check under the lock: another reader may have loaded
                # the shard while this thread waited.
                index = self._indexes.get(graph)
                if index is None:
                    shard_id = self._shards.get(graph)
                    if shard_id is None:
                        return None
                    index = self._load_shard(graph, shard_id)
        else:
            self._touch(graph)
        return index

    def ensure_index(self, graph: URIRef) -> GraphIndex:
        index = self.get_index(graph)
        if index is None:
            # Publish the catalog/index entries under the same lock as the
            # DDL so a concurrent reader can never see the shard id without
            # its table (or vice versa).  Inside a batch the DDL rides the
            # batch transaction (sqlite DDL is transactional), so a rollback
            # removes the catalog row and the shard table together.
            with self._db_lock:
                self._ensure_shard(graph)
                index = self._indexes[graph] = GraphIndex(self.dictionary)
            self._enforce_residency(keep=graph)
        return index

    def _ensure_shard(self, graph: URIRef) -> int:
        """Create the catalog row + shard table for ``graph`` if missing.

        Caller must hold ``_db_lock``.  Returns the shard id either way.
        """
        shard_id = self._shards.get(graph)
        if shard_id is None:
            with self._autocommit():
                cursor = self._execute_retry(
                    "INSERT INTO graphs (name) VALUES (?)", (str(graph),)
                )
                shard_id = int(cursor.lastrowid)
                self._create_shard_table(shard_id)
            self._shards[graph] = shard_id
            if self._in_batch:
                self._batch_created[graph] = shard_id
        return shard_id

    def drop_graph(self, graph: URIRef) -> bool:
        with self._db_lock:
            shard_id = self._shards.pop(graph, None)
            if shard_id is None:
                return False
            self._indexes.pop(graph, None)
            # Buffered writes against the shard are moot once the table is
            # gone; rebuilding the buffer under the lock keeps a concurrent
            # reader-triggered flush from re-running ops it already drained.
            self._pending = [op for op in self._pending if op[1] != shard_id]
            with self._autocommit():
                self._flush_term_rows()
                self._connection.execute(f"DROP TABLE IF EXISTS quads_{shard_id}")
                self._connection.execute(
                    "DELETE FROM graphs WHERE id = ?", (shard_id,)
                )
        return True

    def items(self) -> Iterable[Tuple[URIRef, GraphIndex]]:
        """All ``(name, index)`` pairs — a full-store scan.

        The scan runs under a residency pin so enforcement cannot evict
        shards loaded earlier in this very call; the cap re-applies when the
        pin releases.  (The returned list necessarily references every index
        at once; cross-graph scans are inherently at odds with a residency
        cap, which pays off for graph-scoped access.  Query engines should
        hold :meth:`pin_residency` across a whole evaluation so repeated
        scans load each missing shard only once.)
        """
        self.pin_residency()
        try:
            return [(graph, self.get_index(graph)) for graph in self.graph_names()]
        finally:
            self.unpin_residency()

    def triple_count(self, graph: URIRef) -> int:
        index = self._indexes.get(graph)
        if index is not None:
            return len(index.triples)
        shard_id = self._shards.get(graph)
        if shard_id is None:
            return 0
        with self._db_lock:
            self.flush()
            row = self._connection.execute(
                f"SELECT COUNT(*) FROM quads_{shard_id}"
            ).fetchone()
        return int(row[0])

    # ------------------------------------------------------ persistence hooks
    def quad_added(self, graph: URIRef, triple: IdTriple) -> None:
        self._queue("insert", self._shards[graph], triple)

    def quad_removed(self, graph: URIRef, triple: IdTriple) -> None:
        self._queue("delete", self._shards[graph], triple)

    def predicate_removed(self, graph: URIRef, predicate_id: int) -> None:
        shard_id = self._shards.get(graph)
        if shard_id is not None:
            self._queue("delete_predicate", shard_id, (predicate_id,))

    def delete_predicate_unloaded(self, graph: URIRef, predicate_id: int) -> Optional[int]:
        if graph in self._indexes:
            return None
        shard_id = self._shards.get(graph)
        if shard_id is None:
            return 0
        # Resident writes are ordered through the pending buffer; an
        # unloaded shard has none, but flush anyway so the delete cannot
        # overtake queued ops from other shards sharing the connection.
        with self._db_lock:
            self.flush()
            with self._autocommit():
                cursor = self._execute_retry(
                    self._STATEMENTS["delete_predicate"].format(shard=shard_id),
                    (predicate_id,),
                )
        removed = int(cursor.rowcount)
        if removed:
            # The mutation happened while no index was resident; advance the
            # version floor so the next reload cannot repeat a version a
            # reader observed before the shard was evicted (a graph shrinking
            # by N and reloading would otherwise land exactly on its old
            # counter, keeping version-keyed caches stale).
            self._version_base[graph] = self._version_base.get(graph, 0) + removed
        return removed

    def flush(self) -> None:
        with self._db_lock:
            if self._closed:
                # A crashed/closed backend buffers nothing; nothing to lose.
                return
            dirty = (
                bool(self._pending)
                or bool(self._pending_term_replaces)
                or self.dictionary.has_pending()
                or self._meta_dirty()
            )
            if not dirty:
                return
            if self._in_batch:
                # Ride the open batch transaction; commit_batch owns the
                # COMMIT (and the meta marker) so a mid-batch flush — e.g.
                # the buffer hitting ``flush_threshold`` — stays atomic with
                # the rest of the batch.
                self._flush_rows()
            else:
                with self._autocommit():
                    self._flush_rows()
                    self._write_meta()

    def pending_mark(self) -> Tuple[int, int]:
        """Write-buffer positions for :meth:`discard_pending`.

        Only meaningful while nothing between mark and discard reorders the
        buffers — ``drop_graph`` purges matching ops in place, so lazy
        replication must route deltas containing drops (or full dumps)
        through the durable batch path instead.
        """
        with self._db_lock:
            return (len(self._pending), len(self._pending_term_replaces))

    def discard_pending(self, mark: Tuple[int, int]) -> None:
        """Drop buffered ops and term rows queued since :meth:`pending_mark`.

        The lazy-replication failure path: a torn apply's ops vanish from
        the buffers instead of rolling back through sqlite.  If a threshold
        flush already pushed some of them out, they stay durable — harmless,
        because replication ops are idempotent and the durable meta version
        is still conservative, so the retry replays over them.
        """
        with self._db_lock:
            del self._pending[mark[0]:]
            del self._pending_term_replaces[mark[1]:]

    def _flush_rows(self) -> None:
        """Write buffered term and quad rows (no transaction control)."""
        if self._pending_term_replaces:
            # Shipped rows first, and with REPLACE: they are authoritative
            # for their ids even over a previously-flushed local stray.
            rows, self._pending_term_replaces = self._pending_term_replaces, []
            self._executemany_retry(
                "INSERT OR REPLACE INTO terms (id, n3) VALUES (?, ?)", rows
            )
        self._flush_term_rows()
        if self._pending:
            pending, self._pending = self._pending, []
            position = 0
            while position < len(pending):
                op, shard_id, _ = pending[position]
                batch_end = position
                while (
                    batch_end < len(pending)
                    and pending[batch_end][0] == op
                    and pending[batch_end][1] == shard_id
                ):
                    batch_end += 1
                rows = [params for _, _, params in pending[position:batch_end]]
                self._executemany_retry(
                    self._STATEMENTS[op].format(shard=shard_id), rows
                )
                position = batch_end

    def close(self) -> None:
        with self._db_lock:
            if self._closed:
                return
            self.flush()
            self._connection.close()
            self._closed = True

    # ------------------------------------------------------------ transactions
    def begin_batch(self) -> None:
        with self._db_lock:
            # Writes buffered *before* the batch belong to earlier commits;
            # flush them in their own committed transaction first so rolling
            # this batch back cannot take them along.
            self.flush()
            super().begin_batch()
            self._shards_snapshot = dict(self._shards)
            self._batch_created = {}
            self._txn_begin()
            self._in_batch = True

    def commit_batch(self, commit_version: int) -> None:
        with self._db_lock:
            self._noted_version = commit_version
            self._flush_rows()
            self._write_meta()
            self._txn_commit()
            self._in_batch = False
            self._batch_created = {}
            self._shards_snapshot = None

    def rollback_batch(self) -> None:
        with self._db_lock:
            if not self._in_batch:
                return
            self._in_batch = False
            self._pending.clear()
            self.dictionary.rollback_to(self._dictionary_mark)
            if not self._closed:
                try:
                    self._connection.execute("ROLLBACK")
                except sqlite3.OperationalError:
                    # No transaction open — an injected "crash" already tore
                    # it down; the journal rollback happens on reopen.
                    pass
            for graph in self._batch_created:
                # Discard indexes of graphs created by the aborted batch —
                # unless the graph pre-existed (drop-then-recreate), in which
                # case undo replay restored the pre-batch index and it must
                # stay resident.
                if self._shards_snapshot is None or graph not in self._shards_snapshot:
                    self._indexes.pop(graph, None)
            if self._shards_snapshot is not None:
                self._shards = dict(self._shards_snapshot)
            self._batch_created = {}
            self._shards_snapshot = None
            self._noted_version = None

    def resident_index(self, graph: URIRef) -> Optional[GraphIndex]:
        index = self._indexes.get(graph)
        if index is not None:
            self._touch(graph)
        return index

    def drop_graph_for_undo(self, graph: URIRef) -> Optional[Tuple[int, Optional[GraphIndex]]]:
        with self._db_lock:
            shard_id = self._shards.get(graph)
            if shard_id is None:
                return None
            index = self._indexes.get(graph)
            self.drop_graph(graph)
            return (shard_id, index)

    def restore_graph(self, graph: URIRef, token: Tuple[int, Optional[GraphIndex]]) -> None:
        shard_id, index = token
        with self._db_lock:
            # The sqlite ROLLBACK resurrects the shard table and catalog row;
            # only the in-memory mappings need reinstating here.
            self._shards[graph] = shard_id
            if index is not None:
                self._indexes[graph] = index

    def committed_version(self) -> int:
        return self._durable_version

    def note_commit_version(self, commit_version: int) -> None:
        self._noted_version = commit_version

    # ------------------------------------------------------------- replication
    def shard_files(self) -> Dict[str, str]:
        """``graph name -> shard table name`` for snapshot shipping.

        The mapping is the inspection surface replication tooling uses
        instead of reaching into ``_shards``; shard tables all live inside
        the single database file at :attr:`path`.
        """
        with self._db_lock:
            return {
                str(graph): f"quads_{shard_id}"
                for graph, shard_id in self._shards.items()
            }

    def ingest_term_rows(self, rows: List[Tuple[int, str]], durable: bool = True) -> None:
        """Adopt shipped dictionary rows ``(id, n3)`` verbatim.

        Ids are assigned by the replication *source*; ``INSERT OR REPLACE``
        self-heals any stray local row occupying a shipped id (the caller
        rolls back locally-interned strays first, so a conflict can only be
        a re-ship of an identical row).  ``durable=False`` parks the rows in
        a replace-buffer drained by the next flush instead of writing sqlite
        now — the lazy-replication path.  They cannot ride the dictionary's
        own pending queue: that flushes with ``INSERT OR IGNORE``, which
        would let a previously-flushed stray shadow a shipped row forever.
        """
        if not rows:
            return
        with self._db_lock:
            self.dictionary.load_rows(rows)
            if durable:
                with self._autocommit():
                    self._executemany_retry(
                        "INSERT OR REPLACE INTO terms (id, n3) VALUES (?, ?)", rows
                    )
            else:
                self._pending_term_replaces.extend(rows)

    def replace_shard(self, graph: URIRef, rows: List[Tuple[int, int, int]]) -> None:
        """Overwrite ``graph``'s shard with exactly ``rows`` (id triples).

        The full-snapshot replication path: used when a delta log cannot
        bridge the follower's version.  The resident index (if any) is
        invalidated, not patched — the next reader rebuilds it lazily from
        the shard, which is the cheap "lazy ``GraphIndex`` rebuild" the
        serving tier relies on.
        """
        with self._db_lock:
            shard_id = self._ensure_shard(graph)
            # Buffered local writes against the shard are superseded by the
            # authoritative row set.
            self._pending = [op for op in self._pending if op[1] != shard_id]
            with self._autocommit():
                self._execute_retry(f"DELETE FROM quads_{shard_id}")
                if rows:
                    self._executemany_retry(
                        self._STATEMENTS["insert"].format(shard=shard_id), rows
                    )
            self.invalidate_resident(graph)

    def apply_row_delta(
        self,
        graph: URIRef,
        added: List[Tuple[int, int, int]],
        removed: List[Tuple[int, int, int]],
    ) -> None:
        """Apply a shipped per-commit row delta to ``graph``.

        A resident index is patched in place (and only genuinely-new /
        genuinely-present rows are queued, keeping its row count exact); a
        non-resident shard takes the whole delta straight into the write
        buffer — ``INSERT OR IGNORE`` / ``DELETE`` are idempotent, so
        re-shipped rows are harmless.
        """
        with self._db_lock:
            shard_id = self._ensure_shard(graph)
            index = self._indexes.get(graph)
            if index is not None:
                for row in removed:
                    if index.remove(row):
                        self._queue("delete", shard_id, row)
                for row in index.add_many(added):
                    self._queue("insert", shard_id, row)
            else:
                for row in removed:
                    self._queue("delete", shard_id, row)
                for row in added:
                    self._queue("insert", shard_id, row)

    def invalidate_resident(self, graph: URIRef) -> None:
        """Drop ``graph``'s resident index so the next reader rebuilds it.

        The version base is bumped past the dropped index's counter so the
        rebuilt index resumes *above* it — version-keyed caches keyed on
        ``GraphIndex.version`` can never see a stale counter.
        """
        with self._db_lock:
            index = self._indexes.pop(graph, None)
            if index is not None:
                self._version_base[graph] = index.version + 1

    def checkpoint(self) -> None:
        """Fold the WAL back into the main database file (best effort).

        ``KGGovernor.save`` calls this after a flush so a bare file copy of
        the database is complete without the ``-wal`` sidecar.
        """
        with self._db_lock:
            if self._closed or self._in_batch:
                return
            try:
                self._connection.execute("PRAGMA wal_checkpoint(TRUNCATE)")
            except sqlite3.Error:
                pass

    def reopen(self, changed_graphs: Optional[Iterable[URIRef]] = None) -> Dict[str, Any]:
        """Re-read a database file replaced underneath this backend in place.

        The replica refresh path: after new snapshot bytes land at
        :attr:`path` (an atomic file replace), ``reopen`` picks up the new
        inode with a fresh connection and splices the new state in without
        a cold restart.  When the file shares this backend's lineage
        (``store_uid`` matches), the interned term dictionary is *reused* —
        only rows at or above its watermark are loaded — and only
        ``changed_graphs`` (``None`` = all) lose their resident indexes.  A
        foreign uid forces a full dictionary reload and drops everything
        resident.

        Requires a clean backend: no buffered writes, no open batch.
        Returns a small info dict for logging/tests.
        """
        with self._db_lock:
            if self._in_batch:
                raise RuntimeError("cannot reopen mid-batch")
            if self._pending or self.dictionary.has_pending():
                raise RuntimeError("cannot reopen with unflushed writes")
            if not self._closed:
                try:
                    self._connection.close()
                except sqlite3.Error:
                    pass
            self._closed = False
            self._crashed = False
            self._connection = self._connect()
            self._ensure_layout()
            new_uid = self._read_meta("store_uid")
            same_lineage = new_uid == self._uid
            if same_lineage:
                self.dictionary.load_rows(
                    self._connection.execute(
                        "SELECT id, n3 FROM terms WHERE id >= ?",
                        (self.dictionary.next_id,),
                    )
                )
                if changed_graphs is None:
                    invalidate = set(self._indexes)
                else:
                    invalidate = {URIRef(str(g)) for g in changed_graphs}
            else:
                self._uid = new_uid
                self.dictionary = PersistentTermDictionary()
                self.dictionary.load_rows(
                    self._connection.execute("SELECT id, n3 FROM terms")
                )
                invalidate = set(self._indexes)
            old_shards = self._shards
            self._shards = {
                URIRef(name): shard_id
                for shard_id, name in self._connection.execute(
                    "SELECT id, name FROM graphs ORDER BY id"
                )
            }
            # A graph whose shard id changed (drop + recreate) or vanished
            # is stale regardless of what the caller reported.
            for graph in list(self._indexes):
                if self._shards.get(graph) != old_shards.get(graph):
                    invalidate.add(graph)
            for graph in invalidate:
                self.invalidate_resident(graph)
            old_durable = self._durable_version
            self._durable_version = self._read_meta("commit_version")
            self._noted_version = None
            # The new file's changes are indistinguishable from baseline;
            # never move the baseline backwards (stale copies must still
            # over-report, not under-report).
            self._change_baseline = max(self._change_baseline, self._durable_version)
            return {
                "same_lineage": same_lineage,
                "invalidated": sorted(str(g) for g in invalidate),
                "durable_version": self._durable_version,
                "previous_version": old_durable,
            }

    def crash(self) -> None:
        """Simulate abrupt process death (fault-injection hook).

        Buffered writes are dropped and the connection is severed with the
        current transaction uncommitted — exactly what a ``kill -9`` would
        leave behind.  Reopening the path recovers to the last committed
        ``commit_version`` via the sqlite journal.
        """
        with self._db_lock:
            if self._closed:
                return
            self._pending.clear()
            self._pending_term_replaces.clear()
            try:
                self._connection.close()
            except sqlite3.Error:
                pass
            self._closed = True
            self._crashed = True

    def _meta_dirty(self) -> bool:
        return (
            self._noted_version is not None
            and self._noted_version != self._durable_version
        )

    def _write_meta(self) -> None:
        """Stamp the commit-version marker (inside the caller's transaction)."""
        if not self._meta_dirty():
            return
        self._connection.execute(
            "UPDATE meta SET value = ? WHERE key = 'commit_version'",
            (self._noted_version,),
        )
        self._durable_version = self._noted_version

    def _txn_begin(self) -> None:
        # IMMEDIATE takes the write lock up front so a later writer conflict
        # surfaces here (where the bounded retry handles it) rather than at
        # COMMIT, where rolling back would lose the batch.
        self._execute_retry("BEGIN IMMEDIATE")

    def _txn_commit(self) -> None:
        self._execute_retry("COMMIT")

    def _txn_rollback(self) -> None:
        try:
            self._connection.execute("ROLLBACK")
        except sqlite3.OperationalError:
            pass

    #: Bounded-backoff policy for transient ``database is locked`` errors.
    lock_retries = 6
    lock_retry_delay = 0.01

    def _execute_retry(self, sql: str, params: Tuple = ()) -> sqlite3.Cursor:
        """``execute`` with bounded backoff on transient lock contention.

        WAL mode plus the internal connection lock makes contention rare,
        but an external process holding the database (e.g. a snapshot copy
        or a second governor) surfaces as ``database is locked`` /
        ``database is busy`` — transient conditions worth a few short sleeps
        before giving up.
        """
        delay = self.lock_retry_delay
        for attempt in range(self.lock_retries):
            try:
                return self._connection.execute(sql, params)
            except sqlite3.OperationalError as error:
                message = str(error).lower()
                if "locked" not in message and "busy" not in message:
                    raise
                if attempt == self.lock_retries - 1:
                    raise
                time.sleep(delay)
                delay = min(delay * 2, 0.25)
        raise AssertionError("unreachable")

    def _executemany_retry(self, sql: str, rows: List[Tuple]) -> sqlite3.Cursor:
        delay = self.lock_retry_delay
        for attempt in range(self.lock_retries):
            try:
                return self._connection.executemany(sql, rows)
            except sqlite3.OperationalError as error:
                message = str(error).lower()
                if "locked" not in message and "busy" not in message:
                    raise
                if attempt == self.lock_retries - 1:
                    raise
                time.sleep(delay)
                delay = min(delay * 2, 0.25)
        raise AssertionError("unreachable")

    @contextmanager
    def _autocommit(self):
        """One explicit transaction — unless a batch transaction is open.

        Inside a batch the statements simply ride the batch's transaction
        (committed or rolled back wholesale by ``commit_batch`` /
        ``rollback_batch``); outside one they get their own journaled
        BEGIN IMMEDIATE / COMMIT.
        """
        if self._in_batch:
            yield
            return
        self._txn_begin()
        try:
            yield
        except BaseException:
            self._txn_rollback()
            raise
        else:
            self._txn_commit()

    def _recover(self) -> Dict[str, Any]:
        """Verify the on-disk layout against the committed marker on open.

        With journaled transactions a crash cannot tear a commit, but a
        database written by older code (or meddled with externally) may hold
        catalog rows without shard tables or orphan shard tables without
        catalog rows.  Both are discarded — the catalog is the source of
        truth for what the last commit contained.
        """
        existing = {
            name
            for (name,) in self._connection.execute(
                "SELECT name FROM sqlite_master"
                " WHERE type = 'table' AND name LIKE 'quads_%'"
            )
        }
        torn = [
            graph
            for graph, shard_id in self._shards.items()
            if f"quads_{shard_id}" not in existing
        ]
        catalog = {f"quads_{shard_id}" for shard_id in self._shards.values()}
        orphans = sorted(existing - catalog)
        if torn or orphans:
            with self._db_lock, self._autocommit():
                for graph in torn:
                    shard_id = self._shards.pop(graph)
                    self._connection.execute(
                        "DELETE FROM graphs WHERE id = ?", (shard_id,)
                    )
                for table in orphans:
                    self._connection.execute(f"DROP TABLE IF EXISTS {table}")
        return {
            "commit_version": self._durable_version,
            "discarded_shards": [str(graph) for graph in torn],
            "dropped_orphan_tables": orphans,
        }

    # -------------------------------------------------------------- internals
    _STATEMENTS = {
        "insert": "INSERT OR IGNORE INTO quads_{shard} (s, p, o) VALUES (?, ?, ?)",
        "delete": "DELETE FROM quads_{shard} WHERE s = ? AND p = ? AND o = ?",
        "delete_predicate": "DELETE FROM quads_{shard} WHERE p = ?",
    }

    def _create_shard_table(self, shard_id: int) -> None:
        self._connection.execute(
            f"CREATE TABLE IF NOT EXISTS quads_{shard_id} ("
            " s INTEGER NOT NULL,"
            " p INTEGER NOT NULL,"
            " o INTEGER NOT NULL,"
            " PRIMARY KEY (s, p, o)"
            ") WITHOUT ROWID"
        )
        self._connection.execute(
            f"CREATE INDEX IF NOT EXISTS quads_{shard_id}_predicate"
            f" ON quads_{shard_id} (p)"
        )

    def _flush_term_rows(self) -> bool:
        """Persist newly interned dictionary rows (always ahead of quad rows).

        No transaction control: the caller owns the commit boundary."""
        with self._db_lock:
            rows = self.dictionary.drain_pending()
            if not rows:
                return False
            self._executemany_retry(
                "INSERT OR IGNORE INTO terms (id, n3) VALUES (?, ?)", rows
            )
        return True

    def _queue(self, op: str, shard_id: int, params: Tuple[int, ...]) -> None:
        self._pending.append((op, shard_id, params))
        if len(self._pending) >= self.flush_threshold:
            self.flush()

    def pin_residency(self) -> None:
        with self._db_lock:
            self._pin_depth += 1

    def unpin_residency(self) -> None:
        with self._db_lock:
            self._pin_depth -= 1
            if self._pin_depth <= 0:
                self._pin_depth = 0
                if self._indexes:
                    self._enforce_residency(keep=next(reversed(self._indexes)))

    def _touch(self, graph: URIRef) -> None:
        """Mark a resident graph as most recently used (O(1)).

        Concurrent readers may touch the same graph at once (the store gate
        admits shared readers); the pop/reinsert pair runs under the backend
        lock so two touches cannot race each other (or an eviction) into a
        ``KeyError``.
        """
        if self.max_resident_graphs is None:
            return
        with self._db_lock:
            index = self._indexes.pop(graph, None)
            if index is not None:
                self._indexes[graph] = index

    def _enforce_residency(self, keep: URIRef) -> None:
        """Evict least-recently-used indexes beyond ``max_resident_graphs``.

        The write-through flush runs once before the first eviction, making
        every resident index clean; eviction then just drops the dict entry.
        ``keep`` (the graph being loaded) is never evicted, so a cap of 1
        still works.
        """
        cap = self.max_resident_graphs
        if cap is None:
            return
        with self._db_lock:
            if self._pin_depth > 0 or len(self._indexes) <= cap:
                return
            self.flush()
            for graph in list(self._indexes):
                if len(self._indexes) <= cap:
                    break
                if graph == keep:
                    continue
                index = self._indexes.pop(graph)
                # ``index.version`` is absolute (the load already folded any
                # earlier base in), so it becomes the next reload's floor.
                self._version_base[graph] = index.version
                self.shard_evictions += 1

    def _load_shard(self, graph: URIRef, shard_id: int) -> GraphIndex:
        """Rebuild a graph's index (stats and quoted indexes included) from disk.

        A pure integer scan: the shard rows are already id-triples, and the
        quoted-triple structure comes from the shared dictionary (parsed
        lazily, only for ids whose text is a quoted term).
        """
        # Writes require a loaded index, so a lazily-loaded shard normally has
        # no buffered ops — flush anyway so the read below is complete.
        index = GraphIndex(self.dictionary)
        add = index.add
        with self._db_lock:
            self.flush()
            for row in self._connection.execute(f"SELECT s, p, o FROM quads_{shard_id}"):
                add(row)
        # Resume the mutation counter above any pre-eviction value so
        # version-keyed reader caches cannot mistake a reload for no change.
        index.version += self._version_base.get(graph, 0)
        self._indexes[graph] = index
        self.shard_loads += 1
        self._enforce_residency(keep=graph)
        return index
