"""Pluggable quad-store backends: where the LiDS graph's quads live durably.

:class:`QuadStore` delegates all graph management to a
:class:`QuadStoreBackend`.  Every backend hands out the same
:class:`~repro.rdf.graph_index.GraphIndex` structure for matching, so pattern
semantics, cardinality statistics and therefore SPARQL ``explain()`` plans
are identical across backends — backends differ only in durability:

* :class:`InMemoryBackend` — the seed behaviour: graphs live in a plain dict
  and die with the process.
* :class:`SqliteBackend` — quads are sharded into one sqlite table per named
  graph (the LiDS layout: one graph per pipeline plus the dataset / library /
  ontology graphs).  Writes are buffered and flushed in batches; on open, a
  graph's index — including its per-predicate statistics and partial
  quoted-triple indexes — is rebuilt lazily the first time the graph is
  touched, so reopening a governed lake never pays for graphs a query does
  not read.

Terms are persisted in their N-Triples text form (``term_n3``) and parsed
back with :func:`repro.rdf.terms.parse_term`; plain Python values that the
in-memory backend would keep raw are therefore normalized to
:class:`~repro.rdf.terms.Literal` objects on reload — and two in-memory
triples whose terms differ only in that respect (``"5"`` vs
``Literal("5")``) alias to the *same* durable row, so removing one removes
the shared row.  The product layers always write proper term objects; mixed
raw/term graphs should stay on the in-memory backend.
"""

from __future__ import annotations

import sqlite3
from abc import ABC, abstractmethod
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Tuple, Union

from repro.rdf.graph_index import GraphIndex
from repro.rdf.terms import Triple, URIRef, parse_term, term_n3

PathLike = Union[str, Path]


class QuadStoreBackend(ABC):
    """Storage backend protocol behind :class:`~repro.rdf.store.QuadStore`.

    The reader side hands out :class:`GraphIndex` objects (``get_index`` /
    ``ensure_index`` / ``items``); the writer side receives persistence hooks
    *after* the in-memory index has been updated (``quad_added`` etc.), so a
    non-durable backend can ignore them entirely.
    """

    #: Whether this backend survives process restarts.
    persistent: bool = False

    # ----------------------------------------------------------------- graphs
    @abstractmethod
    def graph_names(self) -> List[URIRef]:
        """Names of all graphs currently holding triples (no index loads)."""

    @abstractmethod
    def get_index(self, graph: URIRef) -> Optional[GraphIndex]:
        """The graph's index, loading it if necessary; ``None`` when absent."""

    @abstractmethod
    def ensure_index(self, graph: URIRef) -> GraphIndex:
        """The graph's index, creating the graph when absent."""

    @abstractmethod
    def drop_graph(self, graph: URIRef) -> bool:
        """Drop a whole named graph (a backend-level retraction primitive)."""

    @abstractmethod
    def items(self) -> Iterable[Tuple[URIRef, GraphIndex]]:
        """``(name, index)`` for every graph (loads all lazily-stored graphs)."""

    def triple_count(self, graph: URIRef) -> int:
        """Number of triples in one graph, without forcing an index load."""
        index = self.get_index(graph)
        return len(index.triples) if index is not None else 0

    # ------------------------------------------------------ persistence hooks
    def quad_added(self, graph: URIRef, triple: Triple) -> None:
        """Called after a triple was inserted into the graph's index."""

    def quad_removed(self, graph: URIRef, triple: Triple) -> None:
        """Called after a triple was removed from the graph's index."""

    def predicate_removed(self, graph: URIRef, predicate: Any) -> None:
        """Called after all triples with ``predicate`` left the graph's index.

        Durable backends translate this into one predicate-scoped delete
        instead of per-triple deletes — the cheap path for bulk schema
        retractions (e.g. dropping a similarity-edge type lake-wide).
        """

    def delete_predicate_unloaded(self, graph: URIRef, predicate: Any) -> Optional[int]:
        """Predicate-scoped delete on a graph whose index is *not* resident.

        Returns the number of triples removed when the backend could retract
        directly in durable storage (sparing the index load), or ``None``
        when the graph's index is resident (or the backend is volatile) and
        the caller must retract through the index as usual.
        """
        return None

    def flush(self) -> None:
        """Make all buffered writes durable (no-op for volatile backends)."""

    def close(self) -> None:
        """Release any resources; the backend must not be used afterwards."""


class InMemoryBackend(QuadStoreBackend):
    """The seed storage: a dict of :class:`GraphIndex` per named graph."""

    persistent = False

    def __init__(self):
        self._graphs: Dict[URIRef, GraphIndex] = {}

    def graph_names(self) -> List[URIRef]:
        return list(self._graphs.keys())

    def get_index(self, graph: URIRef) -> Optional[GraphIndex]:
        return self._graphs.get(graph)

    def ensure_index(self, graph: URIRef) -> GraphIndex:
        index = self._graphs.get(graph)
        if index is None:
            index = self._graphs[graph] = GraphIndex()
        return index

    def drop_graph(self, graph: URIRef) -> bool:
        return self._graphs.pop(graph, None) is not None

    def items(self) -> Iterable[Tuple[URIRef, GraphIndex]]:
        return list(self._graphs.items())


class SqliteBackend(QuadStoreBackend):
    """A sqlite-backed quad store with one shard table per named graph.

    Layout: a ``graphs`` catalog table maps graph names to shard ids; shard
    ``quads_<id>`` holds that graph's triples as three N-Triples text columns
    with a ``(subject, predicate, object)`` primary key plus a predicate
    index (for predicate-scoped deletes).  All matching still runs on the
    shared :class:`GraphIndex`, rebuilt lazily per graph on first touch — the
    cardinality statistics and partial quoted-triple indexes are rebuilt as
    part of that load, so the SPARQL planner sees exactly the statistics the
    in-memory backend would.

    Writes are buffered (insert/delete order preserved) and flushed every
    ``flush_threshold`` operations, on :meth:`flush` and on :meth:`close`.
    """

    persistent = True

    def __init__(self, path: PathLike, flush_threshold: int = 8192):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.flush_threshold = flush_threshold
        self._connection = sqlite3.connect(str(self.path))
        self._connection.execute("PRAGMA journal_mode=WAL")
        self._connection.execute("PRAGMA synchronous=NORMAL")
        self._connection.execute(
            "CREATE TABLE IF NOT EXISTS graphs ("
            " id INTEGER PRIMARY KEY AUTOINCREMENT,"
            " name TEXT UNIQUE NOT NULL)"
        )
        self._connection.commit()
        #: graph name -> shard id, in catalog order (deterministic reopen).
        self._shards: Dict[URIRef, int] = {
            URIRef(name): shard_id
            for shard_id, name in self._connection.execute(
                "SELECT id, name FROM graphs ORDER BY id"
            )
        }
        #: Lazily loaded per-graph indexes (a loaded graph stays resident).
        self._indexes: Dict[URIRef, GraphIndex] = {}
        #: Ordered write buffer: ``(op, shard_id, params)``.
        self._pending: List[Tuple[str, int, Tuple[str, ...]]] = []
        self._closed = False

    # ----------------------------------------------------------------- graphs
    def graph_names(self) -> List[URIRef]:
        return list(self._shards.keys())

    def get_index(self, graph: URIRef) -> Optional[GraphIndex]:
        index = self._indexes.get(graph)
        if index is None:
            shard_id = self._shards.get(graph)
            if shard_id is None:
                return None
            index = self._load_shard(graph, shard_id)
        return index

    def ensure_index(self, graph: URIRef) -> GraphIndex:
        index = self.get_index(graph)
        if index is None:
            cursor = self._connection.execute(
                "INSERT INTO graphs (name) VALUES (?)", (str(graph),)
            )
            shard_id = int(cursor.lastrowid)
            self._create_shard_table(shard_id)
            self._connection.commit()
            self._shards[graph] = shard_id
            index = self._indexes[graph] = GraphIndex()
        return index

    def drop_graph(self, graph: URIRef) -> bool:
        shard_id = self._shards.pop(graph, None)
        if shard_id is None:
            return False
        self._indexes.pop(graph, None)
        # Buffered writes against the shard are moot once the table is gone.
        self._pending = [op for op in self._pending if op[1] != shard_id]
        self._connection.execute(f"DROP TABLE IF EXISTS quads_{shard_id}")
        self._connection.execute("DELETE FROM graphs WHERE id = ?", (shard_id,))
        self._connection.commit()
        return True

    def items(self) -> Iterable[Tuple[URIRef, GraphIndex]]:
        return [(graph, self.get_index(graph)) for graph in self.graph_names()]

    def triple_count(self, graph: URIRef) -> int:
        index = self._indexes.get(graph)
        if index is not None:
            return len(index.triples)
        shard_id = self._shards.get(graph)
        if shard_id is None:
            return 0
        self.flush()
        row = self._connection.execute(
            f"SELECT COUNT(*) FROM quads_{shard_id}"
        ).fetchone()
        return int(row[0])

    # ------------------------------------------------------ persistence hooks
    def quad_added(self, graph: URIRef, triple: Triple) -> None:
        self._queue("insert", self._shards[graph], self._row(triple))

    def quad_removed(self, graph: URIRef, triple: Triple) -> None:
        self._queue("delete", self._shards[graph], self._row(triple))

    def predicate_removed(self, graph: URIRef, predicate: Any) -> None:
        shard_id = self._shards.get(graph)
        if shard_id is not None:
            self._queue("delete_predicate", shard_id, (term_n3(predicate),))

    def delete_predicate_unloaded(self, graph: URIRef, predicate: Any) -> Optional[int]:
        if graph in self._indexes:
            return None
        shard_id = self._shards.get(graph)
        if shard_id is None:
            return 0
        # Resident writes are ordered through the pending buffer; an
        # unloaded shard has none, but flush anyway so the delete cannot
        # overtake queued ops from other shards sharing the connection.
        self.flush()
        cursor = self._connection.execute(
            self._STATEMENTS["delete_predicate"].format(shard=shard_id),
            (term_n3(predicate),),
        )
        self._connection.commit()
        return int(cursor.rowcount)

    def flush(self) -> None:
        if not self._pending:
            return
        pending, self._pending = self._pending, []
        position = 0
        while position < len(pending):
            op, shard_id, _ = pending[position]
            batch_end = position
            while (
                batch_end < len(pending)
                and pending[batch_end][0] == op
                and pending[batch_end][1] == shard_id
            ):
                batch_end += 1
            rows = [params for _, _, params in pending[position:batch_end]]
            self._connection.executemany(self._STATEMENTS[op].format(shard=shard_id), rows)
            position = batch_end
        self._connection.commit()

    def close(self) -> None:
        if self._closed:
            return
        self.flush()
        self._connection.close()
        self._closed = True

    # -------------------------------------------------------------- internals
    _STATEMENTS = {
        "insert": (
            "INSERT OR IGNORE INTO quads_{shard} (subject, predicate, object)"
            " VALUES (?, ?, ?)"
        ),
        "delete": (
            "DELETE FROM quads_{shard}"
            " WHERE subject = ? AND predicate = ? AND object = ?"
        ),
        "delete_predicate": "DELETE FROM quads_{shard} WHERE predicate = ?",
    }

    def _create_shard_table(self, shard_id: int) -> None:
        self._connection.execute(
            f"CREATE TABLE IF NOT EXISTS quads_{shard_id} ("
            " subject TEXT NOT NULL,"
            " predicate TEXT NOT NULL,"
            " object TEXT NOT NULL,"
            " PRIMARY KEY (subject, predicate, object)"
            ") WITHOUT ROWID"
        )
        self._connection.execute(
            f"CREATE INDEX IF NOT EXISTS quads_{shard_id}_predicate"
            f" ON quads_{shard_id} (predicate)"
        )

    @staticmethod
    def _row(triple: Triple) -> Tuple[str, str, str]:
        return (term_n3(triple.subject), term_n3(triple.predicate), term_n3(triple.object))

    def _queue(self, op: str, shard_id: int, params: Tuple[str, ...]) -> None:
        self._pending.append((op, shard_id, params))
        if len(self._pending) >= self.flush_threshold:
            self.flush()

    def _load_shard(self, graph: URIRef, shard_id: int) -> GraphIndex:
        """Rebuild a graph's index (stats and quoted indexes included) from disk."""
        # Writes require a loaded index, so a lazily-loaded shard normally has
        # no buffered ops — flush anyway so the read below is complete.
        self.flush()
        index = GraphIndex()
        # Terms repeat heavily across rows (predicates, shared subjects), so
        # memoize text -> term within the load.
        cache: Dict[str, Any] = {}

        def cached_term(text: str) -> Any:
            term = cache.get(text)
            if term is None:
                term = cache[text] = parse_term(text)
            return term

        for subject, predicate, obj in self._connection.execute(
            f"SELECT subject, predicate, object FROM quads_{shard_id}"
        ):
            index.add(Triple(cached_term(subject), cached_term(predicate), cached_term(obj)))
        self._indexes[graph] = index
        return index
