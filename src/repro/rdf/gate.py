"""Read/write gating for concurrent access to a :class:`~repro.rdf.QuadStore`.

The governor service ingests on a background scheduler thread while
discovery clients keep querying from their own threads.  Two primitives make
that safe and *consistent*:

* :class:`ReadWriteGate` — a reentrant readers-writer lock.  Any number of
  reader threads share the store; a writer holds it exclusively, so a commit
  batch (one coalesced ingestion micro-batch) becomes atomic with respect to
  readers: a query observes the graph either entirely before or entirely
  after the batch, never a half-applied table.
* :class:`ReadView` — the token handed out by ``QuadStore.read_view()``:
  it records the store's *commit version* at entry, so a reader can detect
  whether any batch committed since (``changed``) and key derived caches on
  a number that only moves on whole committed batches.

Reentrancy rules (all per-thread):

* nested read views just deepen a counter — a query helper may open a view
  while its caller already holds one;
* a thread holding the *write* side may freely open read views (the governor
  queries its own half-written batch, e.g. the linker resolving tables);
* a thread holding only a *read* view must not start a write batch — that
  is an upgrade, the classic readers-writer deadlock, and raises
  immediately instead of deadlocking (the same protection guards the
  governor's submit-and-wait shims, where the deadlock would otherwise hide
  behind the service queue).

Writers take preference: once a writer is waiting, new top-level read views
queue behind it, so a stream of readers cannot starve ingestion.
"""

from __future__ import annotations

import threading
from typing import Optional

__all__ = ["ReadWriteGate", "ReadView"]


class ReadWriteGate:
    """A reentrant readers-writer lock with writer preference."""

    def __init__(self):
        lock = threading.Lock()
        #: Readers wait here until no writer is active or queued.
        self._readers_turn = threading.Condition(lock)
        #: Writers wait here until the store is idle.
        self._writers_turn = threading.Condition(lock)
        #: Number of threads currently inside a top-level read view.
        self._active_readers = 0
        #: Writers blocked in :meth:`acquire_write` (gates new readers).
        self._waiting_writers = 0
        #: Thread ident of the current writer, ``None`` when idle.
        self._writer: Optional[int] = None
        #: Reentrant depth of the writer's nested batches.
        self._writer_depth = 0
        #: Per-thread read-view depth (nested views share one slot).
        self._local = threading.local()

    # ---------------------------------------------------------------- readers
    def read_depth(self) -> int:
        """This thread's read-view nesting depth (0 = not reading)."""
        return getattr(self._local, "depth", 0)

    def acquire_read(self) -> None:
        depth = getattr(self._local, "depth", 0)
        # Nested views, and reads inside this thread's own write batch, are
        # pure counter bumps: the thread already owns sufficient access.
        # (Only this thread can have set ``_writer`` to its own ident, so the
        # unlocked comparison is race-free.)
        if depth or self._writer == threading.get_ident():
            self._local.depth = depth + 1
            return
        with self._readers_turn:
            while self._writer is not None or self._waiting_writers:
                self._readers_turn.wait()
            self._active_readers += 1
        self._local.depth = 1

    def release_read(self) -> None:
        depth = getattr(self._local, "depth", 0)
        if depth <= 0:
            raise RuntimeError("release_read() without a matching acquire_read()")
        self._local.depth = depth - 1
        if depth > 1 or self._writer == threading.get_ident():
            return
        with self._readers_turn:
            self._active_readers -= 1
            if self._active_readers == 0:
                self._writers_turn.notify()

    # ---------------------------------------------------------------- writers
    def write_held(self) -> bool:
        """Whether *this thread* currently holds the write side."""
        return self._writer == threading.get_ident()

    def acquire_write(self) -> int:
        """Take (or deepen) the write side; returns the new nesting depth."""
        me = threading.get_ident()
        if self._writer == me:
            self._writer_depth += 1
            return self._writer_depth
        if getattr(self._local, "depth", 0):
            raise RuntimeError(
                "cannot start a write batch inside a read view: release the "
                "view first (a read-to-write upgrade would deadlock)"
            )
        with self._writers_turn:
            self._waiting_writers += 1
            try:
                while self._writer is not None or self._active_readers:
                    self._writers_turn.wait()
                self._writer = me
                self._writer_depth = 1
            finally:
                self._waiting_writers -= 1
        return 1

    def release_write(self) -> int:
        """Release one write level; returns the remaining depth."""
        if self._writer != threading.get_ident():
            raise RuntimeError("release_write() by a thread that does not hold the gate")
        self._writer_depth -= 1
        remaining = self._writer_depth
        if remaining == 0:
            with self._writers_turn:
                self._writer = None
                if self._waiting_writers:
                    self._writers_turn.notify()
                else:
                    self._readers_turn.notify_all()
        return remaining


class ReadView:
    """A consistent read scope over a store, pinned to a commit version.

    Produced by ``QuadStore.read_view()``; while the view is open no write
    batch can commit, so everything read through it belongs to one store
    state.  ``version`` is the store's commit version at entry — it only
    advances on whole committed batches, making it the right cache key for
    snapshot-derived state.
    """

    __slots__ = ("store", "version")

    def __init__(self, store, version: int):
        self.store = store
        self.version = version

    @property
    def changed(self) -> bool:
        """Whether any batch committed since this view was opened.

        Only meaningful after the view closes (while it is open, writers are
        excluded by construction).
        """
        return self.store.commit_version != self.version

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return f"ReadView(version={self.version})"
