"""N-Triples / N-Quads serialization and parsing for the quad store."""

from __future__ import annotations

from pathlib import Path
from typing import List, Optional, Tuple, Union

from repro.rdf.store import DEFAULT_GRAPH, QuadStore
from repro.rdf.terms import Triple, URIRef, iter_terms, term_n3

PathLike = Union[str, Path]


def serialize_nquads(store: QuadStore) -> str:
    """Serialize the whole store as N-Quads (default-graph triples omit the graph)."""
    lines: List[str] = []
    for graph in store.graphs():
        for triple in store.triples(graph=graph):
            subject = term_n3(triple.subject)
            predicate = term_n3(triple.predicate)
            obj = term_n3(triple.object)
            if graph == DEFAULT_GRAPH:
                lines.append(f"{subject} {predicate} {obj} .")
            else:
                lines.append(f"{subject} {predicate} {obj} {term_n3(graph)} .")
    return "\n".join(sorted(lines)) + ("\n" if lines else "")


def save_nquads(store: QuadStore, path: PathLike) -> Path:
    """Write the store to an ``.nq`` file and return the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(serialize_nquads(store), encoding="utf-8")
    return path


def parse_nquads_line(line: str) -> Optional[Tuple[Triple, URIRef]]:
    """Parse one N-Quads line into ``(triple, graph)``; comments/blank -> ``None``."""
    stripped = line.strip()
    if not stripped or stripped.startswith("#"):
        return None
    if stripped.endswith("."):
        stripped = stripped[:-1].strip()
    terms = list(iter_terms(stripped))
    if len(terms) == 3:
        return Triple(terms[0], terms[1], terms[2]), DEFAULT_GRAPH
    if len(terms) == 4:
        graph = terms[3]
        if not isinstance(graph, URIRef):
            raise ValueError(f"graph name must be a URI: {line!r}")
        return Triple(terms[0], terms[1], terms[2]), graph
    raise ValueError(f"expected 3 or 4 terms, got {len(terms)}: {line!r}")


def parse_nquads(text: str, store: Optional[QuadStore] = None) -> QuadStore:
    """Parse N-Quads text into a (new or provided) quad store."""
    store = store or QuadStore()
    for line in text.splitlines():
        parsed = parse_nquads_line(line)
        if parsed is None:
            continue
        triple, graph = parsed
        store.add(triple.subject, triple.predicate, triple.object, graph=graph)
    return store


def load_nquads(path: PathLike, store: Optional[QuadStore] = None) -> QuadStore:
    """Load an ``.nq`` file into a quad store."""
    return parse_nquads(Path(path).read_text(encoding="utf-8"), store=store)
