"""An in-memory RDF-star quad store (GraphDB substitute).

KGLiDS stores the LiDS graph in GraphDB using the RDF-star model so that
similarity edges can carry prediction scores.  This package provides the term
model (URIs, literals, blank nodes, quoted triples), named-graph quad storage
with pattern-matching indices, and N-Triples/N-Quads serialization.
"""

from repro.rdf.namespace import (
    KGLIDS_DATA,
    KGLIDS_ONTOLOGY,
    KGLIDS_PIPELINE,
    KGLIDS_RESOURCE,
    OWL,
    RDF,
    RDFS,
    XSD,
    Namespace,
)
from repro.rdf.store import DEFAULT_GRAPH, QuadStore
from repro.rdf.terms import BNode, Literal, QuotedTriple, Term, Triple, URIRef

__all__ = [
    "URIRef",
    "Literal",
    "BNode",
    "QuotedTriple",
    "Term",
    "Triple",
    "QuadStore",
    "DEFAULT_GRAPH",
    "Namespace",
    "RDF",
    "RDFS",
    "XSD",
    "OWL",
    "KGLIDS_ONTOLOGY",
    "KGLIDS_RESOURCE",
    "KGLIDS_DATA",
    "KGLIDS_PIPELINE",
]
