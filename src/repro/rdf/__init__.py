"""An RDF-star quad store with pluggable storage backends (GraphDB substitute).

KGLiDS stores the LiDS graph in GraphDB using the RDF-star model so that
similarity edges can carry prediction scores.  This package provides the term
model (URIs, literals, blank nodes, quoted triples), named-graph quad storage
with pattern-matching indices, N-Triples/N-Quads serialization, and two
storage backends behind the :class:`QuadStore` interface:

* ``QuadStore()`` — in-memory (the seed behaviour; dies with the process);
* ``QuadStore.sqlite(path)`` — durable, one sqlite shard per named graph,
  lazily reloaded on open (see :mod:`repro.rdf.backend`).
"""

from repro.rdf.backend import (
    InMemoryBackend,
    PersistentTermDictionary,
    QuadStoreBackend,
    SqliteBackend,
)
from repro.rdf.faults import (
    FaultInjectingBackend,
    FaultPlan,
    InjectedCrash,
    InjectedFault,
)
from repro.rdf.gate import ReadView, ReadWriteGate
from repro.rdf.graph_index import GraphIndex, IdTriple, PredicateStats
from repro.rdf.namespace import (
    KGLIDS_DATA,
    KGLIDS_ONTOLOGY,
    KGLIDS_PIPELINE,
    KGLIDS_RESOURCE,
    OWL,
    RDF,
    RDFS,
    XSD,
    Namespace,
)
from repro.rdf.store import DEFAULT_GRAPH, QuadStore
from repro.rdf.terms import (
    BNode,
    Literal,
    QuotedTriple,
    Term,
    TermDictionary,
    Triple,
    URIRef,
)

__all__ = [
    "URIRef",
    "Literal",
    "BNode",
    "QuotedTriple",
    "Term",
    "Triple",
    "QuadStore",
    "QuadStoreBackend",
    "InMemoryBackend",
    "SqliteBackend",
    "GraphIndex",
    "IdTriple",
    "PredicateStats",
    "ReadWriteGate",
    "ReadView",
    "FaultInjectingBackend",
    "FaultPlan",
    "InjectedFault",
    "InjectedCrash",
    "TermDictionary",
    "PersistentTermDictionary",
    "DEFAULT_GRAPH",
    "Namespace",
    "RDF",
    "RDFS",
    "XSD",
    "OWL",
    "KGLIDS_ONTOLOGY",
    "KGLIDS_RESOURCE",
    "KGLIDS_DATA",
    "KGLIDS_PIPELINE",
]
