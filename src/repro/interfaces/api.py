"""The user-facing read surface over the LiDS graph.

* :class:`KGLiDS` — the paper's facade: pre-defined discovery operations
  plus ad-hoc SPARQL over a bootstrapped governor.  Multi-lookup operations
  run inside one store read view, so they observe a single committed state
  even while a :class:`~repro.kg.service.GovernorService` ingests on a
  background thread.
* :class:`LiDSClient` — the unified entry point: it fronts a live service,
  a plain governor, or a saved governor directory
  (:meth:`LiDSClient.open`, read-only) with the same API.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

import networkx as nx
import numpy as np

from repro.automation.cleaning import CleaningRecommender
from repro.automation.transformation import TransformationRecommendation, TransformationRecommender
from repro.automl.kgpip import AutoMLResult, EstimatorRecommendation, KGpipAutoML
from repro.kg.governor import KGGovernor
from repro.kg.ontology import DATASET_GRAPH, LiDSOntology, library_uri, table_uri
from repro.kg.service import GovernorService
from repro.kg.storage import KGLiDSStorage
from repro.pipelines.abstraction import PipelineScript
from repro.rdf import RDF, URIRef
from repro.sparql import SelectResult
from repro.tabular import Column, DataLake, Table

#: Keyword search conditions: a flat string is one disjunctive term, a nested
#: list is a conjunctive group of terms (paper example:
#: ``[['heart', 'disease'], 'patients']``).
KeywordConditions = Sequence[Union[str, Sequence[str]]]


class KGLiDS:
    """User-facing API over a bootstrapped LiDS graph."""

    def __init__(self, governor: KGGovernor):
        self.governor = governor
        self.storage: KGLiDSStorage = governor.storage
        self.cleaning_recommender = CleaningRecommender(
            profiler=governor.profiler, colr_models=governor.colr_models
        )
        self.transformation_recommender = TransformationRecommender(
            profiler=governor.profiler, colr_models=governor.colr_models
        )
        self.kgpip = KGpipAutoML(
            storage=self.storage,
            profiler=governor.profiler,
            colr_models=governor.colr_models,
        )

    # ------------------------------------------------------------ bootstrap
    @classmethod
    def bootstrap(
        cls,
        lake: Optional[DataLake] = None,
        scripts: Optional[Sequence[PipelineScript]] = None,
        train_models: bool = True,
        governor: Optional[KGGovernor] = None,
    ) -> "KGLiDS":
        """Build the LiDS graph from a data lake and pipeline scripts.

        With ``train_models`` the cleaning and transformation GNNs are trained
        from the operations observed in the abstracted pipelines (when any are
        found) and registered with the Model Manager.
        """
        governor = governor or KGGovernor()
        governor.bootstrap(lake=lake, scripts=scripts)
        platform = cls(governor)
        if train_models:
            platform.cleaning_recommender.train_from_kg(platform.storage)
            platform.transformation_recommender.train_from_kg(platform.storage)
        return platform

    # ----------------------------------------------------------- consistency
    def read_view(self):
        """A consistent read scope over the LiDS graph (context manager).

        Everything read inside one view belongs to a single committed store
        state: ingestion batches applied by a background
        :class:`~repro.kg.service.GovernorService` either precede the whole
        view or wait for it.  Single queries already get a view implicitly;
        use this to make *sequences* of calls mutually consistent.
        """
        return self.storage.graph.read_view()

    # ----------------------------------------------------------- ad-hoc query
    def query(self, sparql: str) -> Table:
        """Run an ad-hoc SPARQL SELECT query; results come back as a Table."""
        return self.storage.query(sparql).to_table()

    # -------------------------------------------------------- keyword search
    def search_keywords(self, conditions: KeywordConditions) -> Table:
        """Search tables whose names, dataset names or column names match.

        Nested lists are conjunctive (all terms must appear), top-level
        entries are combined disjunctively.
        """
        with self.read_view():
            return self._search_keywords(conditions)

    def _search_keywords(self, conditions: KeywordConditions) -> Table:
        result = self.storage.query(
            """
            SELECT DISTINCT ?table ?table_name ?dataset_name WHERE {
              GRAPH <http://kglids.org/resource/data/graph/datasets> {
                ?table a kglids:Table .
                ?table kglids:hasName ?table_name .
                ?table kglids:isPartOf ?dataset .
                ?dataset kglids:hasName ?dataset_name .
              }
            }
            """
        )
        rows = []
        for row in result.rows:
            searchable = self._searchable_text(row["table"], row["table_name"], row["dataset_name"])
            if self._matches_conditions(searchable, conditions):
                rows.append(
                    {
                        "dataset": row["dataset_name"],
                        "table": row["table_name"],
                        "table_uri": str(row["table"]),
                        "columns": ", ".join(self._column_names(row["table"])),
                    }
                )
        return self._rows_to_table("search_results", rows, ["dataset", "table", "table_uri", "columns"])

    def _searchable_text(self, table_node: Any, table_name: Any, dataset_name: Any) -> str:
        parts = [str(table_name), str(dataset_name)] + self._column_names(table_node)
        return " ".join(parts).lower()

    def _column_names(self, table_node: Any) -> List[str]:
        ontology = LiDSOntology
        names = []
        for triple in self.storage.graph.triples(None, ontology.isPartOf, table_node, graph=DATASET_GRAPH):
            if self.storage.graph.contains(triple.subject, RDF.type, ontology.Column, graph=DATASET_GRAPH):
                name = self.storage.graph.value(triple.subject, ontology.hasName, graph=DATASET_GRAPH)
                if name is not None:
                    names.append(str(name))
        return names

    @staticmethod
    def _matches_conditions(searchable: str, conditions: KeywordConditions) -> bool:
        if not conditions:
            return True
        for condition in conditions:
            if isinstance(condition, str):
                if condition.lower() in searchable:
                    return True
            else:
                if all(term.lower() in searchable for term in condition):
                    return True
        return False

    # ----------------------------------------------------------- discovery
    def get_unionable_tables(self, dataset: str, table: str, k: int = 10) -> Table:
        """Tables unionable with the given table, ranked by score."""
        return self._related_tables(dataset, table, "unionableWith", k)

    def get_joinable_tables(self, dataset: str, table: str, k: int = 10) -> Table:
        """Tables joinable with the given table, ranked by score."""
        return self._related_tables(dataset, table, "joinableWith", k)

    def _related_tables(self, dataset: str, table: str, relation: str, k: int) -> Table:
        subject = table_uri(dataset, table)
        result = self.storage.query(
            f"""
            SELECT ?other ?other_name ?other_dataset ?score WHERE {{
              GRAPH <http://kglids.org/resource/data/graph/datasets> {{
                << <{subject}> kglids:{relation} ?other >> kglids:withCertainty ?score .
                ?other kglids:hasName ?other_name .
                ?other kglids:isPartOf ?d .
                ?d kglids:hasName ?other_dataset .
              }}
            }}
            ORDER BY DESC(?score)
            LIMIT {int(k)}
            """
        )
        rows = [
            {
                "dataset": row["other_dataset"],
                "table": row["other_name"],
                "table_uri": str(row["other"]),
                "score": float(row["score"]),
            }
            for row in result.rows
        ]
        return self._rows_to_table("related_tables", rows, ["dataset", "table", "table_uri", "score"])

    def find_unionable_columns(
        self, dataset_a: str, table_a: str, dataset_b: str, table_b: str
    ) -> Table:
        """Matched (unionable) column pairs between two tables with their scores."""
        with self.read_view():
            return self._find_unionable_columns(dataset_a, table_a, dataset_b, table_b)

    def _find_unionable_columns(
        self, dataset_a: str, table_a: str, dataset_b: str, table_b: str
    ) -> Table:
        ontology = LiDSOntology
        store = self.storage.graph
        node_a = table_uri(dataset_a, table_a)
        node_b = table_uri(dataset_b, table_b)
        columns_a = [t.subject for t in store.triples(None, ontology.isPartOf, node_a, graph=DATASET_GRAPH)]
        rows = []
        for column_node in columns_a:
            if not store.contains(column_node, RDF.type, ontology.Column, graph=DATASET_GRAPH):
                continue
            for predicate in (ontology.hasLabelSimilarity, ontology.hasContentSimilarity):
                for triple in store.triples(column_node, predicate, None, graph=DATASET_GRAPH):
                    other = triple.object
                    if not store.contains(other, ontology.isPartOf, node_b, graph=DATASET_GRAPH):
                        continue
                    score = store.annotation(
                        column_node, predicate, other, ontology.withCertainty, graph=DATASET_GRAPH, default=0.0
                    )
                    rows.append(
                        {
                            "column_a": str(store.value(column_node, ontology.hasName, graph=DATASET_GRAPH)),
                            "column_b": str(store.value(other, ontology.hasName, graph=DATASET_GRAPH)),
                            "similarity": predicate.local_name(),
                            "score": float(score),
                        }
                    )
        deduplicated: Dict[Tuple[str, str], Dict[str, Any]] = {}
        for row in rows:
            key = (row["column_a"], row["column_b"])
            if key not in deduplicated or row["score"] > deduplicated[key]["score"]:
                deduplicated[key] = row
        ordered = sorted(deduplicated.values(), key=lambda row: -row["score"])
        return self._rows_to_table(
            "unionable_columns", ordered, ["column_a", "column_b", "similarity", "score"]
        )

    # ------------------------------------------------------------ join paths
    def _join_graph(self) -> nx.Graph:
        ontology = LiDSOntology
        graph = nx.Graph()
        for triple in self.storage.graph.triples(None, ontology.joinableWith, None, graph=DATASET_GRAPH):
            if isinstance(triple.subject, URIRef) and isinstance(triple.object, URIRef):
                score = self.storage.graph.annotation(
                    triple.subject,
                    ontology.joinableWith,
                    triple.object,
                    ontology.withCertainty,
                    graph=DATASET_GRAPH,
                    default=0.0,
                )
                graph.add_edge(str(triple.subject), str(triple.object), score=float(score))
        return graph

    def get_path_to_table(self, dataset: str, table: str, hops: int = 2) -> Table:
        """Join paths (up to ``hops`` edges) from the given table to other tables."""
        start = str(table_uri(dataset, table))
        with self.read_view():
            return self._get_path_to_table(start, hops)

    def _get_path_to_table(self, start: str, hops: int) -> Table:
        join_graph = self._join_graph()
        rows = []
        if start in join_graph:
            lengths, paths = nx.single_source_dijkstra(join_graph, start, cutoff=None, weight=None)
            for target, path in paths.items():
                if target == start or len(path) - 1 > hops:
                    continue
                rows.append(
                    {
                        "target_table": self._table_label(target),
                        "hops": len(path) - 1,
                        "path": " -> ".join(self._table_label(node) for node in path),
                    }
                )
        rows.sort(key=lambda row: (row["hops"], row["target_table"]))
        return self._rows_to_table("join_paths", rows, ["target_table", "hops", "path"])

    def get_shortest_path_between_tables(
        self, dataset_a: str, table_a: str, dataset_b: str, table_b: str
    ) -> Optional[List[str]]:
        """Shortest join path between two tables (labels), or ``None``."""
        with self.read_view():
            join_graph = self._join_graph()
            source = str(table_uri(dataset_a, table_a))
            target = str(table_uri(dataset_b, table_b))
            if source not in join_graph or target not in join_graph:
                return None
            try:
                path = nx.shortest_path(join_graph, source, target)
            except nx.NetworkXNoPath:
                return None
            return [self._table_label(node) for node in path]

    def _table_label(self, table_uri_str: str) -> str:
        name = self.storage.graph.value(
            URIRef(table_uri_str), LiDSOntology.hasName, graph=DATASET_GRAPH
        )
        return str(name) if name is not None else table_uri_str

    # ----------------------------------------------------- library discovery
    def get_top_k_library_used(self, k: int = 10) -> Table:
        """The top-k libraries by number of distinct pipelines calling them (Fig. 4)."""
        result = self.storage.query(
            f"""
            SELECT ?library_name (COUNT(DISTINCT ?pipeline) AS ?num_pipelines) WHERE {{
              GRAPH ?g {{
                ?statement kglids:callsLibrary ?library .
                ?statement kglids:isPartOf ?pipeline .
              }}
              ?library kglids:hasName ?library_name .
            }}
            GROUP BY ?library_name
            ORDER BY DESC(?num_pipelines)
            LIMIT {int(k)}
            """
        )
        return result.to_table("top_libraries")

    def get_top_used_libraries(self, k: int = 10, task: Optional[str] = None) -> Table:
        """Top-k libraries restricted to pipelines of a given task."""
        if task is None:
            return self.get_top_k_library_used(k)
        result = self.storage.query(
            f"""
            SELECT ?library_name (COUNT(DISTINCT ?pipeline) AS ?num_pipelines) WHERE {{
              GRAPH ?g {{
                ?statement kglids:callsLibrary ?library .
                ?statement kglids:isPartOf ?pipeline .
                ?pipeline kglids:hasTaskType "{task}" .
              }}
              ?library kglids:hasName ?library_name .
            }}
            GROUP BY ?library_name
            ORDER BY DESC(?num_pipelines)
            LIMIT {int(k)}
            """
        )
        return result.to_table("top_libraries")

    def get_pipelines_calling_libraries(self, *qualified_calls: str) -> Table:
        """Pipelines whose statements call every one of the given functions."""
        patterns = []
        for i, call in enumerate(qualified_calls):
            call_node = library_uri(call)
            patterns.append(f"?s{i} kglids:callsFunction <{call_node}> . ?s{i} kglids:isPartOf ?pipeline .")
        body = "\n".join(patterns)
        result = self.storage.query(
            f"""
            SELECT DISTINCT ?pipeline ?name ?votes ?author WHERE {{
              GRAPH ?g {{
                {body}
                ?pipeline kglids:hasName ?name .
                ?pipeline kglids:hasVotes ?votes .
                ?pipeline kglids:hasAuthor ?author .
              }}
            }}
            ORDER BY DESC(?votes)
            """
        )
        return result.to_table("pipelines")

    # ------------------------------------------------------------ automation
    def recommend_cleaning_operations(self, table: Table) -> List[Tuple[str, float]]:
        """Ranked cleaning operations for an unseen table."""
        return self.cleaning_recommender.recommend_cleaning_operations(table)

    def apply_cleaning_operations(
        self, operations: Sequence[Tuple[str, float]], table: Table
    ) -> Table:
        """Apply the top recommended cleaning operation."""
        return self.cleaning_recommender.apply_cleaning_operations(operations, table)

    def recommend_transformations(
        self, table: Table, target: Optional[str] = None
    ) -> TransformationRecommendation:
        """Recommended scaling + unary transformations for an unseen table."""
        return self.transformation_recommender.recommend_transformations(table, target=target)

    def apply_transformations(
        self,
        recommendation: TransformationRecommendation,
        table: Table,
        target: Optional[str] = None,
    ) -> Table:
        """Apply a transformation recommendation."""
        return self.transformation_recommender.apply_transformations(
            recommendation, table, target=target
        )

    # ----------------------------------------------------------------- AutoML
    def recommend_ml_models(
        self, table: Table, task: str = "classification", k: int = 5
    ) -> Table:
        """Classifiers used on the most similar dataset, ranked by votes."""
        recommendations = self.kgpip.recommend_ml_models(table, task=task, k=k)
        rows = [
            {
                "estimator": recommendation.estimator_name,
                "votes": recommendation.votes,
                "similarity": round(recommendation.similarity, 4),
                "hyperparameter_priors": str(recommendation.hyperparameter_priors),
            }
            for recommendation in recommendations
        ]
        return self._rows_to_table(
            "model_recommendations", rows, ["estimator", "votes", "similarity", "hyperparameter_priors"]
        )

    def recommend_hyperparameters(self, estimator_name: str) -> Dict[str, Any]:
        """Most common hyperparameter values recorded for the estimator."""
        return self.kgpip.recommend_hyperparameters(estimator_name)

    def automl(
        self,
        table: Table,
        target: str,
        strategy: str = "evolution",
        **search_kwargs: Any,
    ) -> AutoMLResult:
        """Budgeted AutoML search for ``table``/``target`` over this graph.

        The default strategy is the evolutionary pipeline-graph optimizer
        seeded by KG priors (:mod:`repro.automl.evolution`); pass
        ``strategy="random"`` for the deduped budgeted random baseline.
        Keyword arguments (``max_evaluations``, ``time_budget_seconds``,
        ``cv``, ``population_size``, ``generations``, ``cache``) forward to
        :meth:`~repro.automl.kgpip.KGpipAutoML.search`.  Works over every
        serving surface — live service, plain governor, or a saved
        directory opened read-only — because the search only *reads* the
        graph.
        """
        return self.kgpip.search(table, target, strategy=strategy, **search_kwargs)

    # ------------------------------------------------------------- statistics
    def statistics(self) -> Dict[str, int]:
        """Statistics Manager view of the platform state."""
        with self.read_view():
            return self.storage.statistics()

    # -------------------------------------------------------------- helpers
    @staticmethod
    def _rows_to_table(name: str, rows: List[Dict[str, Any]], columns: List[str]) -> Table:
        table = Table(name)
        for column_name in columns:
            table.add_column(Column(column_name, [row.get(column_name) for row in rows]))
        return table


class LiDSClient(KGLiDS):
    """One read surface over every way a LiDS graph can be served.

    * ``LiDSClient(service)`` — front a live
      :class:`~repro.kg.service.GovernorService`: reads stay answerable
      while ingestion runs, and every read observes whole committed batches.
    * ``LiDSClient(governor)`` — front a plain (synchronous) governor.
    * ``LiDSClient.open(directory)`` — front a saved governor directory
      *read-only*: discovery works immediately (sqlite shards load lazily),
      while every mutation raises ``PermissionError`` so the saved lake
      cannot be modified by accident.

    The discovery API is exactly :class:`KGLiDS`; this class only decides
    where the graph comes from and whether it may change.
    """

    def __init__(self, source: Union[GovernorService, KGGovernor]):
        if isinstance(source, GovernorService):
            self.service: Optional[GovernorService] = source
            governor = source.governor
        elif isinstance(source, KGGovernor):
            self.service = source._service
            governor = source
        else:
            raise TypeError(
                "LiDSClient fronts a GovernorService or a KGGovernor; "
                f"got {type(source).__name__}"
            )
        #: Set by :meth:`open` — the saved directory this client fronts
        #: (enables :meth:`reopen`) and its delta manifest at open time.
        self._directory: Optional[Path] = None
        self._manifest: Optional[Dict[str, Any]] = None
        super().__init__(governor)

    @classmethod
    def open(cls, directory: Union[str, Path], **governor_kwargs) -> "LiDSClient":
        """Open a saved governor directory for read-only discovery.

        The returned client answers every read operation; the underlying
        governor rejects mutations (``read_only``), so the directory's
        graph, embeddings and profiles stay exactly as saved.
        """
        directory = Path(directory)
        governor = KGGovernor.open(directory, **governor_kwargs)
        governor.read_only = True
        client = cls(governor)
        client._directory = directory
        client._manifest = cls._read_delta_manifest(directory)
        return client

    @staticmethod
    def _read_delta_manifest(directory: Path) -> Optional[Dict[str, Any]]:
        from repro.kg.governor import _DELTA_FILE

        path = directory / _DELTA_FILE
        if not path.exists():
            return None
        try:
            return json.loads(path.read_text())
        except (OSError, ValueError):
            return None

    def reopen(self) -> Dict[str, Any]:
        """Cheaply re-open this directory-backed client in place.

        For clients created with :meth:`open` whose directory was updated
        underneath them (a replica pulling a fresh snapshot): re-reads the
        sqlite file through the existing backend, *reusing* the interned
        term dictionary and invalidating only the ``GraphIndex``es of
        graphs whose shard changed according to the delta manifests — a
        fraction of a cold reopen.  In-flight read views finish on the old
        snapshot first (the swap runs under the write gate).  Returns the
        backend's info dict.
        """
        if self._directory is None:
            raise RuntimeError("reopen() requires a client created by LiDSClient.open")
        old = self._manifest
        new = self._read_delta_manifest(self._directory)
        changed: Optional[List[URIRef]] = None
        if (
            old is not None
            and new is not None
            and old.get("store_uid") is not None
            and old.get("store_uid") == new.get("store_uid")
        ):
            old_graphs = old.get("graphs", {})
            changed = [
                URIRef(name)
                for name, entry in new.get("graphs", {}).items()
                if old_graphs.get(name) != entry
            ]
        info = self.storage.graph.reopen(changed_graphs=changed)
        self._manifest = new
        return info

    @property
    def read_only(self) -> bool:
        """Whether this client fronts a read-only (opened) governor."""
        return self.governor.read_only

    @property
    def commit_version(self) -> int:
        """The fronted graph's committed write-batch counter.

        The staleness currency of the serving tier: a replica reports its
        pinned version and the lag to its source in these units.
        """
        return self.storage.graph.commit_version

    @property
    def replication_lag(self) -> int:
        """Commit versions this client trails its replication source by.

        Always 0 here — an in-process client reads the authoritative graph
        directly; replicas (``repro.serving``) report their real lag.
        """
        return 0

    def stats(self) -> Dict[str, Any]:
        """Serving-tier telemetry: versions, staleness, service counters."""
        payload: Dict[str, Any] = {
            "commit_version": self.commit_version,
            "replication_lag": self.replication_lag,
            "read_only": self.read_only,
        }
        if self.service is not None:
            payload["service"] = self.service.stats
        return payload

    @property
    def quarantined(self) -> List[Any]:
        """Keys the fronted service refuses fast after repeated failures.

        Empty when the client fronts a plain governor (no service, no
        scheduler, hence no quarantine ledger).
        """
        if self.service is None:
            return []
        return self.service.quarantined

    @property
    def quarantine_reasons(self) -> Dict[Any, BaseException]:
        """``key -> last error`` for every quarantined key (see service)."""
        if self.service is None:
            return {}
        return self.service.quarantine_reasons

    def crawl(self, *roots: Union[str, Path], start: bool = True, **crawler_kwargs):
        """Continuously govern one or more lake directories.

        Builds a :class:`~repro.crawler.DirectorySource` per root (the
        layout rule of :meth:`DataLake.from_directory`), wires them into a
        :class:`~repro.crawler.LakeCrawler` feeding this client's service,
        and starts the daemon (pass ``start=False`` to drive
        ``scan_once()`` manually).  Keyword arguments go to the crawler
        (``scan_interval``, ``rate_limit``, breaker/backoff knobs, ...).

        The returned crawler is caller-owned: ``crawler.close()`` stops
        it without touching the service.  Requires a live service — a
        plain or read-only governor has no ingestion queue to feed.
        """
        from repro.crawler import DirectorySource, LakeCrawler

        if self.service is None or self.service.closed:
            raise RuntimeError(
                "crawl() needs a live GovernorService (open or wrap one; a "
                "plain/read-only governor has no ingestion queue)"
            )
        if not roots:
            raise ValueError("crawl() needs at least one root directory")
        sources = [DirectorySource(root) for root in roots]
        crawler = LakeCrawler(self.service, sources, **crawler_kwargs)
        return crawler.start() if start else crawler

    def clear_quarantine(self, key: Optional[Any] = None) -> None:
        """Lift the service's quarantine for one key (or all of them).

        A no-op without a fronting service, so callers can always invoke
        it after fixing bad source data regardless of how the graph is
        served.
        """
        if self.service is not None:
            self.service.clear_quarantine(key)

    def close(self) -> None:
        """Release the underlying storage (flushes sqlite-backed graphs).

        Idempotent: the governor's close is safe to call twice, so a
        client may appear in multiple ``finally`` blocks.  For a
        service-fronted client, close the service first (or let it
        drain): closing storage under a live scheduler would fail every
        in-flight ticket on a closed backend, so it is rejected here.
        """
        if self.service is not None and not self.service.closed:
            raise RuntimeError(
                "close the GovernorService before closing the client "
                "(a live scheduler still writes through this storage)"
            )
        self.governor.close()
