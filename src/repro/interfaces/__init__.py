"""The KGLiDS Interfaces: the user-facing Python API (Section 5).

:class:`KGLiDS` exposes the pre-defined operations of the paper — keyword
search, unionable-column discovery, join-path discovery, library and pipeline
discovery, transformation / cleaning / classifier / hyperparameter
recommendation — plus ad-hoc SPARQL queries.  Results are returned as
:class:`repro.tabular.Table` objects, the stand-in for the Pandas DataFrames
the original system returns.
"""

from repro.interfaces.api import KGLiDS, LiDSClient

__all__ = ["KGLiDS", "LiDSClient"]
