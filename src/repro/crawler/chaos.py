"""ChaosSource: a fault-injecting wrapper for crawler sources.

In the spirit of :mod:`repro.rdf.faults` (which proves storage rollback by
injecting failures at every fault point), this wrapper proves *crawler*
robustness by making a source misbehave the way real lakes do:

========== =============================================================
fault      behaviour
========== =============================================================
truncate   the file was cut off mid-read → :class:`TableReadError`
permission the file is unreadable → :class:`TableReadError`
           (chained ``PermissionError``)
malformed  the bytes do not parse as CSV/JSON → :class:`TableReadError`
slow       the read stalls for ``slow_seconds`` before completing —
           long stalls trip the crawler's load timeout (a hung read)
flap       the whole source is briefly unavailable →
           :class:`SourceUnavailableError` from scan *or* load
delete     the file vanished between scan and load →
           ``FileNotFoundError``
========== =============================================================

Faults that *fail* do so loudly — a chaos-truncated read never silently
returns half a table, so a crawl under chaos converges to exactly the
clean-crawl graph once the faults stop (the acceptance property the chaos
matrix test pins).

Faults fire two ways, composable:

* **rates** — each fault has a probability per opportunity, drawn from a
  seeded RNG (:class:`ChaosConfig`); deterministic given the seed and the
  operation sequence.
* **injections** — :meth:`ChaosSource.inject` queues named one-shot faults
  consumed in order by the next matching operations; tests use this to
  script exact scenarios ("the second load hits a truncated file").
"""

from __future__ import annotations

import random
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional

from repro.crawler.sources import Source, TableRef
from repro.kg.errors import SourceUnavailableError, TableReadError
from repro.tabular import Table

__all__ = ["ChaosConfig", "ChaosSource", "LOAD_FAULTS", "SCAN_FAULTS"]

#: Fault kinds applicable to ``load`` / ``scan`` opportunities.
LOAD_FAULTS = ("truncate", "permission", "malformed", "slow", "flap", "delete")
SCAN_FAULTS = ("flap",)


@dataclass
class ChaosConfig:
    """Per-opportunity fault probabilities (all default to off)."""

    truncate_rate: float = 0.0
    permission_rate: float = 0.0
    malformed_rate: float = 0.0
    slow_rate: float = 0.0
    flap_rate: float = 0.0
    delete_rate: float = 0.0
    #: How long a ``slow`` fault stalls the read.
    slow_seconds: float = 0.05
    seed: int = 0

    def rate(self, fault: str) -> float:
        return float(getattr(self, f"{fault}_rate"))

    @classmethod
    def single(cls, fault: str, rate: float = 0.3, **kwargs) -> "ChaosConfig":
        """A config exercising exactly one fault kind (chaos-matrix helper)."""
        if fault not in LOAD_FAULTS:
            raise ValueError(f"unknown fault {fault!r}; known: {LOAD_FAULTS}")
        return cls(**{f"{fault}_rate": rate}, **kwargs)


@dataclass
class ChaosStats:
    """How often each fault actually fired (telemetry for tests/benches)."""

    fired: Dict[str, int] = field(default_factory=dict)

    def record(self, fault: str) -> None:
        self.fired[fault] = self.fired.get(fault, 0) + 1


class ChaosSource:
    """Wrap any :class:`Source` and make it misbehave on schedule."""

    def __init__(self, inner: Source, config: Optional[ChaosConfig] = None):
        self.inner = inner
        self.name = getattr(inner, "name", "chaos")
        self.config = config or ChaosConfig()
        self.stats = ChaosStats()
        self._rng = random.Random(self.config.seed)
        self._injected: Deque[str] = deque()

    # ------------------------------------------------------------- scripting
    def inject(self, *faults: str) -> None:
        """Queue one-shot faults consumed (in order) by matching operations."""
        for fault in faults:
            if fault not in LOAD_FAULTS:
                raise ValueError(f"unknown fault {fault!r}; known: {LOAD_FAULTS}")
            self._injected.append(fault)

    def calm(self) -> None:
        """Drop queued injections and zero every rate: behave from now on."""
        self._injected.clear()
        for fault in LOAD_FAULTS:
            setattr(self.config, f"{fault}_rate", 0.0)

    # ---------------------------------------------------------- fault engine
    def _next_fault(self, applicable: tuple) -> Optional[str]:
        if self._injected and self._injected[0] in applicable:
            return self._injected.popleft()
        for fault in applicable:
            if self.config.rate(fault) > 0 and self._rng.random() < self.config.rate(fault):
                return fault
        return None

    def _fire(self, fault: str, ref: Optional[TableRef]) -> None:
        self.stats.record(fault)
        path = ref.path if ref is not None else None
        if fault == "flap":
            raise SourceUnavailableError(
                f"chaos: source {self.name!r} is flapping (unavailable)"
            )
        if fault == "delete":
            raise FileNotFoundError(f"chaos: {path} deleted mid-crawl")
        if fault == "truncate":
            raise TableReadError(
                path, "chaos: file truncated mid-read", cause=EOFError("truncated")
            )
        if fault == "permission":
            raise TableReadError(
                path,
                "chaos: permission denied",
                cause=PermissionError(13, "Permission denied", str(path)),
            )
        if fault == "malformed":
            raise TableReadError(
                path, "chaos: malformed CSV payload", cause=ValueError("bad csv")
            )
        if fault == "slow":  # a hung read: stall, then proceed normally
            time.sleep(self.config.slow_seconds)
            return
        raise AssertionError(f"unhandled fault {fault!r}")  # pragma: no cover

    # ----------------------------------------------------------- Source API
    def scan(self) -> List[TableRef]:
        fault = self._next_fault(SCAN_FAULTS)
        if fault is not None:
            self._fire(fault, None)
        return self.inner.scan()

    def load(self, ref: TableRef) -> Table:
        fault = self._next_fault(LOAD_FAULTS)
        if fault is not None:
            self._fire(fault, ref)  # "slow" returns and falls through
        return self.inner.load(ref)

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return f"ChaosSource(inner={self.inner!r})"
