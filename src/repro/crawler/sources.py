"""Crawler sources: where tables come from and how they are discovered.

A :class:`Source` is the crawler's view of one place tables live.  It has
two duties, both cheap to reason about under failure:

* :meth:`Source.scan` — enumerate what exists *right now* as
  :class:`TableRef` descriptors (no file contents touched beyond ``stat``);
* :meth:`Source.load` — materialize one ref into a
  :class:`~repro.tabular.Table`.

Failure vocabulary (see :mod:`repro.kg.errors`): a source that cannot be
scanned at all raises :class:`SourceUnavailableError` (transient — feeds the
per-source circuit breaker), a single unreadable file raises
:class:`TableReadError` (poison — feeds per-table quarantine), and a file
that vanished between scan and load raises ``FileNotFoundError`` (the next
scan will observe the deletion).  This split is what lets the crawler treat
"the share is down" and "one CSV is garbage" with different medicine.

:class:`DirectorySource` covers the common case — a local directory tree of
CSV/JSON files laid out like :meth:`repro.tabular.DataLake.from_directory`
expects.  Remote/parquet/object-store sources plug in by implementing the
same two methods.
"""

from __future__ import annotations

import csv
import os
from pathlib import Path
from typing import List, Optional, Protocol, Sequence, Tuple, Union, runtime_checkable

from repro.kg.errors import SourceUnavailableError, TableReadError
from repro.tabular import Table
from repro.tabular.io import read_csv, read_json_records

PathLike = Union[str, Path]

__all__ = ["TableRef", "Source", "DirectorySource"]


class TableRef:
    """One discovered table: identity plus the cheap change signals.

    ``size`` and ``mtime_ns`` come from the scan's ``stat`` and let the
    crawler skip loading tables that cannot have changed; ``path`` is set
    for file-backed sources (and is what error messages point at).
    """

    __slots__ = ("dataset", "name", "path", "size", "mtime_ns")

    def __init__(
        self,
        dataset: str,
        name: str,
        path: Optional[Path] = None,
        size: int = 0,
        mtime_ns: int = 0,
    ):
        self.dataset = dataset
        self.name = name
        self.path = Path(path) if path is not None else None
        self.size = int(size)
        self.mtime_ns = int(mtime_ns)

    @property
    def key(self) -> Tuple[str, str]:
        """The governance identity: ``(dataset, table name)``."""
        return (self.dataset, self.name)

    def same_version(self, other: "TableRef") -> bool:
        """Whether two scans saw the same file version (mtime + size)."""
        return self.size == other.size and self.mtime_ns == other.mtime_ns

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return (
            f"TableRef(dataset={self.dataset!r}, name={self.name!r}, "
            f"size={self.size})"
        )


@runtime_checkable
class Source(Protocol):
    """What the crawler needs from a place tables live."""

    name: str

    def scan(self) -> List[TableRef]:
        """Enumerate the tables that exist right now (cheap; no loads)."""
        ...

    def load(self, ref: TableRef) -> Table:
        """Materialize one discovered table."""
        ...


class DirectorySource:
    """A local directory tree of CSV/JSON tables.

    The layout rule matches :meth:`DataLake.from_directory` exactly —
    ``root/<dataset>/<table>.csv`` with loose files under ``root`` grouped
    into a dataset named after the root — so a crawl of a directory
    converges to the same graph a one-shot ``from_directory`` load
    produces.

    Robustness contract:

    * an unlistable root (vanished, permission denied) raises
      :class:`SourceUnavailableError`;
    * a file that fails ``stat`` during the scan is *skipped* (it is
      mid-delete; the next scan settles it) — one vanishing file never
      aborts a scan;
    * an unreadable/unparsable file raises :class:`TableReadError` from
      :meth:`load`, a vanished one ``FileNotFoundError``.
    """

    def __init__(
        self,
        root: PathLike,
        name: Optional[str] = None,
        extensions: Sequence[str] = (".csv", ".json"),
    ):
        self.root = Path(root)
        self.name = name or self.root.name
        self.extensions = tuple(ext.lower() for ext in extensions)

    def scan(self) -> List[TableRef]:
        if not self.root.is_dir():
            raise SourceUnavailableError(
                f"source {self.name!r}: root {self.root} is not a listable directory"
            )
        try:
            paths = sorted(self.root.rglob("*"))
        except OSError as error:
            raise SourceUnavailableError(
                f"source {self.name!r}: cannot list {self.root}: {error}"
            ) from error
        refs: List[TableRef] = []
        for path in paths:
            if path.suffix.lower() not in self.extensions:
                continue
            try:
                stat = os.stat(path)
            except OSError:
                # Mid-delete (or a transient permission flap): skip this
                # file; whatever the truth is, the next scan observes it.
                continue
            if not os.path.isfile(path):
                continue
            relative = path.relative_to(self.root)
            dataset = relative.parts[0] if len(relative.parts) > 1 else self.root.name
            refs.append(
                TableRef(
                    dataset,
                    path.stem,
                    path=path,
                    size=stat.st_size,
                    mtime_ns=stat.st_mtime_ns,
                )
            )
        return refs

    def load(self, ref: TableRef) -> Table:
        if ref.path is None:
            raise TableReadError(ref.key, "ref has no file path")
        try:
            if ref.path.suffix.lower() == ".json":
                return read_json_records(ref.path, dataset=ref.dataset)
            return read_csv(ref.path, dataset=ref.dataset)
        except FileNotFoundError:
            raise  # vanished: the next scan retracts it, not a read error
        except (OSError, ValueError, UnicodeError, csv.Error) as error:
            raise TableReadError(ref.path, str(error), cause=error) from error

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return f"DirectorySource(name={self.name!r}, root={str(self.root)!r})"
