"""LakeCrawler: continuous governed ingestion over a living, breaking lake.

The paper's governor "creates, maintains and synchronizes" the LiDS graph —
but it waits to be handed :class:`~repro.tabular.Table` objects.  The
crawler closes that gap: a daemon that watches one or more
:class:`~repro.crawler.sources.Source`\\ s, discovers new / changed /
deleted tables, and feeds the
:class:`~repro.kg.service.GovernorService` queue, so governance becomes a
long-running process over a lake that is allowed to misbehave.

One scan pass per source:

1. **Breaker gate** — a source whose circuit breaker is open is skipped
   entirely; after ``breaker_reset`` seconds one probe scan is allowed
   through (half-open) and its outcome closes or re-opens the breaker.
2. **Scan** — enumerate :class:`TableRef`\\ s (with a timeout).  Scan
   failures are source-level: they feed the breaker, not any table.
3. **Diff** — refs are compared against the crawler's governed state:
   unchanged file versions (same mtime + size as last fingerprinted) are
   skipped without touching contents; known keys missing from the scan
   become retractions.
4. **Prioritize** — changed tables sort before new ones (stale knowledge
   is worse than missing knowledge), smaller files before larger within
   each class, so cheap updates land first.
5. **Load + submit** — each load takes a token from the source's rate
   bucket, runs under a read timeout, and retries transient failures with
   capped, jittered exponential backoff.  An unreadable table
   (:class:`TableReadError`) is counted per table and quarantined through
   the service's ledger after ``poison_after`` consecutive failures —
   poison isolation: the scan loop keeps moving.  A successful load is
   fingerprinted (:meth:`Table.content_fingerprint` — streamed and cached
   for file-backed tables) and, if it changed, submitted as
   ``submit_table`` / ``submit_refresh``; deletions go through
   ``submit_retract``.

Every ticket the crawler creates is resolved *within the pass* that
created it (success, failure, or timeout-counted-as-failure): pause /
drain / close can therefore never leak in-flight work.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.crawler.robustness import Backoff, CircuitBreaker, TokenBucket
from repro.crawler.sources import Source, TableRef
from repro.kg.errors import (
    GovernanceError,
    PoisonTableError,
    SourceUnavailableError,
    TableReadError,
    TransientError,
)
from repro.kg.service import GovernorService
from repro.tabular import Table

__all__ = ["LakeCrawler", "CrawlerSourceState"]

TableKey = Tuple[str, str]

#: Per-source counters exposed by :meth:`LakeCrawler.stats`.
_COUNTERS = (
    "scans",
    "scan_failures",
    "skipped_scans",
    "loads",
    "load_failures",
    "retries",
    "vanished",
    "submitted",
    "refreshed",
    "retracted",
    "quarantined",
)


def _call_with_timeout(work, timeout: Optional[float], description: str):
    """Run ``work`` with a wall-clock deadline.

    A read that exceeds the deadline raises :class:`TransientError` (worth
    retrying — slow reads usually clear).  The worker thread is a daemon:
    a truly hung read leaks one thread, never the crawler loop.
    """
    if timeout is None:
        return work()
    outcome: Dict[str, Any] = {}
    done = threading.Event()

    def runner() -> None:
        try:
            outcome["value"] = work()
        except BaseException as error:  # noqa: BLE001 - re-raised below
            outcome["error"] = error
        finally:
            done.set()

    thread = threading.Thread(target=runner, name="crawler-read", daemon=True)
    thread.start()
    if not done.wait(timeout):
        raise TransientError(f"{description} timed out after {timeout}s")
    if "error" in outcome:
        raise outcome["error"]
    return outcome["value"]


class CrawlerSourceState:
    """Everything the crawler tracks about one source."""

    def __init__(
        self,
        source: Source,
        breaker: CircuitBreaker,
        bucket: TokenBucket,
        backoff: Backoff,
    ):
        self.source = source
        self.name = getattr(source, "name", repr(source))
        self.breaker = breaker
        self.bucket = bucket
        self.backoff = backoff
        #: key -> content fingerprint of the version the governor holds.
        self.governed: Dict[TableKey, str] = {}
        #: key -> (mtime_ns, size) of the file version last fingerprinted —
        #: lets an unchanged file be skipped on a pure ``stat`` basis.
        self.seen_version: Dict[TableKey, Tuple[int, int]] = {}
        #: key -> consecutive load/ingest failures (poison counting).
        self.failures: Dict[TableKey, int] = {}
        self.counters: Dict[str, int] = {name: 0 for name in _COUNTERS}
        self.last_error: Optional[str] = None
        self.last_scan_seconds: float = 0.0
        #: Keys seen by the last scan but not governed (and not quarantined)
        #: when the pass ended — the source's backlog.
        self.lag: int = 0


class LakeCrawler:
    """A continuously-running ingestion daemon over one or more sources.

    ``service`` is the :class:`GovernorService` fed by the crawl;
    ``sources`` anything implementing the
    :class:`~repro.crawler.sources.Source` protocol.  The crawler never
    closes the service — the caller owns it.

    Knobs (all per crawler, breaker/bucket instantiated per source):

    * ``scan_interval`` — seconds between passes when running as a daemon;
    * ``rate_limit`` / ``burst`` — token-bucket loads/second per source
      (``None`` disables);
    * ``load_timeout`` / ``scan_timeout`` — read deadlines (hung-read
      protection);
    * ``max_load_retries`` + ``backoff_base`` / ``backoff_cap`` — transient
      retry policy;
    * ``breaker_threshold`` / ``breaker_reset`` — circuit-breaker trip
      count and open-state probe schedule;
    * ``poison_after`` — consecutive per-table failures before the key is
      quarantined through the service ledger;
    * ``ingest_timeout`` — how long to wait for a submitted ticket before
      counting the attempt failed.

    Use as a daemon (``start()`` / ``close()``, or as a context manager) or
    drive passes synchronously with :meth:`scan_once` — tests and the
    chaos matrix use the latter for determinism.
    """

    def __init__(
        self,
        service: GovernorService,
        sources: Sequence[Source],
        *,
        scan_interval: float = 1.0,
        rate_limit: Optional[float] = None,
        burst: Optional[float] = None,
        load_timeout: Optional[float] = 30.0,
        scan_timeout: Optional[float] = 30.0,
        max_load_retries: int = 3,
        backoff_base: float = 0.05,
        backoff_cap: float = 2.0,
        backoff_seed: Optional[int] = None,
        breaker_threshold: int = 5,
        breaker_reset: float = 5.0,
        poison_after: int = 3,
        ingest_timeout: Optional[float] = 60.0,
    ):
        if service.closed:
            raise GovernanceError("cannot crawl into a closed GovernorService")
        self.service = service
        self.scan_interval = scan_interval
        self.load_timeout = load_timeout
        self.scan_timeout = scan_timeout
        self.max_load_retries = max(0, int(max_load_retries))
        self.poison_after = max(1, int(poison_after))
        self.ingest_timeout = ingest_timeout
        self._sources: List[CrawlerSourceState] = []
        for index, source in enumerate(sources):
            self._sources.append(
                CrawlerSourceState(
                    source,
                    CircuitBreaker(breaker_threshold, breaker_reset),
                    TokenBucket(rate_limit, burst),
                    Backoff(
                        backoff_base,
                        backoff_cap,
                        seed=None if backoff_seed is None else backoff_seed + index,
                    ),
                )
            )
        if len({state.name for state in self._sources}) != len(self._sources):
            raise ValueError("crawler sources must have unique names")
        #: Serializes scan passes: the daemon loop and direct scan_once()
        #: calls never interleave half-passes.
        self._pass_lock = threading.Lock()
        self._stop = threading.Event()
        self._resume = threading.Event()
        self._resume.set()
        #: Set while no backlog is outstanding (see :meth:`wait_until_idle`).
        self._idle = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._closed = False
        self.passes = 0

    # -------------------------------------------------------------- lifecycle
    def start(self) -> "LakeCrawler":
        """Start the daemon thread (idempotent)."""
        if self._closed:
            raise GovernanceError("LakeCrawler is closed")
        if self._thread is None or not self._thread.is_alive():
            self._stop.clear()
            self._thread = threading.Thread(
                target=self._run, name="lake-crawler", daemon=True
            )
            self._thread.start()
        return self

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    @property
    def closed(self) -> bool:
        return self._closed

    def pause(self) -> None:
        """Stop starting new passes (the current pass completes)."""
        self._resume.clear()

    def resume(self) -> None:
        self._resume.set()

    def drain(self) -> None:
        """Block until the in-flight pass (if any) and its tickets resolve.

        Taking the pass lock waits out a running pass — whose tickets are
        resolved inline — then ``service.drain()`` flushes anything other
        producers queued.  Nothing of the crawler's is left in flight.
        """
        with self._pass_lock:
            pass
        self.service.drain()

    def close(self, timeout: Optional[float] = 30.0) -> None:
        """Stop the daemon and settle in-flight work (idempotent).

        The loop is signalled, the thread joined, and the last pass's
        tickets are — as for every pass — already resolved inline, so no
        ticket outlives the crawler.  The service stays open (caller-owned).
        """
        self._stop.set()
        self._resume.set()  # a paused crawler must still be closeable
        thread = self._thread
        if thread is not None and thread.is_alive():
            thread.join(timeout)
            if thread.is_alive():  # pragma: no cover - requires a hung read
                raise TimeoutError(f"crawler still mid-pass after {timeout}s")
        self._thread = None
        self._closed = True

    def __enter__(self) -> "LakeCrawler":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def _run(self) -> None:
        while not self._stop.is_set():
            self._resume.wait()
            if self._stop.is_set():
                return
            try:
                self.scan_once()
            except Exception:  # noqa: BLE001 - the daemon must never die
                # scan_once already attributes failures to sources; anything
                # escaping is a crawler bug — swallowed so the daemon lives,
                # visible through per-source last_error/stats.
                pass
            self._stop.wait(self.scan_interval)

    def wait_until_idle(self, timeout: Optional[float] = None) -> bool:
        """Block until a pass finds nothing to do (``False`` on timeout).

        "Idle" means: every source scanned successfully with a closed
        breaker, no loads/submissions/retractions were needed, and no
        table is backlogged or mid-retry.  With sources that keep
        misbehaving this may never happen — hence the timeout.
        """
        return self._idle.wait(timeout)

    # ------------------------------------------------------------------ stats
    def stats(self) -> Dict[str, Any]:
        """A health snapshot: per-source counters, breaker state, lag."""
        sources: Dict[str, Any] = {}
        totals = {name: 0 for name in _COUNTERS}
        total_lag = 0
        for state in self._sources:
            entry = dict(state.counters)
            entry["breaker"] = state.breaker.state
            entry["breaker_trips"] = state.breaker.trips
            entry["governed_tables"] = len(state.governed)
            entry["lag"] = state.lag
            entry["last_error"] = state.last_error
            entry["last_scan_seconds"] = round(state.last_scan_seconds, 4)
            sources[state.name] = entry
            total_lag += state.lag
            for name in _COUNTERS:
                totals[name] += state.counters[name]
        totals["lag"] = total_lag
        return {
            "passes": self.passes,
            "running": self.running,
            "idle": self._idle.is_set(),
            "sources": sources,
            "totals": totals,
            "quarantined": [list(map(str, key)) for key in self.service.quarantined],
        }

    # ------------------------------------------------------------- scan pass
    def scan_once(self) -> int:
        """Run one full pass over every source; returns actions performed.

        An *action* is a submission, refresh, retraction or counted
        failure — 0 means the pass found the lake fully governed (idle).
        Safe to call directly (without :meth:`start`) and from tests; the
        daemon loop calls exactly this.
        """
        if self._closed:
            raise GovernanceError("LakeCrawler is closed")
        with self._pass_lock:
            actions = 0
            settled = True
            for state in self._sources:
                pass_actions, pass_settled = self._scan_source(state)
                actions += pass_actions
                settled = settled and pass_settled
            self.passes += 1
            if actions == 0 and settled:
                self._idle.set()
            else:
                self._idle.clear()
            return actions

    def _scan_source(self, state: CrawlerSourceState) -> Tuple[int, bool]:
        """One source pass; returns ``(actions, settled)``."""
        if not state.breaker.allow():
            state.counters["skipped_scans"] += 1
            return 0, False
        started = time.perf_counter()
        try:
            refs = _call_with_timeout(
                state.source.scan, self.scan_timeout, f"scan of {state.name!r}"
            )
        except Exception as error:  # noqa: BLE001 - any scan failure is source-level
            state.counters["scan_failures"] += 1
            state.breaker.record_failure()
            state.last_error = f"scan: {type(error).__name__}: {error}"
            state.last_scan_seconds = time.perf_counter() - started
            return 1, False
        state.counters["scans"] += 1
        # A successful scan is a good probe: it closes a half-open breaker
        # (and resets the consecutive-failure count while the source is up).
        state.breaker.record_success()

        # ------------------------------------------------------- diff + plan
        current: Dict[TableKey, TableRef] = {ref.key: ref for ref in refs}
        deleted = [key for key in state.governed if key not in current]
        changed: List[TableRef] = []
        fresh: List[TableRef] = []
        for ref in refs:
            if self._is_quarantined(ref.key):
                continue
            version = (ref.mtime_ns, ref.size)
            if state.seen_version.get(ref.key) == version:
                continue
            (changed if ref.key in state.governed else fresh).append(ref)
        # Changed before new (stale knowledge beats missing knowledge),
        # small before large within each class: cheap updates land first.
        changed.sort(key=lambda ref: (ref.size, ref.key))
        fresh.sort(key=lambda ref: (ref.size, ref.key))
        worklist = changed + fresh

        actions = 0
        source_healthy = True

        # -------------------------------------------------------- retractions
        for key in sorted(deleted):
            actions += 1
            if self._retract(state, key):
                state.counters["retracted"] += 1
            # A failed retraction stays in ``governed``; retried next pass.

        # ------------------------------------------------------------- loads
        for ref in worklist:
            if self._stop.is_set():
                # close() was requested mid-pass: stop starting new loads;
                # everything already submitted has resolved inline above.
                source_healthy = False
                break
            if not state.breaker.allow():
                # The source went down mid-pass: stop hammering it.
                source_healthy = False
                break
            state.bucket.acquire()
            outcome = self._load_and_submit(state, ref)
            actions += outcome
        state.last_scan_seconds = time.perf_counter() - started
        state.lag = sum(
            1
            for key in current
            if key not in state.governed and not self._is_quarantined(key)
        )
        settled = source_healthy and state.lag == 0 and not deleted
        return actions, settled

    # ----------------------------------------------------------- table paths
    def _load_and_submit(self, state: CrawlerSourceState, ref: TableRef) -> int:
        """Load one ref (retrying transients) and submit it if changed.

        Returns 1 when the table caused an action (submission or failure),
        0 when it turned out unchanged.
        """
        try:
            table = self._load_with_retry(state, ref)
        except FileNotFoundError:
            # Vanished between scan and load: the next scan retracts it.
            state.counters["vanished"] += 1
            return 1
        except SourceUnavailableError as error:
            state.counters["load_failures"] += 1
            state.breaker.record_failure()
            state.last_error = f"load {ref.key}: {error}"
            return 1
        except Exception as error:  # noqa: BLE001 - poison isolation
            self._record_table_failure(state, ref.key, error)
            return 1
        state.counters["loads"] += 1
        state.breaker.record_success()
        fingerprint = table.content_fingerprint()
        version = (ref.mtime_ns, ref.size)
        if state.governed.get(ref.key) == fingerprint:
            # Touched but unchanged (or provenance round-trip): nothing to
            # govern, just remember this file version as fingerprinted.
            state.seen_version[ref.key] = version
            state.failures.pop(ref.key, None)
            return 0
        refresh = ref.key in state.governed
        try:
            if refresh:
                ticket = self.service.submit_refresh(table, ref.dataset)
            else:
                ticket = self.service.submit_table(table, ref.dataset)
            ticket.result(timeout=self.ingest_timeout)
        except PoisonTableError as error:
            # The service's ledger already holds the key; mirror the count.
            state.counters["quarantined"] += 1
            state.last_error = f"ingest {ref.key}: {error}"
            return 1
        except TimeoutError as error:
            # The ticket may still resolve later; treat as a transient
            # failure — the next pass re-fingerprints and resubmits, which
            # the governor dedupes if the first ticket landed meanwhile.
            state.counters["load_failures"] += 1
            state.last_error = f"ingest {ref.key}: {error}"
            return 1
        except Exception as error:  # noqa: BLE001 - poison isolation
            self._record_table_failure(state, ref.key, error)
            return 1
        state.governed[ref.key] = fingerprint
        state.seen_version[ref.key] = version
        state.failures.pop(ref.key, None)
        state.counters["refreshed" if refresh else "submitted"] += 1
        return 1

    def _load_with_retry(self, state: CrawlerSourceState, ref: TableRef) -> Table:
        attempt = 0
        while True:
            try:
                return _call_with_timeout(
                    lambda: state.source.load(ref),
                    self.load_timeout,
                    f"load of {ref.key} from {state.name!r}",
                )
            except TransientError:
                attempt += 1
                if attempt > self.max_load_retries:
                    raise
                state.counters["retries"] += 1
                time.sleep(self.backoff_delay(state, attempt))

    def backoff_delay(self, state: CrawlerSourceState, attempt: int) -> float:
        return state.backoff.delay(attempt)

    def _record_table_failure(
        self, state: CrawlerSourceState, key: TableKey, error: BaseException
    ) -> None:
        state.counters["load_failures"] += 1
        state.last_error = f"load {key}: {type(error).__name__}: {error}"
        count = state.failures.get(key, 0) + 1
        state.failures[key] = count
        if count >= self.poison_after:
            # Extend the service's quarantine machinery: the crawler's
            # repeat offenders land in the same ledger ingestion failures
            # do, visible through service/client ``quarantine_reasons`` and
            # lifted the same way (``clear_quarantine``).
            self.service.quarantine(("table",) + key, error)
            state.counters["quarantined"] += 1
            state.failures.pop(key, None)

    def _is_quarantined(self, key: TableKey) -> bool:
        return ("table",) + key in self.service.quarantine_reasons

    def _retract(self, state: CrawlerSourceState, key: TableKey) -> bool:
        dataset, name = key
        try:
            ticket = self.service.submit_retract(dataset, name)
            ticket.result(timeout=self.ingest_timeout)
        except Exception as error:  # noqa: BLE001 - retried next pass
            state.last_error = f"retract {key}: {type(error).__name__}: {error}"
            state.counters["load_failures"] += 1
            return False
        state.governed.pop(key, None)
        state.seen_version.pop(key, None)
        state.failures.pop(key, None)
        return True
