"""Robustness primitives for the lake crawler.

Three small, independently-testable mechanisms the scan loop composes:

* :class:`TokenBucket` — per-source rate limiting: loads cost one token,
  tokens refill at ``rate`` per second up to ``capacity``, so a scan burst
  cannot hammer one source however many tables changed at once.
* :class:`Backoff` — capped exponential delays with deterministic jitter,
  for retrying transient failures without synchronizing retries into
  thundering herds.
* :class:`CircuitBreaker` — the classic closed → open → half-open state
  machine: after ``failure_threshold`` consecutive source-level failures
  the breaker *opens* (the crawler stops touching the source entirely),
  and after ``reset_timeout`` seconds it *half-opens*, letting a single
  probe through; the probe's outcome closes it again or re-opens it.

All three take an injectable ``clock`` (default ``time.monotonic``) so
tests exercise timing behaviour without sleeping.
"""

from __future__ import annotations

import random
import threading
import time
from typing import Callable, Optional

__all__ = ["TokenBucket", "Backoff", "CircuitBreaker"]


class TokenBucket:
    """A thread-safe token bucket: ``rate`` tokens/second, burst ``capacity``.

    ``rate=None`` disables limiting (every acquire succeeds immediately) so
    callers need no conditional around the hot path.
    """

    def __init__(
        self,
        rate: Optional[float],
        capacity: Optional[float] = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        if rate is not None and rate <= 0:
            raise ValueError("rate must be positive (or None to disable)")
        self.rate = rate
        self.capacity = float(capacity if capacity is not None else (rate or 1.0))
        self._tokens = self.capacity
        self._clock = clock
        self._updated = clock()
        self._lock = threading.Lock()

    def _refill(self) -> None:
        now = self._clock()
        elapsed = max(0.0, now - self._updated)
        self._updated = now
        self._tokens = min(self.capacity, self._tokens + elapsed * (self.rate or 0.0))

    def try_acquire(self, tokens: float = 1.0) -> bool:
        """Take ``tokens`` if available right now; never blocks."""
        if self.rate is None:
            return True
        with self._lock:
            self._refill()
            if self._tokens >= tokens:
                self._tokens -= tokens
                return True
            return False

    def wait_time(self, tokens: float = 1.0) -> float:
        """Seconds until ``tokens`` will be available (0 when they are)."""
        if self.rate is None:
            return 0.0
        with self._lock:
            self._refill()
            missing = tokens - self._tokens
            return 0.0 if missing <= 0 else missing / self.rate

    def acquire(self, tokens: float = 1.0, timeout: Optional[float] = None) -> bool:
        """Block (sleeping) until ``tokens`` are available; ``False`` on timeout."""
        deadline = None if timeout is None else self._clock() + timeout
        while True:
            if self.try_acquire(tokens):
                return True
            delay = self.wait_time(tokens)
            if deadline is not None:
                remaining = deadline - self._clock()
                if remaining <= 0:
                    return False
                delay = min(delay, remaining)
            time.sleep(max(delay, 1e-4))


class Backoff:
    """Capped exponential backoff with deterministic jitter.

    ``delay(attempt)`` for attempt 1, 2, 3, … is ``base * 2**(attempt-1)``
    capped at ``cap``, scaled by a jitter factor drawn uniformly from
    ``[1-jitter, 1+jitter]`` from a seeded RNG — reproducible in tests,
    decorrelated across instances in production (seed defaults to the
    instance id).
    """

    def __init__(
        self,
        base: float = 0.05,
        cap: float = 2.0,
        jitter: float = 0.25,
        seed: Optional[int] = None,
    ):
        self.base = base
        self.cap = cap
        self.jitter = jitter
        self._rng = random.Random(seed if seed is not None else id(self))

    def delay(self, attempt: int) -> float:
        raw = min(self.cap, self.base * (2 ** max(0, attempt - 1)))
        if not self.jitter:
            return raw
        return raw * self._rng.uniform(1.0 - self.jitter, 1.0 + self.jitter)


class CircuitBreaker:
    """Closed → open → half-open breaker guarding one flaky dependency.

    * **closed** — normal operation; consecutive failures count up, any
      success resets the count, ``failure_threshold`` consecutive failures
      *trip* the breaker.
    * **open** — :meth:`allow` returns ``False`` (callers skip the
      dependency) until ``reset_timeout`` has elapsed since the trip.
    * **half-open** — one probe call is allowed through; its success closes
      the breaker (counters reset), its failure re-opens it for another
      ``reset_timeout``.

    Thread-safe; ``trips`` counts how often the breaker opened (telemetry).
    """

    def __init__(
        self,
        failure_threshold: int = 5,
        reset_timeout: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
    ):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        self.failure_threshold = failure_threshold
        self.reset_timeout = reset_timeout
        self._clock = clock
        self._lock = threading.Lock()
        self._state = "closed"
        self._failures = 0
        self._opened_at = 0.0
        self._probe_outstanding = False
        self.trips = 0

    @property
    def state(self) -> str:
        """``"closed"``, ``"open"`` or ``"half_open"`` (time-aware)."""
        with self._lock:
            self._maybe_half_open()
            return self._state

    def _maybe_half_open(self) -> None:
        if self._state == "open" and (
            self._clock() - self._opened_at >= self.reset_timeout
        ):
            self._state = "half_open"
            self._probe_outstanding = False

    def allow(self) -> bool:
        """Whether a call may proceed now (half-open grants one probe)."""
        with self._lock:
            self._maybe_half_open()
            if self._state == "closed":
                return True
            if self._state == "half_open" and not self._probe_outstanding:
                self._probe_outstanding = True
                return True
            return False

    def record_success(self) -> None:
        with self._lock:
            self._state = "closed"
            self._failures = 0
            self._probe_outstanding = False

    def record_failure(self) -> None:
        with self._lock:
            self._maybe_half_open()
            if self._state == "half_open":
                # The probe failed: straight back to open, full timeout.
                self._state = "open"
                self._opened_at = self._clock()
                self.trips += 1
                self._probe_outstanding = False
                return
            self._failures += 1
            if self._state == "closed" and self._failures >= self.failure_threshold:
                self._state = "open"
                self._opened_at = self._clock()
                self.trips += 1
