"""Continuous lake ingestion: the crawler front-end of the KG Governor.

The governor and its service wait to be handed
:class:`~repro.tabular.Table` objects; a production lake is a living,
partially-broken thing.  This package turns governance into a
continuously-running daemon over such a lake:

* :mod:`repro.crawler.sources` — the :class:`Source` protocol
  (``scan`` → :class:`TableRef`\\ s, ``load`` → ``Table``) and
  :class:`DirectorySource` for local CSV/JSON trees;
* :mod:`repro.crawler.robustness` — :class:`TokenBucket` rate limiting,
  capped+jittered :class:`Backoff`, and the :class:`CircuitBreaker`
  state machine;
* :mod:`repro.crawler.chaos` — :class:`ChaosSource`, a fault-injecting
  wrapper (truncated / unreadable / malformed / slow files, flapping
  sources, mid-crawl deletes) for proving the daemon survives a
  misbehaving lake;
* :mod:`repro.crawler.crawler` — :class:`LakeCrawler`, the daemon:
  discover, diff, prioritize, rate-limit, retry, quarantine, submit.
"""

from repro.crawler.chaos import ChaosConfig, ChaosSource
from repro.crawler.crawler import LakeCrawler
from repro.crawler.robustness import Backoff, CircuitBreaker, TokenBucket
from repro.crawler.sources import DirectorySource, Source, TableRef

__all__ = [
    "LakeCrawler",
    "Source",
    "TableRef",
    "DirectorySource",
    "ChaosSource",
    "ChaosConfig",
    "TokenBucket",
    "Backoff",
    "CircuitBreaker",
]
