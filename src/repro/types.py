"""Shared constants: the fine-grained column data types of KGLiDS.

The profiler classifies every column into one of seven fine-grained types
(Section 3.2); pairwise column comparison, CoLR models and the GNN feature
layout all key on these names, so they live in one place.
"""

#: Numeric integers.
TYPE_INT = "int"
#: Numeric floats.
TYPE_FLOAT = "float"
#: Boolean columns (content similarity uses the true-ratio, not CoLR).
TYPE_BOOLEAN = "boolean"
#: Date / timestamp columns.
TYPE_DATE = "date"
#: Named entities (persons, countries, organizations, ...).
TYPE_NAMED_ENTITY = "named_entity"
#: Free natural-language text (reviews, comments, ...).
TYPE_NATURAL_LANGUAGE = "natural_language"
#: Generic strings that fit none of the above (codes, IDs, ...).
TYPE_STRING = "string"

#: All seven fine-grained types, in the canonical order used for reporting
#: (matches the row order of Table 1).
FINE_GRAINED_TYPES = (
    TYPE_INT,
    TYPE_FLOAT,
    TYPE_BOOLEAN,
    TYPE_DATE,
    TYPE_NAMED_ENTITY,
    TYPE_NATURAL_LANGUAGE,
    TYPE_STRING,
)

#: The six types that have CoLR embedding models (booleans are compared via
#: their true-ratio instead); order defines the layout of the concatenated
#: 1800-dimensional table embeddings used to initialize the GNN models.
COLR_TYPES = (
    TYPE_INT,
    TYPE_FLOAT,
    TYPE_DATE,
    TYPE_NAMED_ENTITY,
    TYPE_NATURAL_LANGUAGE,
    TYPE_STRING,
)
