"""Discovery-benchmark data lakes with exact unionability ground truth.

The TUS and SANTOS benchmarks were built by randomly partitioning real tables
horizontally and vertically; the D3L benchmark contains real tables manually
annotated with their related tables.  The generator follows the same recipe
at laptop scale: every benchmark table is a partition of some domain base
table, two tables are unionable iff they descend from the same base table,
and the harder styles rename columns to synonyms and convert units so that
label and content similarity are both exercised.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.datagen.base_tables import DOMAINS, ColumnSpec, domain_column_specs
from repro.tabular import Column, DataLake, Table

#: Benchmark styles mirroring the paper's four discovery benchmarks (scaled
#: down): name -> (number of base tables, partitions per base table, rows per
#: base table, hardness).
BENCHMARK_STYLES: Dict[str, Dict[str, object]] = {
    "d3l_small": {"base_tables": 6, "partitions": 4, "rows": 160, "hard": True},
    "tus_small": {"base_tables": 8, "partitions": 4, "rows": 120, "hard": False},
    "santos_small": {"base_tables": 5, "partitions": 3, "rows": 100, "hard": False},
    "santos_large": {"base_tables": 12, "partitions": 6, "rows": 140, "hard": False},
}


@dataclass
class DiscoveryBenchmark:
    """A generated benchmark: the lake, its query tables and the ground truth."""

    name: str
    lake: DataLake
    query_tables: List[Tuple[str, str]] = field(default_factory=list)
    #: ``(dataset, table) -> set of (dataset, table)`` unionable with it.
    ground_truth: Dict[Tuple[str, str], Set[Tuple[str, str]]] = field(default_factory=dict)

    @property
    def num_tables(self) -> int:
        return self.lake.num_tables

    def average_unionable_per_query(self) -> float:
        if not self.query_tables:
            return 0.0
        return float(
            np.mean([len(self.ground_truth.get(query, set())) for query in self.query_tables])
        )


def generate_discovery_benchmark(
    style: str = "tus_small",
    seed: int = 0,
    base_tables: Optional[int] = None,
    partitions: Optional[int] = None,
    rows: Optional[int] = None,
) -> DiscoveryBenchmark:
    """Generate one discovery benchmark in the requested style.

    ``base_tables`` / ``partitions`` / ``rows`` override the style defaults so
    tests can shrink the workload further.
    """
    if style not in BENCHMARK_STYLES:
        raise ValueError(f"unknown benchmark style {style!r}; available: {sorted(BENCHMARK_STYLES)}")
    config = BENCHMARK_STYLES[style]
    n_base = base_tables if base_tables is not None else int(config["base_tables"])
    n_partitions = partitions if partitions is not None else int(config["partitions"])
    n_rows = rows if rows is not None else int(config["rows"])
    hard = bool(config["hard"])
    rng = np.random.RandomState(seed)
    lake = DataLake(name=style)
    domains = sorted(DOMAINS)
    members: Dict[int, List[Tuple[str, str]]] = {}
    for base_index in range(n_base):
        domain = domains[base_index % len(domains)]
        specs = domain_column_specs(domain)
        base_seed = seed * 1000 + base_index
        base_values = _generate_base_values(specs, n_rows, base_seed)
        dataset_name = f"{domain}_{base_index}"
        members[base_index] = []
        for partition_index in range(n_partitions):
            table = _make_partition(
                specs,
                base_values,
                base_index,
                partition_index,
                dataset_name,
                hard=hard,
                rng=rng,
            )
            lake.add_table(dataset_name, table)
            members[base_index].append((dataset_name, table.name))
    ground_truth: Dict[Tuple[str, str], Set[Tuple[str, str]]] = {}
    for group in members.values():
        for table_key in group:
            ground_truth[table_key] = {other for other in group if other != table_key}
    query_tables = [group[0] for group in members.values()]
    return DiscoveryBenchmark(
        name=style, lake=lake, query_tables=query_tables, ground_truth=ground_truth
    )


def _generate_base_values(specs: Sequence[ColumnSpec], n_rows: int, seed: int) -> Dict[str, List]:
    rng = np.random.RandomState(seed)
    return {spec.name: list(spec.generator(rng, n_rows)) for spec in specs}


def _make_partition(
    specs: Sequence[ColumnSpec],
    base_values: Dict[str, List],
    base_index: int,
    partition_index: int,
    dataset_name: str,
    hard: bool,
    rng: np.random.RandomState,
) -> Table:
    """One horizontal + vertical partition of a base table.

    The first partition keeps the original schema (it acts as the query
    table); later partitions drop a random subset of columns, and in the hard
    (D3L-style) setting also rename kept columns to synonyms and rescale
    numeric columns by a unit factor.
    """
    n_rows = len(next(iter(base_values.values())))
    row_fraction = 1.0 if partition_index == 0 else float(rng.uniform(0.45, 0.85))
    keep_rows = max(10, int(row_fraction * n_rows))
    row_indices = rng.choice(n_rows, size=keep_rows, replace=False)
    table = Table(f"table_{base_index}_{partition_index}", dataset=dataset_name)
    for position, spec in enumerate(specs):
        drop_probability = 0.0 if partition_index == 0 else 0.25
        if position > 0 and rng.rand() < drop_probability:
            continue
        values = [base_values[spec.name][i] for i in row_indices]
        column_name = spec.name
        if hard and partition_index > 0 and spec.synonyms and rng.rand() < 0.6:
            column_name = str(rng.choice(list(spec.synonyms)))
        if hard and partition_index > 0 and len(spec.unit_factors) > 1 and rng.rand() < 0.5:
            factor = spec.unit_factors[1]
            values = [
                float(round(v * factor, 3)) if isinstance(v, (int, float)) and not isinstance(v, bool) else v
                for v in values
            ]
        table.add_column(Column(column_name, values))
    return table
