"""Classification datasets for the cleaning / transformation / AutoML experiments.

Each generated dataset is a :class:`~repro.tabular.Table` with a ``target``
column and controllable difficulty knobs: missing-value rate (cleaning),
feature skew and scale spread (transformation), number of classes and size
(AutoML).  The informative features are linear/threshold functions of the
target plus noise, so a random-forest downstream model has signal to find and
the relative effect of cleaning / transformation choices is measurable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.tabular import Column, Table


@dataclass
class TaskDataset:
    """A benchmark dataset: the table, its target column and its metadata."""

    dataset_id: int
    name: str
    table: Table
    target: str
    task: str  # "binary" or "multiclass"

    @property
    def size_cells(self) -> int:
        return self.table.num_rows * self.table.num_columns


def generate_classification_dataset(
    name: str,
    n_rows: int = 200,
    n_features: int = 6,
    n_classes: int = 2,
    missing_rate: float = 0.0,
    skewed_features: int = 0,
    scale_spread: float = 1.0,
    categorical_features: int = 1,
    seed: int = 0,
) -> Tuple[Table, str]:
    """Generate one classification dataset; returns ``(table, target name)``.

    * ``missing_rate`` — fraction of numeric cells set to missing.
    * ``skewed_features`` — number of features passed through ``exp`` so a
      log/sqrt transform helps.
    * ``scale_spread`` — multiplicative spread of feature scales (1.0 means
      all features share a scale; larger values make scaling matter).
    * ``categorical_features`` — number of extra categorical (string) columns.
    """
    rng = np.random.RandomState(seed)
    y = rng.randint(0, n_classes, size=n_rows)
    table = Table(name)
    for j in range(n_features):
        signal = (y == (j % n_classes)).astype(float)
        base = signal * rng.uniform(0.8, 2.0) + rng.normal(scale=1.0, size=n_rows)
        if j < skewed_features:
            base = np.exp(np.abs(base))
        scale = scale_spread ** (j % 4)
        values = base * scale
        if missing_rate > 0.0:
            mask = rng.rand(n_rows) < missing_rate
            column_values = [None if mask[i] else float(round(values[i], 4)) for i in range(n_rows)]
        else:
            column_values = [float(round(v, 4)) for v in values]
        table.add_column(Column(f"feature_{j}", column_values))
    categories = ["alpha", "beta", "gamma", "delta"]
    for j in range(categorical_features):
        assignments = [
            categories[(label + rng.randint(0, 2)) % len(categories)] for label in y
        ]
        table.add_column(Column(f"category_{j}", assignments))
    table.add_column(Column("target", [int(label) for label in y]))
    return table, "target"


def generate_cleaning_datasets(
    count: int = 13, seed: int = 0, base_rows: int = 150
) -> List[TaskDataset]:
    """The data-cleaning benchmark datasets (Table 5): increasing sizes, nulls.

    The last three datasets are substantially larger — they play the role of
    ``higgs`` / ``APSFailure`` / ``albert``, the datasets on which HoloClean
    runs out of memory in the paper.
    """
    datasets: List[TaskDataset] = []
    for i in range(count):
        if i >= count - 3:
            n_rows = base_rows * (6 + 4 * (i - (count - 3)))
            n_features = 10
        else:
            n_rows = base_rows + 40 * i
            n_features = 5 + (i % 4)
        table, target = generate_classification_dataset(
            name=f"cleaning_{i + 1}",
            n_rows=n_rows,
            n_features=n_features,
            n_classes=2 if i % 3 else 3,
            missing_rate=0.12 + 0.02 * (i % 4),
            categorical_features=1,
            seed=seed + i,
        )
        datasets.append(
            TaskDataset(
                dataset_id=i + 1,
                name=table.name,
                table=table,
                target=target,
                task="binary" if i % 3 else "multiclass",
            )
        )
    return datasets


def generate_transformation_datasets(
    count: int = 17, seed: int = 100, base_rows: int = 150
) -> List[TaskDataset]:
    """The data-transformation benchmark datasets (Table 6): skew + scale spread."""
    datasets: List[TaskDataset] = []
    for i in range(count):
        n_rows = base_rows + 35 * i
        n_features = 5 + (i % 5)
        table, target = generate_classification_dataset(
            name=f"transform_{i + 1}",
            n_rows=n_rows,
            n_features=n_features,
            n_classes=2 if i % 2 else 3,
            skewed_features=1 + (i % 3),
            scale_spread=10.0 if i % 2 else 100.0,
            categorical_features=1,
            seed=seed + i,
        )
        datasets.append(
            TaskDataset(
                dataset_id=i + 1,
                name=table.name,
                table=table,
                target=target,
                task="binary" if i % 2 else "multiclass",
            )
        )
    return datasets


def generate_automl_datasets(
    count: int = 24, seed: int = 200, base_rows: int = 140
) -> List[TaskDataset]:
    """The AutoML benchmark datasets (Figure 9): a binary/multiclass mix."""
    datasets: List[TaskDataset] = []
    for i in range(count):
        multiclass = i % 2 == 1
        table, target = generate_classification_dataset(
            name=f"automl_{i + 1}",
            n_rows=base_rows + 20 * (i % 6),
            n_features=5 + (i % 6),
            n_classes=3 if multiclass else 2,
            skewed_features=i % 2,
            scale_spread=5.0,
            categorical_features=1 + (i % 2),
            seed=seed + i,
        )
        datasets.append(
            TaskDataset(
                dataset_id=i + 1,
                name=table.name,
                table=table,
                target=target,
                task="multiclass" if multiclass else "binary",
            )
        )
    return datasets
