"""Synthetic workload generators for the evaluation.

The paper evaluates on Kaggle datasets/pipelines and on public discovery
benchmarks (D3L Small, TUS Small, SANTOS Small/Large), none of which can be
downloaded offline.  This package generates laptop-scale stand-ins with the
same construction recipe: domain base tables are partitioned horizontally and
vertically (with column renaming and unit conversion for the harder,
D3L-style variant) to yield data lakes with exact unionability ground truth;
pipeline scripts are generated from realistic templates over those datasets;
classification datasets with injected missing values, skew and scale spread
support the cleaning / transformation / AutoML experiments.
"""

from repro.datagen.base_tables import DOMAINS, generate_base_table
from repro.datagen.data_lake import DiscoveryBenchmark, generate_discovery_benchmark
from repro.datagen.pipelines_corpus import generate_pipeline_corpus
from repro.datagen.tasks import (
    generate_automl_datasets,
    generate_classification_dataset,
    generate_cleaning_datasets,
    generate_transformation_datasets,
)

__all__ = [
    "DOMAINS",
    "generate_base_table",
    "DiscoveryBenchmark",
    "generate_discovery_benchmark",
    "generate_pipeline_corpus",
    "generate_classification_dataset",
    "generate_cleaning_datasets",
    "generate_transformation_datasets",
    "generate_automl_datasets",
]
