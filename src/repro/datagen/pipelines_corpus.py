"""Synthetic Kaggle-style pipeline script corpus.

The corpus generator produces Python scripts from realistic templates: read a
dataset with pandas, optionally impute missing values, optionally scale and
transform features, split, train a model and evaluate it — plus occasional
EDA / visualization statements.  Library usage frequencies are weighted so
that the top-10 ranking of Figure 4 (pandas > matplotlib > sklearn > plotly >
scipy > xgboost > wordcloud > IPython > nltk > statsmodels) is reproduced at
scale, and metadata (votes, task, author) mirrors what the Kaggle portal
provides.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.pipelines.abstraction import PipelineScript
from repro.tabular import DataLake, Table

#: Probability that a pipeline uses each library at least once.  These are
#: tuned to reproduce the relative ranking of Figure 4 (pandas appears in
#: ~96% of pipelines, statsmodels in ~6%).
LIBRARY_USAGE_PROBABILITIES: Dict[str, float] = {
    "pandas": 0.96,
    "matplotlib": 0.81,
    "sklearn": 0.54,
    "plotly": 0.20,
    "scipy": 0.11,
    "xgboost": 0.07,
    "wordcloud": 0.066,
    "IPython": 0.065,
    "nltk": 0.056,
    "statsmodels": 0.054,
}

_CLEANING_SNIPPETS: List[Tuple[str, str]] = [
    ("Fillna", "df = df.fillna(0)"),
    ("Interpolate", "df = df.interpolate()"),
    (
        "SimpleImputer",
        "from sklearn.impute import SimpleImputer\n"
        "imputer = SimpleImputer(strategy='mean')\n"
        "df[num_cols] = imputer.fit_transform(df[num_cols])",
    ),
    (
        "KNNImputer",
        "from sklearn.impute import KNNImputer\n"
        "imputer = KNNImputer(n_neighbors=5)\n"
        "df[num_cols] = imputer.fit_transform(df[num_cols])",
    ),
    (
        "IterativeImputer",
        "from sklearn.impute import IterativeImputer\n"
        "imputer = IterativeImputer(max_iter=10)\n"
        "df[num_cols] = imputer.fit_transform(df[num_cols])",
    ),
]

_SCALING_SNIPPETS: List[Tuple[str, str]] = [
    (
        "StandardScaler",
        "from sklearn.preprocessing import StandardScaler\n"
        "scaler = StandardScaler()\n"
        "X[num_cols] = scaler.fit_transform(X[num_cols])",
    ),
    (
        "MinMaxScaler",
        "from sklearn.preprocessing import MinMaxScaler\n"
        "scaler = MinMaxScaler()\n"
        "X[num_cols] = scaler.fit_transform(X[num_cols])",
    ),
    (
        "RobustScaler",
        "from sklearn.preprocessing import RobustScaler\n"
        "scaler = RobustScaler()\n"
        "X[num_cols] = scaler.fit_transform(X[num_cols])",
    ),
]

_UNARY_SNIPPETS: List[Tuple[str, str]] = [
    ("log", "X['{column}'] = np.log1p(X['{column}'])"),
    ("sqrt", "X['{column}'] = np.sqrt(X['{column}'])"),
]

_MODEL_SNIPPETS: List[Tuple[str, str, str]] = [
    (
        "sklearn.ensemble.RandomForestClassifier",
        "from sklearn.ensemble import RandomForestClassifier",
        "model = RandomForestClassifier({n_estimators}, max_depth={max_depth})",
    ),
    (
        "sklearn.linear_model.LogisticRegression",
        "from sklearn.linear_model import LogisticRegression",
        "model = LogisticRegression(C={C}, max_iter=200)",
    ),
    (
        "sklearn.ensemble.GradientBoostingClassifier",
        "from sklearn.ensemble import GradientBoostingClassifier",
        "model = GradientBoostingClassifier(n_estimators={n_estimators}, learning_rate={learning_rate})",
    ),
    (
        "xgboost.XGBClassifier",
        "import xgboost",
        "model = xgboost.XGBClassifier(n_estimators={n_estimators}, max_depth={max_depth}, learning_rate={learning_rate})",
    ),
    (
        "sklearn.neighbors.KNeighborsClassifier",
        "from sklearn.neighbors import KNeighborsClassifier",
        "model = KNeighborsClassifier(n_neighbors={n_neighbors})",
    ),
]

_EXTRA_LIBRARY_SNIPPETS: Dict[str, str] = {
    "matplotlib": "import matplotlib.pyplot as plt\nplt.hist(df['{column}'], bins=20)\nplt.show()",
    "plotly": "import plotly.express as px\nfig = px.scatter(df, x='{column}', y='{target}')",
    "scipy": "import scipy.stats as stats\nz = stats.zscore(df['{column}'])",
    "wordcloud": "from wordcloud import WordCloud\ncloud = WordCloud(width=400, height=200)",
    "IPython": "from IPython.display import display\ndisplay(df)",
    "nltk": "import nltk\ntokens = nltk.word_tokenize('exploratory analysis of the dataset')",
    "statsmodels": "import statsmodels.api as sm\nols = sm.OLS(df['{target}'], df[num_cols])",
}


def generate_pipeline_script(
    dataset_name: str,
    table: Table,
    target: str,
    pipeline_index: int,
    rng: np.random.RandomState,
) -> PipelineScript:
    """Generate one pipeline script over a concrete table."""
    numeric_columns = [name for name in table.numeric_column_names() if name != target] or [target]
    feature_column = str(rng.choice(numeric_columns))
    lines: List[str] = ["import pandas as pd", "import numpy as np"]
    lines.append(f"df = pd.read_csv('{dataset_name}/{table.name}.csv')")
    lines.append(f"num_cols = {numeric_columns!r}")
    used_operations: Dict[str, str] = {}
    # Roughly half of real Kaggle notebooks never reach the modelling stage;
    # generating EDA-only pipelines keeps the sklearn usage share at the level
    # Figure 4 reports (~54% of pipelines) instead of 100%.
    if rng.rand() < 0.45:
        used_operations["kind"] = "eda"
        for library, probability in LIBRARY_USAGE_PROBABILITIES.items():
            if library in ("pandas", "sklearn"):
                continue
            if rng.rand() < probability and library in _EXTRA_LIBRARY_SNIPPETS:
                lines.append(
                    _EXTRA_LIBRARY_SNIPPETS[library].format(column=feature_column, target=target)
                )
        source = "\n".join(lines)
        script = PipelineScript(
            pipeline_id=f"{dataset_name}_pipeline_{pipeline_index}",
            source_code=source,
            dataset_name=dataset_name,
            author=f"user_{rng.randint(1, 500)}",
            votes=int(rng.randint(0, 80)),
            score=None,
            task="eda",
            date=f"202{rng.randint(0, 4)}-{rng.randint(1, 13):02d}-{rng.randint(1, 29):02d}",
        )
        script.generated_operations = used_operations  # type: ignore[attr-defined]
        return script
    used_operations["kind"] = "modelling"
    if rng.rand() < 0.7:
        operation, snippet = _CLEANING_SNIPPETS[rng.randint(len(_CLEANING_SNIPPETS))]
        used_operations["cleaning"] = operation
        lines.append(snippet)
    lines.append(f"X, y = df.drop('{target}', axis=1), df['{target}']")
    if rng.rand() < 0.75:
        operation, snippet = _SCALING_SNIPPETS[rng.randint(len(_SCALING_SNIPPETS))]
        used_operations["scaling"] = operation
        lines.append(snippet)
    if rng.rand() < 0.4:
        operation, snippet = _UNARY_SNIPPETS[rng.randint(len(_UNARY_SNIPPETS))]
        used_operations["unary"] = operation
        lines.append(snippet.format(column=feature_column))
    lines.append("from sklearn.model_selection import train_test_split")
    lines.append("X_train, X_test, y_train, y_test = train_test_split(X, y, test_size=0.2)")
    estimator_name, import_line, model_line = _MODEL_SNIPPETS[rng.randint(len(_MODEL_SNIPPETS))]
    used_operations["estimator"] = estimator_name
    lines.append(import_line)
    # Hyperparameter values mirror what experienced Kaggle users actually pass
    # (reasonably large ensembles, sensible depths); this is the accumulated
    # knowledge the revised KGpip pipeline mines as search priors.
    lines.append(
        model_line.format(
            n_estimators=int(rng.choice([40, 80])),
            max_depth=int(rng.choice([8, 12, 16])),
            C=float(rng.choice([1.0, 10.0])),
            learning_rate=float(rng.choice([0.1, 0.3])),
            n_neighbors=int(rng.choice([5, 9])),
        )
    )
    lines.append("model.fit(X_train, y_train)")
    lines.append("from sklearn.metrics import accuracy_score, f1_score")
    lines.append("print(accuracy_score(y_test, model.predict(X_test)))")
    for library, probability in LIBRARY_USAGE_PROBABILITIES.items():
        if library in ("pandas", "sklearn"):
            continue
        if library == "matplotlib":
            include = rng.rand() < probability
        else:
            include = rng.rand() < probability
        if include and library in _EXTRA_LIBRARY_SNIPPETS:
            lines.append(_EXTRA_LIBRARY_SNIPPETS[library].format(column=feature_column, target=target))
    source = "\n".join(lines)
    script = PipelineScript(
        pipeline_id=f"{dataset_name}_pipeline_{pipeline_index}",
        source_code=source,
        dataset_name=dataset_name,
        author=f"user_{rng.randint(1, 500)}",
        votes=int(rng.randint(0, 200)),
        score=float(round(rng.uniform(0.6, 0.99), 3)),
        task="classification",
        date=f"202{rng.randint(0, 4)}-{rng.randint(1, 13):02d}-{rng.randint(1, 29):02d}",
    )
    # Attach the generating operations so experiments can use them as ground truth.
    script.generated_operations = used_operations  # type: ignore[attr-defined]
    return script


def generate_pipeline_corpus(
    lake: DataLake,
    pipelines_per_table: int = 3,
    target_by_table: Optional[Dict[Tuple[str, str], str]] = None,
    seed: int = 0,
) -> List[PipelineScript]:
    """Generate a corpus of pipeline scripts over the tables of a data lake.

    ``target_by_table`` optionally fixes the modelling target per table;
    otherwise the last boolean/int column is used.
    """
    rng = np.random.RandomState(seed)
    scripts: List[PipelineScript] = []
    index = 0
    for dataset in lake.datasets:
        for table in dataset.tables:
            target = None
            if target_by_table:
                target = target_by_table.get((dataset.name, table.name))
            if target is None:
                candidates = [
                    column.name for column in table.columns if column.dtype in ("bool", "int")
                ]
                target = candidates[-1] if candidates else table.column_names[-1]
            for _ in range(pipelines_per_table):
                scripts.append(
                    generate_pipeline_script(dataset.name, table, target, index, rng)
                )
                index += 1
    return scripts
