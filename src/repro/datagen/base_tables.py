"""Domain base tables: the raw material of the synthetic data lakes.

Each domain defines a set of columns with a semantic generator (ages, fares,
person names, cities, review text, ...) and a list of rename synonyms so that
partitioned copies can carry different but semantically related column names
— exactly the situation label similarity has to handle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.tabular import Column, Table

_FIRST_NAMES = [
    "James", "Mary", "Robert", "Patricia", "John", "Jennifer", "Michael",
    "Linda", "David", "Elizabeth", "William", "Barbara", "Richard", "Susan",
    "Ahmed", "Fatima", "Omar", "Layla", "Wei", "Sofia", "Mateo", "Valentina",
]
_LAST_NAMES = [
    "Smith", "Johnson", "Williams", "Brown", "Jones", "Garcia", "Miller",
    "Davis", "Martinez", "Lopez", "Wilson", "Anderson", "Taylor", "Thomas",
    "Lee", "Walker", "Young", "King", "Khan", "Singh", "Patel", "Chen",
]
_COUNTRIES = [
    "Canada", "Austria", "Egypt", "Germany", "France", "Spain", "Portugal",
    "Italy", "Japan", "China", "India", "Brazil", "Mexico", "Kenya", "Ghana",
]
_CITIES = [
    "Montreal", "Toronto", "Vienna", "Cairo", "Berlin", "Paris", "Madrid",
    "Lisbon", "Rome", "Tokyo", "Beijing", "Mumbai", "Boston", "Chicago",
]
_POSITIVE_PHRASES = [
    "the product is excellent and I would recommend it to other people",
    "great quality for the price and the service was amazing",
    "I love this one because it works well and looks good",
    "very good experience overall and I will come back for more",
]
_NEGATIVE_PHRASES = [
    "terrible quality and the service was poor so I do not recommend it",
    "this was a bad experience and the product did not work at all",
    "I hate how it broke after one week of use and support was useless",
    "not worth the price because the quality is much worse than expected",
]
_GENRES = ["action", "puzzle", "strategy", "arcade", "sports", "racing"]


def _person_names(rng: np.random.RandomState, n: int) -> List[str]:
    return [f"{rng.choice(_FIRST_NAMES)} {rng.choice(_LAST_NAMES)}" for _ in range(n)]


def _dates(rng: np.random.RandomState, n: int, start_year: int = 2010) -> List[str]:
    return [
        f"{start_year + int(rng.randint(0, 10))}-{int(rng.randint(1, 13)):02d}-{int(rng.randint(1, 29)):02d}"
        for _ in range(n)
    ]


def _reviews(rng: np.random.RandomState, n: int) -> List[str]:
    phrases = _POSITIVE_PHRASES + _NEGATIVE_PHRASES
    return [str(rng.choice(phrases)) for _ in range(n)]


def _codes(rng: np.random.RandomState, n: int, prefix: str = "ID") -> List[str]:
    return [f"{prefix}{int(rng.randint(10000, 99999))}" for _ in range(n)]


@dataclass
class ColumnSpec:
    """One column of a domain: name, generator and rename synonyms."""

    name: str
    generator: Callable[[np.random.RandomState, int], Sequence]
    synonyms: Tuple[str, ...] = ()
    #: Multiplicative factors simulating unit conversion in renamed copies.
    unit_factors: Tuple[float, ...] = (1.0,)


def _numeric(loc: float, scale: float, integer: bool = False, positive: bool = True):
    def generate(rng: np.random.RandomState, n: int):
        values = rng.normal(loc=loc, scale=scale, size=n)
        if positive:
            values = np.abs(values)
        if integer:
            return [int(v) for v in np.round(values)]
        return [float(round(v, 3)) for v in values]

    return generate


def _skewed(scale: float):
    def generate(rng: np.random.RandomState, n: int):
        return [float(round(v, 3)) for v in rng.exponential(scale=scale, size=n)]

    return generate


def _binary(p: float = 0.5):
    def generate(rng: np.random.RandomState, n: int):
        return [int(v) for v in (rng.rand(n) < p).astype(int)]

    return generate


def _categorical(options: Sequence[str]):
    def generate(rng: np.random.RandomState, n: int):
        return [str(rng.choice(list(options))) for _ in range(n)]

    return generate


#: The domain catalogue (datasets of "health, economics, games, and product
#: reviews", matching the domains the paper's Kaggle corpus covers).
DOMAINS: Dict[str, List[ColumnSpec]] = {
    "health": [
        ColumnSpec("patient_name", _person_names, ("full_name", "name")),
        ColumnSpec("age", _numeric(54, 12, integer=True), ("patient_age", "age_years")),
        ColumnSpec("sex", _categorical(["male", "female"]), ("gender",)),
        ColumnSpec("blood_pressure", _numeric(130, 18), ("resting_bp", "bp")),
        ColumnSpec("cholesterol", _numeric(240, 45), ("chol", "serum_cholesterol")),
        ColumnSpec("max_heart_rate", _numeric(150, 22, integer=True), ("thalach", "heart_rate")),
        ColumnSpec("admission_date", _dates, ("visit_date", "date")),
        ColumnSpec("hospital_city", _categorical(_CITIES), ("city", "location")),
        ColumnSpec("smoker", _binary(0.3), ("is_smoker",)),
        ColumnSpec("target", _binary(0.45), ("disease", "outcome")),
    ],
    "economics": [
        ColumnSpec("country", _categorical(_COUNTRIES), ("nation", "country_name")),
        ColumnSpec("year", _numeric(2012, 5, integer=True), ("fiscal_year",)),
        ColumnSpec("gdp_billion_usd", _skewed(800.0), ("gdp", "gross_domestic_product"), (1.0, 0.92)),
        ColumnSpec("population_million", _skewed(60.0), ("population", "pop_millions")),
        ColumnSpec("unemployment_rate", _numeric(7.5, 2.5), ("jobless_rate",)),
        ColumnSpec("inflation_rate", _numeric(3.1, 1.4), ("cpi_change",)),
        ColumnSpec("median_income", _numeric(42000, 9000), ("income", "household_income"), (1.0, 1.35)),
        ColumnSpec("report_date", _dates, ("published_date",)),
        ColumnSpec("is_oecd_member", _binary(0.5), ("oecd",)),
    ],
    "games": [
        ColumnSpec("player_name", _person_names, ("gamer", "username")),
        ColumnSpec("game_genre", _categorical(_GENRES), ("genre", "category")),
        ColumnSpec("score", _skewed(5000.0), ("points", "high_score")),
        ColumnSpec("play_time_hours", _skewed(40.0), ("hours_played", "playtime"), (1.0, 60.0)),
        ColumnSpec("level", _numeric(30, 12, integer=True), ("stage", "rank_level")),
        ColumnSpec("release_date", _dates, ("launch_date",)),
        ColumnSpec("multiplayer", _binary(0.6), ("is_multiplayer",)),
        ColumnSpec("win", _binary(0.5), ("victory", "won")),
    ],
    "reviews": [
        ColumnSpec("reviewer_name", _person_names, ("customer", "author_name")),
        ColumnSpec("product_id", _codes, ("item_id", "sku")),
        ColumnSpec("review_text", _reviews, ("comment", "feedback")),
        ColumnSpec("rating", _numeric(3.4, 1.1), ("stars", "score_rating")),
        ColumnSpec("price_usd", _skewed(80.0), ("price", "cost_dollars"), (1.0, 0.79)),
        ColumnSpec("review_date", _dates, ("posted_on",)),
        ColumnSpec("verified_purchase", _binary(0.7), ("verified",)),
        ColumnSpec("recommended", _binary(0.55), ("would_recommend", "target")),
    ],
    "transport": [
        ColumnSpec("driver_name", _person_names, ("operator", "name")),
        ColumnSpec("origin_city", _categorical(_CITIES), ("from_city", "departure_city")),
        ColumnSpec("destination_city", _categorical(_CITIES), ("to_city", "arrival_city")),
        ColumnSpec("distance_km", _skewed(300.0), ("distance", "trip_length_miles"), (1.0, 0.62)),
        ColumnSpec("duration_minutes", _skewed(180.0), ("trip_time", "duration")),
        ColumnSpec("fare", _skewed(45.0), ("price", "cost")),
        ColumnSpec("trip_date", _dates, ("date",)),
        ColumnSpec("on_time", _binary(0.8), ("arrived_on_time",)),
    ],
}


def generate_base_table(
    domain: str,
    name: str,
    n_rows: int = 120,
    seed: int = 0,
    dataset: str = "",
    column_subset: Optional[Sequence[str]] = None,
) -> Table:
    """Generate one base table for a domain."""
    if domain not in DOMAINS:
        raise ValueError(f"unknown domain {domain!r}; available: {sorted(DOMAINS)}")
    rng = np.random.RandomState(seed)
    table = Table(name, dataset=dataset)
    for spec in DOMAINS[domain]:
        if column_subset is not None and spec.name not in column_subset:
            continue
        table.add_column(Column(spec.name, spec.generator(rng, n_rows)))
    return table


def domain_column_specs(domain: str) -> List[ColumnSpec]:
    """The column specifications of a domain (used by the lake generator)."""
    if domain not in DOMAINS:
        raise ValueError(f"unknown domain {domain!r}; available: {sorted(DOMAINS)}")
    return list(DOMAINS[domain])
