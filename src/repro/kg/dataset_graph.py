"""The Data Global Schema Builder (Algorithm 3).

Given column profiles produced by the profiler, the builder writes two kinds
of content into the dataset named graph:

* **metadata subgraphs** — dataset / table / column nodes with their
  statistics as data properties;
* **similarity edges** — for every pair of columns of the same fine-grained
  type in different tables, label similarity (word embeddings over column
  names, threshold ``alpha``), and content similarity (CoLR embedding cosine,
  threshold ``theta``, or true-ratio difference for booleans, threshold
  ``beta``), each annotated with its score via RDF-star.

From the column similarity edges the builder derives table-level
``unionableWith`` / ``joinableWith`` edges whose score combines the number of
matching columns and their similarity scores.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.embeddings.colr import cosine_similarity
from repro.embeddings.index import FlatIndex, HNSWIndex
from repro.embeddings.words import WordEmbeddingModel, default_word_model, tokenize_label
from repro.kg.ontology import (
    DATASET_GRAPH,
    LiDSOntology,
    column_uri,
    dataset_uri,
    source_uri,
    table_uri,
)
from repro.parallel import JobExecutor
from repro.profiler.profile import ColumnProfile, TableProfile
from repro.rdf import Literal, QuadStore, RDF, RDFS, URIRef
from repro.types import TYPE_BOOLEAN


@dataclass
class SimilarityThresholds:
    """The user-defined thresholds of Algorithm 3.

    ``alpha`` gates label similarity, ``beta`` gates boolean true-ratio
    similarity and ``theta`` gates CoLR content similarity.  Higher values
    produce fewer but more precise edges.
    """

    alpha: float = 0.80
    beta: float = 0.90
    theta: float = 0.985


@dataclass
class ColumnSimilarityEdge:
    """A materialized column similarity relationship."""

    column_a: str  # column id "dataset/table/column"
    column_b: str
    kind: str  # "label" or "content"
    score: float


@dataclass
class IncrementalBuildPlan:
    """The pure-compute half of an incremental build, ready to be applied.

    Produced by :meth:`DataGlobalSchemaBuilder.plan_incremental` without
    touching the store, so the expensive similarity scoring can run while
    readers keep querying; :meth:`DataGlobalSchemaBuilder.apply_incremental`
    then writes everything inside one short commit batch.
    """

    edges: List[ColumnSimilarityEdge]
    table_scores: Dict[Tuple[str, str, str], float]


class DataGlobalSchemaBuilder:
    """Builds the dataset graph from table profiles (Algorithm 3)."""

    def __init__(
        self,
        thresholds: Optional[SimilarityThresholds] = None,
        word_model: Optional[WordEmbeddingModel] = None,
        use_label_similarity: bool = True,
        use_content_similarity: bool = True,
        executor: Optional[JobExecutor] = None,
        source_name: str = "data_lake",
        vectorized: bool = True,
        ann_prune: bool = True,
        ann_group_threshold: int = 128,
        ann_top_k: int = 32,
        ann_backend: str = "flat",
    ):
        self.thresholds = thresholds or SimilarityThresholds()
        # Profiles carry label embeddings computed by the *default* word
        # model; with a custom model the vectorized path must recompute so
        # both similarity modes score labels identically.
        self._use_stored_label_embeddings = word_model is None
        self.word_model = word_model or default_word_model()
        self.use_label_similarity = use_label_similarity
        self.use_content_similarity = use_content_similarity
        self.executor = executor or JobExecutor()
        self.source_name = source_name
        #: ``False`` falls back to the per-pair Python workers (the reference
        #: implementation benchmarks compare against).
        self.vectorized = vectorized
        #: ANN candidate pruning for wide type groups: when a group holds at
        #: least ``ann_group_threshold`` columns, content similarity scores
        #: only each new column's ``ann_top_k`` nearest stored embeddings
        #: (via ``FlatIndex`` or ``HNSWIndex``) instead of the full
        #: new x existing matrix.  ``ann_prune=False`` is the exactness
        #: escape hatch.  The high content threshold (theta ~0.985) means
        #: true edges sit at the very top of the ranking, so a modest top-k
        #: recovers them; ``pruning_stats`` records the achieved ratio.
        if ann_backend not in ("flat", "hnsw"):
            raise ValueError(f"unknown ann_backend {ann_backend!r}")
        self.ann_prune = ann_prune
        self.ann_group_threshold = ann_group_threshold
        self.ann_top_k = ann_top_k
        self.ann_backend = ann_backend
        #: Cumulative pruning telemetry (reset with :meth:`reset_pruning_stats`).
        self.pruning_stats: Dict[str, int] = {
            "pruned_groups": 0,
            "exact_groups": 0,
            "candidate_pairs": 0,
            "scored_pairs": 0,
        }

    # ------------------------------------------------------------------- API
    def build(
        self, table_profiles: Sequence[TableProfile], store: QuadStore
    ) -> List[ColumnSimilarityEdge]:
        """Write the dataset graph into ``store`` and return the similarity edges."""
        return self.build_incremental(table_profiles, (), store)

    def build_incremental(
        self,
        new_profiles: Sequence[TableProfile],
        existing_profiles: Sequence[TableProfile],
        store: QuadStore,
    ) -> List[ColumnSimilarityEdge]:
        """Extend the dataset graph with ``new_profiles`` only.

        Metadata subgraphs are written for the new tables alone, similarity is
        computed for *new x (new + existing)* column pairs only (existing x
        existing pairs are already materialized from earlier builds), and
        table relationships are re-derived just for the table pairs those new
        edges touch.  Bootstrapping is the special case ``existing = ()``, so
        one-shot and table-by-table construction produce identical graphs.

        When a fine-grained type group reaches ``ann_group_threshold``
        columns, content similarity scores only each new column's
        ``ann_top_k`` nearest neighbours (ANN candidate pruning) — an
        approximation that can miss edges for columns with more than
        ``ann_top_k`` matches above ``theta``; construct the builder with
        ``ann_prune=False`` for exact scoring.
        """
        plan = self.plan_incremental(new_profiles, existing_profiles)
        return self.apply_incremental(new_profiles, plan, store)

    def plan_incremental(
        self,
        new_profiles: Sequence[TableProfile],
        existing_profiles: Sequence[TableProfile],
    ) -> IncrementalBuildPlan:
        """Compute the similarity edges and table relationships — no writes.

        This is the expensive half of :meth:`build_incremental` (matrix
        scoring across the executor, table-relationship derivation) kept
        store-free so callers can run it *outside* a write gate and keep
        concurrent readers unblocked while it crunches.
        """
        edges = self.compute_incremental_similarities(new_profiles, existing_profiles)
        all_profiles = list(existing_profiles) + list(new_profiles)
        table_scores = self.derive_table_relationships(all_profiles, edges)
        return IncrementalBuildPlan(edges=edges, table_scores=table_scores)

    def apply_incremental(
        self,
        new_profiles: Sequence[TableProfile],
        plan: IncrementalBuildPlan,
        store: QuadStore,
    ) -> List[ColumnSimilarityEdge]:
        """Write a planned increment into ``store`` (the cheap, write-only half).

        Callers wanting batch atomicity wrap this single call in
        ``store.write_batch()``; the triples written are exactly those
        :meth:`build_incremental` would write.
        """
        self._write_metadata_subgraphs(new_profiles, store)
        self._write_similarity_edges(plan.edges, store)
        self._write_table_relationships(plan.table_scores, store)
        return plan.edges

    # ---------------------------------------------------- metadata subgraphs
    def _write_metadata_subgraphs(
        self, table_profiles: Sequence[TableProfile], store: QuadStore
    ) -> None:
        ontology = LiDSOntology
        source = source_uri(self.source_name)
        store.add(source, RDF.type, ontology.Source, graph=DATASET_GRAPH)
        store.add(source, ontology.hasName, Literal(self.source_name), graph=DATASET_GRAPH)
        for table_profile in table_profiles:
            dataset_node = dataset_uri(table_profile.dataset_name)
            table_node = table_uri(table_profile.dataset_name, table_profile.table_name)
            store.add(dataset_node, RDF.type, ontology.Dataset, graph=DATASET_GRAPH)
            store.add(dataset_node, ontology.hasName, Literal(table_profile.dataset_name), graph=DATASET_GRAPH)
            store.add(dataset_node, ontology.hasSource, source, graph=DATASET_GRAPH)
            store.add(table_node, RDF.type, ontology.Table, graph=DATASET_GRAPH)
            store.add(table_node, ontology.hasName, Literal(table_profile.table_name), graph=DATASET_GRAPH)
            store.add(table_node, RDFS.label, Literal(table_profile.table_name), graph=DATASET_GRAPH)
            store.add(table_node, ontology.isPartOf, dataset_node, graph=DATASET_GRAPH)
            num_rows = (
                table_profile.column_profiles[0].statistics.count
                if table_profile.column_profiles
                else 0
            )
            store.add(table_node, ontology.hasTotalRows, Literal(num_rows), graph=DATASET_GRAPH)
            store.add(
                table_node,
                ontology.hasTotalColumns,
                Literal(len(table_profile.column_profiles)),
                graph=DATASET_GRAPH,
            )
            for profile in table_profile.column_profiles:
                self._write_column_metadata(profile, table_node, store)

    @staticmethod
    def _write_column_metadata(
        profile: ColumnProfile, table_node: URIRef, store: QuadStore
    ) -> None:
        ontology = LiDSOntology
        column_node = column_uri(
            profile.dataset_name, profile.table_name, profile.column_name
        )
        statistics = profile.statistics
        store.add(column_node, RDF.type, ontology.Column, graph=DATASET_GRAPH)
        store.add(column_node, ontology.hasName, Literal(profile.column_name), graph=DATASET_GRAPH)
        store.add(column_node, RDFS.label, Literal(profile.column_name), graph=DATASET_GRAPH)
        store.add(column_node, ontology.isPartOf, table_node, graph=DATASET_GRAPH)
        store.add(
            column_node,
            ontology.hasFineGrainedType,
            Literal(profile.fine_grained_type),
            graph=DATASET_GRAPH,
        )
        store.add(column_node, ontology.hasTotalRows, Literal(statistics.count), graph=DATASET_GRAPH)
        store.add(
            column_node, ontology.hasMissingCount, Literal(statistics.missing_count), graph=DATASET_GRAPH
        )
        store.add(
            column_node, ontology.hasDistinctCount, Literal(statistics.distinct_count), graph=DATASET_GRAPH
        )
        optional_values = (
            (ontology.hasMinValue, statistics.minimum),
            (ontology.hasMaxValue, statistics.maximum),
            (ontology.hasMeanValue, statistics.mean),
            (ontology.hasStdValue, statistics.std),
            (ontology.hasTrueRatio, statistics.true_ratio),
            (ontology.hasAverageLength, statistics.average_length),
        )
        for predicate, value in optional_values:
            if value is not None:
                store.add(column_node, predicate, Literal(float(value)), graph=DATASET_GRAPH)

    # ------------------------------------------------------------ similarity
    def compute_column_similarities(
        self, table_profiles: Sequence[TableProfile]
    ) -> List[ColumnSimilarityEdge]:
        """All cross-table column pairs sharing a fine-grained type.

        Pairs are generated only across different tables (line 7 of
        Algorithm 3 requires ``i != j``; comparing columns of the same table
        adds no discovery value).  The default path stacks the per-type
        embeddings into matrices and scores every pair with a single matmul;
        ``vectorized=False`` keeps the per-pair Python workers that mirror
        the MapReduce distribution of the paper.
        """
        if self.vectorized:
            return self.compute_incremental_similarities(table_profiles, ())
        return self._compute_similarities_pairwise(table_profiles)

    def compute_incremental_similarities(
        self,
        new_profiles: Sequence[TableProfile],
        existing_profiles: Sequence[TableProfile],
    ) -> List[ColumnSimilarityEdge]:
        """Similarity edges for *new x (new + existing)* column pairs only.

        Columns are grouped by fine-grained type; each type group is an
        independent job (the per-type batches the real system ships to Faiss)
        whose label and content scores are computed as dense matrix products
        with threshold masking rather than per-pair Python calls.
        """
        if not self.vectorized:
            # Reference path: enumerate the new pairs and reuse the per-pair
            # worker so both modes agree on which pairs are compared.
            pairs = self._incremental_pairs(new_profiles, existing_profiles)
            edge_lists = self.executor.map(lambda pair: self._compare_pair(*pair), pairs)
            return [edge for edges in edge_lists for edge in edges]
        jobs = self._type_group_jobs(new_profiles, existing_profiles)
        if self.executor.backend == "processes" and self._use_stored_label_embeddings:
            results = self.executor.map(
                _score_type_group_worker,
                jobs,
                initializer=_init_builder_worker,
                initargs=(self.process_config(),),
            )
        else:
            results = self.executor.map(lambda job: self._score_type_group(*job), jobs)
        edges: List[ColumnSimilarityEdge] = []
        for group_edges, group_stats in results:
            edges.extend(group_edges)
            for key, value in group_stats.items():
                self.pruning_stats[key] += value
        return edges

    def process_config(self) -> Dict[str, object]:
        """The picklable config a worker process rebuilds this builder from."""
        return {
            "thresholds": self.thresholds,
            "use_label_similarity": self.use_label_similarity,
            "use_content_similarity": self.use_content_similarity,
            "ann_prune": self.ann_prune,
            "ann_group_threshold": self.ann_group_threshold,
            "ann_top_k": self.ann_top_k,
            "ann_backend": self.ann_backend,
        }

    def reset_pruning_stats(self) -> None:
        """Zero the cumulative pruning telemetry."""
        for key in self.pruning_stats:
            self.pruning_stats[key] = 0

    @property
    def last_pruning_ratio(self) -> float:
        """Fraction of candidate pairs actually scored (1.0 = no pruning)."""
        candidates = self.pruning_stats["candidate_pairs"]
        if candidates == 0:
            return 1.0
        return self.pruning_stats["scored_pairs"] / candidates

    @staticmethod
    def _type_group_jobs(
        new_profiles: Sequence[TableProfile],
        existing_profiles: Sequence[TableProfile],
    ) -> List[Tuple[str, List[ColumnProfile], List[ColumnProfile]]]:
        """``(fine_type, new columns, existing columns)`` per type with news."""
        new_by_type: Dict[str, List[ColumnProfile]] = defaultdict(list)
        old_by_type: Dict[str, List[ColumnProfile]] = defaultdict(list)
        for table_profile in new_profiles:
            for profile in table_profile.column_profiles:
                new_by_type[profile.fine_grained_type].append(profile)
        for table_profile in existing_profiles:
            for profile in table_profile.column_profiles:
                old_by_type[profile.fine_grained_type].append(profile)
        return [
            (fine_type, new_columns, old_by_type.get(fine_type, []))
            for fine_type, new_columns in new_by_type.items()
        ]

    def _incremental_pairs(
        self,
        new_profiles: Sequence[TableProfile],
        existing_profiles: Sequence[TableProfile],
    ) -> List[Tuple[ColumnProfile, ColumnProfile]]:
        """The new x (new + existing) cross-table pairs, grouped by type."""
        pairs: List[Tuple[ColumnProfile, ColumnProfile]] = []
        for _, new_columns, old_columns in self._type_group_jobs(
            new_profiles, existing_profiles
        ):
            group = new_columns + old_columns
            for i, left in enumerate(new_columns):
                for j in range(i + 1, len(group)):
                    right = group[j]
                    if (left.dataset_name, left.table_name) == (right.dataset_name, right.table_name):
                        continue
                    pairs.append((left, right))
        return pairs

    def _compute_similarities_pairwise(
        self, table_profiles: Sequence[TableProfile]
    ) -> List[ColumnSimilarityEdge]:
        """The seed per-pair loop, kept as the benchmark reference."""
        pairs = self._incremental_pairs(table_profiles, ())
        edge_lists = self.executor.map(lambda pair: self._compare_pair(*pair), pairs)
        return [edge for edges in edge_lists for edge in edges]

    # --------------------------------------------------- vectorized workers
    def _score_type_group(
        self,
        fine_type: str,
        new_columns: Sequence[ColumnProfile],
        old_columns: Sequence[ColumnProfile],
    ) -> Tuple[List[ColumnSimilarityEdge], Dict[str, int]]:
        """Score all new x (new + old) pairs of one type group at once.

        Returns the edges plus pruning telemetry for the group (kept pure so
        the method can run inside worker processes and the caller merges the
        stats).
        """
        stats = {"pruned_groups": 0, "exact_groups": 0, "candidate_pairs": 0, "scored_pairs": 0}
        group = list(new_columns) + list(old_columns)
        num_new, num_total = len(new_columns), len(group)
        if num_new == 0 or num_total < 2:
            return [], stats
        valid = self._valid_pair_mask(group, num_new)
        if not valid.any():
            return [], stats
        edges: List[ColumnSimilarityEdge] = []
        if self.use_label_similarity:
            scores = self._label_score_matrix(group, num_new)
            edges.extend(self._edges_from_mask(group, valid & (scores >= self.thresholds.alpha), scores, "label"))
        if self.use_content_similarity:
            num_candidates = int(valid.sum())
            stats["candidate_pairs"] = num_candidates
            if fine_type == TYPE_BOOLEAN:
                scores = self._boolean_score_matrix(group, num_new)
                edges.extend(self._edges_from_mask(group, valid & (scores >= self.thresholds.beta), scores, "content"))
                stats["exact_groups"] = 1
                stats["scored_pairs"] = num_candidates
            elif self._should_ann_prune(num_total):
                pruned_edges, scored = self._ann_pruned_content_edges(group, num_new, valid)
                edges.extend(pruned_edges)
                stats["pruned_groups"] = 1
                stats["scored_pairs"] = scored
            else:
                scores = self._content_score_matrix(group, num_new)
                edges.extend(self._edges_from_mask(group, valid & (scores >= self.thresholds.theta), scores, "content"))
                stats["exact_groups"] = 1
                stats["scored_pairs"] = num_candidates
        return edges, stats

    def _should_ann_prune(self, num_total: int) -> bool:
        """Prune only wide groups where top-k is genuinely a subset."""
        return (
            self.ann_prune
            and num_total >= self.ann_group_threshold
            and self.ann_top_k + 1 < num_total
        )

    def _ann_pruned_content_edges(
        self, group: Sequence[ColumnProfile], num_new: int, valid: np.ndarray
    ) -> Tuple[List[ColumnSimilarityEdge], int]:
        """Content edges from top-k ANN candidates instead of the full matrix.

        Builds a vector index over the group's stored column embeddings and
        scores, per new column, only its ``ann_top_k`` nearest neighbours.
        New x new hits are canonicalized onto the upper triangle (cosine is
        symmetric) so pruning agrees with the exact path on which ordered
        pair carries an edge.  Returns the edges and the number of pairs
        actually scored.
        """
        matrix = np.stack(
            [np.asarray(profile.embedding, dtype=float).ravel() for profile in group]
        )
        norms = np.linalg.norm(matrix, axis=1)
        normalized = matrix / np.where(norms > 0, norms, 1.0)[:, None]
        # +1 because each query retrieves itself as its nearest neighbour.
        k = min(self.ann_top_k + 1, len(group))
        if self.ann_backend == "hnsw":
            index = HNSWIndex(matrix.shape[1])
            for position in range(len(group)):
                index.add(str(position), normalized[position])
            neighbour_lists = [index.search(normalized[i], k=k) for i in range(num_new)]
        else:
            index = FlatIndex(matrix.shape[1])
            index.add_many([(str(position), row) for position, row in enumerate(normalized)])
            neighbour_lists = index.search_many(normalized[:num_new], k=k)
        pairs: set = set()
        for i, neighbours in enumerate(neighbour_lists):
            for key, _ in neighbours:
                j = int(key)
                if valid[i, j]:
                    pairs.add((i, j))
                elif j < num_new and valid[j, i]:
                    # Both columns are new and the pair lives on the upper
                    # triangle as (j, i); keep that canonical orientation.
                    pairs.add((j, i))
        if not pairs:
            return [], 0
        ordered = sorted(pairs)
        rows = np.array([i for i, _ in ordered])
        cols = np.array([j for _, j in ordered])
        raw = np.einsum("ij,ij->i", normalized[rows], normalized[cols])
        scores = np.clip((raw + 1.0) / 2.0, 0.0, 1.0)
        scores[(norms[rows] == 0) | (norms[cols] == 0)] = 0.0
        edges = [
            ColumnSimilarityEdge(
                group[i].column_id, group[j].column_id, "content", float(score)
            )
            for (i, j), score in zip(ordered, scores)
            if score >= self.thresholds.theta
        ]
        return edges, len(ordered)

    @staticmethod
    def _valid_pair_mask(group: Sequence[ColumnProfile], num_new: int) -> np.ndarray:
        """``mask[i, j]``: compare new column ``i`` against group column ``j``.

        Excludes same-table pairs, and keeps only the upper triangle inside
        the new x new block so each fresh pair is scored exactly once
        (new x old pairs cannot have been scored before, so the full block
        stays on).
        """
        table_ids: Dict[Tuple[str, str], int] = {}
        ids = np.empty(len(group), dtype=np.int64)
        for index, profile in enumerate(group):
            key = (profile.dataset_name, profile.table_name)
            ids[index] = table_ids.setdefault(key, len(table_ids))
        mask = ids[:num_new, None] != ids[None, :]
        mask[:, :num_new] &= np.triu(np.ones((num_new, num_new), dtype=bool), k=1)
        return mask

    def _label_score_matrix(self, group: Sequence[ColumnProfile], num_new: int) -> np.ndarray:
        """Vectorized :meth:`WordEmbeddingModel.similarity` over the group.

        Blends label-embedding cosine (mapped to ``[0, 1]``) with Jaccard
        token overlap, exactly like the scalar path: identical token sets
        score 1.0, empty token sets score 0.0.
        """
        vectors = np.stack(
            [
                profile.label_embedding
                if self._use_stored_label_embeddings and profile.label_embedding is not None
                else self.word_model.label_vector(profile.column_name)
                for profile in group
            ]
        )
        cosine = np.clip((vectors[:num_new] @ vectors.T + 1.0) / 2.0, 0.0, 1.0)
        token_sets = [frozenset(tokenize_label(profile.column_name)) for profile in group]
        vocabulary: Dict[str, int] = {}
        for tokens in token_sets:
            for token in tokens:
                vocabulary.setdefault(token, len(vocabulary))
        incidence = np.zeros((len(group), max(1, len(vocabulary))))
        for index, tokens in enumerate(token_sets):
            for token in tokens:
                incidence[index, vocabulary[token]] = 1.0
        sizes = incidence.sum(axis=1)
        intersection = incidence[:num_new] @ incidence.T
        union = sizes[:num_new, None] + sizes[None, :] - intersection
        jaccard = np.divide(
            intersection, union, out=np.zeros_like(intersection), where=union > 0
        )
        scores = np.clip(0.5 * cosine + 0.5 * jaccard, 0.0, 1.0)
        equal_sets = (
            (intersection == sizes[:num_new, None])
            & (intersection == sizes[None, :])
            & (sizes[:num_new, None] > 0)
        )
        scores[equal_sets] = 1.0
        empty = (sizes[:num_new, None] == 0) | (sizes[None, :] == 0)
        scores[empty] = 0.0
        return scores

    @staticmethod
    def _boolean_score_matrix(group: Sequence[ColumnProfile], num_new: int) -> np.ndarray:
        ratios = np.array(
            [profile.statistics.true_ratio or 0.0 for profile in group], dtype=float
        )
        return 1.0 - np.abs(ratios[:num_new, None] - ratios[None, :])

    @staticmethod
    def _content_score_matrix(group: Sequence[ColumnProfile], num_new: int) -> np.ndarray:
        """Vectorized :func:`cosine_similarity` over the CoLR embeddings."""
        matrix = np.stack(
            [np.asarray(profile.embedding, dtype=float).ravel() for profile in group]
        )
        norms = np.linalg.norm(matrix, axis=1)
        normalized = matrix / np.where(norms > 0, norms, 1.0)[:, None]
        scores = np.clip((normalized[:num_new] @ normalized.T + 1.0) / 2.0, 0.0, 1.0)
        zero = (norms[:num_new, None] == 0) | (norms[None, :] == 0)
        scores[zero] = 0.0
        return scores

    @staticmethod
    def _edges_from_mask(
        group: Sequence[ColumnProfile], hits: np.ndarray, scores: np.ndarray, kind: str
    ) -> List[ColumnSimilarityEdge]:
        return [
            ColumnSimilarityEdge(
                group[i].column_id, group[j].column_id, kind, float(scores[i, j])
            )
            for i, j in np.argwhere(hits)
        ]

    def _compare_pair(
        self, left: ColumnProfile, right: ColumnProfile
    ) -> List[ColumnSimilarityEdge]:
        """The column-similarity worker (lines 9-19 of Algorithm 3)."""
        edges: List[ColumnSimilarityEdge] = []
        if self.use_label_similarity:
            label_score = self.word_model.similarity(left.column_name, right.column_name)
            if label_score >= self.thresholds.alpha:
                edges.append(
                    ColumnSimilarityEdge(left.column_id, right.column_id, "label", label_score)
                )
        if not self.use_content_similarity:
            return edges
        if left.fine_grained_type == TYPE_BOOLEAN:
            ratio_a = left.statistics.true_ratio or 0.0
            ratio_b = right.statistics.true_ratio or 0.0
            score = 1.0 - abs(ratio_a - ratio_b)
            if score >= self.thresholds.beta:
                edges.append(
                    ColumnSimilarityEdge(left.column_id, right.column_id, "content", score)
                )
        else:
            score = cosine_similarity(left.embedding, right.embedding)
            if score >= self.thresholds.theta:
                edges.append(
                    ColumnSimilarityEdge(left.column_id, right.column_id, "content", score)
                )
        return edges

    def _write_similarity_edges(
        self, edges: Iterable[ColumnSimilarityEdge], store: QuadStore
    ) -> None:
        ontology = LiDSOntology
        for edge in edges:
            subject = self._column_id_to_uri(edge.column_a)
            obj = self._column_id_to_uri(edge.column_b)
            predicate = (
                ontology.hasLabelSimilarity if edge.kind == "label" else ontology.hasContentSimilarity
            )
            store.annotate(
                subject,
                predicate,
                obj,
                ontology.withCertainty,
                Literal(round(edge.score, 4)),
                graph=DATASET_GRAPH,
            )
            store.annotate(
                obj,
                predicate,
                subject,
                ontology.withCertainty,
                Literal(round(edge.score, 4)),
                graph=DATASET_GRAPH,
            )

    @staticmethod
    def _column_id_to_uri(column_id: str) -> URIRef:
        dataset_name, table_name, column_name = column_id.split("/", 2)
        return column_uri(dataset_name, table_name, column_name)

    # --------------------------------------------------- table relationships
    def derive_table_relationships(
        self,
        table_profiles: Sequence[TableProfile],
        edges: Sequence[ColumnSimilarityEdge],
    ) -> Dict[Tuple[str, str, str], float]:
        """Aggregate column similarities into table-level relationship scores.

        Returns ``{(table_id_a, table_id_b, kind): score}`` where ``kind`` is
        ``"unionable"`` (driven by label or content column matches) or
        ``"joinable"`` (driven by content matches).  The unionability score
        greedily matches columns one-to-one by similarity (so a single popular
        column cannot inflate the score through many-to-many matches) and
        normalizes the summed match scores by the smaller table's column
        count — it therefore reflects both how many columns match and how
        strongly they match, as described in Section 3.3.
        """
        column_counts = {
            profile.table_id: max(1, len(profile.column_profiles)) for profile in table_profiles
        }
        per_pair: Dict[Tuple[str, str], Dict[str, Dict[Tuple[str, str], float]]] = defaultdict(
            lambda: {"label": {}, "content": {}}
        )
        for edge in edges:
            table_a = "/".join(edge.column_a.split("/")[:2])
            table_b = "/".join(edge.column_b.split("/")[:2])
            if table_a == table_b:
                continue
            key = tuple(sorted((table_a, table_b)))
            column_key = tuple(sorted((edge.column_a, edge.column_b)))
            bucket = per_pair[key][edge.kind]
            bucket[column_key] = max(bucket.get(column_key, 0.0), edge.score)
        scores: Dict[Tuple[str, str, str], float] = {}
        for (table_a, table_b), buckets in per_pair.items():
            denominator = min(column_counts.get(table_a, 1), column_counts.get(table_b, 1))
            union_matches: Dict[Tuple[str, str], float] = {}
            for bucket in buckets.values():
                for column_key, score in bucket.items():
                    union_matches[column_key] = max(union_matches.get(column_key, 0.0), score)
            matched_total = self._greedy_one_to_one(union_matches)
            if matched_total > 0.0:
                scores[(table_a, table_b, "unionable")] = min(1.0, matched_total / denominator)
            if buckets["content"]:
                scores[(table_a, table_b, "joinable")] = min(
                    1.0, max(buckets["content"].values())
                )
        return scores

    @staticmethod
    def _greedy_one_to_one(pair_scores: Dict[Tuple[str, str], float]) -> float:
        """Sum of scores of a greedy one-to-one column matching."""
        used_left: set = set()
        used_right: set = set()
        total = 0.0
        for (column_a, column_b), score in sorted(pair_scores.items(), key=lambda item: -item[1]):
            if column_a in used_left or column_b in used_right:
                continue
            used_left.add(column_a)
            used_right.add(column_b)
            total += score
        return total

    def _write_table_relationships(
        self, table_scores: Dict[Tuple[str, str, str], float], store: QuadStore
    ) -> None:
        ontology = LiDSOntology
        for (table_a, table_b, kind), score in table_scores.items():
            predicate = ontology.unionableWith if kind == "unionable" else ontology.joinableWith
            subject = table_uri(*table_a.split("/", 1))
            obj = table_uri(*table_b.split("/", 1))
            store.annotate(
                subject, predicate, obj, ontology.withCertainty, Literal(round(score, 4)), graph=DATASET_GRAPH
            )
            store.annotate(
                obj, predicate, subject, ontology.withCertainty, Literal(round(score, 4)), graph=DATASET_GRAPH
            )


# ---------------------------------------------------------------------------
# Process-pool workers.  One builder is rebuilt per worker process from the
# picklable config (deterministic default word model, so every backend scores
# labels identically); type-group jobs ship ColumnProfiles across the process
# boundary via their dataclass pickle form.
# ---------------------------------------------------------------------------
_WORKER_BUILDER: Optional[DataGlobalSchemaBuilder] = None


def _init_builder_worker(config: Dict[str, object]) -> None:
    """Pool initializer: build the per-process schema builder from its config."""
    global _WORKER_BUILDER
    _WORKER_BUILDER = DataGlobalSchemaBuilder(
        executor=JobExecutor(backend="serial"), **config
    )


def _score_type_group_worker(
    job: Tuple[str, List[ColumnProfile], List[ColumnProfile]]
) -> Tuple[List[ColumnSimilarityEdge], Dict[str, int]]:
    """Per-type-group similarity job executed inside a worker process."""
    if _WORKER_BUILDER is None:  # pragma: no cover - initializer always runs
        raise RuntimeError("builder worker used before initialization")
    return _WORKER_BUILDER._score_type_group(*job)
