"""GovernorService: queued, non-blocking ingestion over a :class:`KGGovernor`.

The paper's governor "creates, maintains and synchronizes" the LiDS graph as
a continuously running service.  This module is that service: instead of
blocking each caller for the full profile + similarity + construction cost,
``submit_*`` methods enqueue work onto a bounded queue and return an
:class:`IngestTicket` immediately; a single background scheduler thread
drains the queue, **coalesces** adjacent table submissions into similarity
micro-batches (one profiling fan-out through the governor's
:class:`~repro.parallel.JobExecutor` instead of N tiny ones) and applies
each micro-batch's graph writes as one atomic commit batch
(``QuadStore.write_batch``) — so discovery reads running on other threads
(``KGLiDS`` / ``LiDSClient``) stay answerable throughout and always observe
whole committed batches.

Back-pressure is the queue bound: when producers outrun the scheduler,
``submit_*`` blocks (or raises ``queue.Full`` under a caller-supplied
timeout) instead of growing memory without limit.

While a service fronts a governor, the governor's own sync mutators
(``add_data_lake`` etc.) become thin submit-and-wait shims through the same
queue, so direct calls and queued tickets serialize on one scheduler and the
resulting graph is byte-identical to synchronous governing.
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import dataclass
from typing import Any, Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.kg.errors import GovernanceError, PoisonTableError, TransientError
from repro.kg.governor import GovernorReport, KGGovernor
from repro.pipelines.abstraction import PipelineScript
from repro.tabular import DataLake, Table

__all__ = ["GovernorService", "IngestTicket"]

#: Queue sentinel shutting the scheduler down after all prior work drains.
_SHUTDOWN = object()


class IngestTicket:
    """Handle of one queued ingestion submission.

    Tickets resolve with a *merged* :class:`GovernorReport`: when the
    scheduler coalesces several submissions into one micro-batch, every
    ticket of the batch resolves with the same batch report (the composition
    is associative — ``GovernorReport.merge`` — so totals are independent of
    how the scheduler happened to cut the batches).
    """

    __slots__ = ("kind", "_done", "_running", "_report", "_error", "_wait_guard")

    def __init__(self, kind: str, wait_guard=None):
        #: What was submitted: ``tables`` / ``pipelines`` / ``refresh`` /
        #: ``retract``.
        self.kind = kind
        self._done = threading.Event()
        self._running = False
        self._report: Optional[GovernorReport] = None
        self._error: Optional[BaseException] = None
        #: Called before any blocking wait; the owning service uses it to
        #: reject waits that would deadlock (awaiting under a read view).
        self._wait_guard = wait_guard

    # ---------------------------------------------------------------- queries
    @property
    def status(self) -> str:
        """``"queued"``, ``"running"``, ``"done"`` or ``"failed"``."""
        if self._done.is_set():
            return "failed" if self._error is not None else "done"
        return "running" if self._running else "queued"

    def done(self) -> bool:
        """Whether the submission finished (successfully or not)."""
        return self._done.is_set()

    def _check_wait_safe(self) -> None:
        if not self._done.is_set() and self._wait_guard is not None:
            self._wait_guard(self.kind)

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until the submission finishes; ``False`` on timeout."""
        self._check_wait_safe()
        return self._done.wait(timeout)

    def result(self, timeout: Optional[float] = None) -> GovernorReport:
        """The merged report of the batch this submission landed in.

        Blocks until done; raises :class:`TimeoutError` when ``timeout``
        expires first, and re-raises the scheduler-side exception when the
        batch failed.
        """
        self._check_wait_safe()
        if not self._done.wait(timeout):
            raise TimeoutError(
                f"ingestion ticket ({self.kind}) not done within {timeout}s"
            )
        if self._error is not None:
            raise self._error
        assert self._report is not None
        return self._report

    def exception(self, timeout: Optional[float] = None) -> Optional[BaseException]:
        """The failure, if any (blocks like :meth:`result`)."""
        self._check_wait_safe()
        if not self._done.wait(timeout):
            raise TimeoutError(
                f"ingestion ticket ({self.kind}) not done within {timeout}s"
            )
        return self._error

    # -------------------------------------------------------- scheduler hooks
    def _mark_running(self) -> None:
        self._running = True

    def _resolve(self, report: GovernorReport) -> None:
        self._report = report
        self._done.set()

    def _fail(self, error: BaseException) -> None:
        self._error = error
        self._done.set()

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return f"IngestTicket(kind={self.kind!r}, status={self.status!r})"


@dataclass
class _Submission:
    kind: str
    payload: Any
    ticket: IngestTicket


class GovernorService:
    """A queued ingestion front-end around one :class:`KGGovernor`.

    ``GovernorService()`` builds its own governor (keyword arguments pass
    through to :class:`KGGovernor`); ``GovernorService(governor)`` adopts an
    existing one.  Either way the governor's sync mutators route through
    this service's queue until :meth:`close`.

    * ``maxsize`` bounds the submission queue (back-pressure: full queue
      blocks producers).
    * ``max_batch_tables`` caps how many tables one coalesced micro-batch
      may hold — smaller batches commit more often, which shortens the
      exclusive write window concurrent readers may wait on; larger batches
      amortize profiling fan-out better.

    The scheduler thread is a daemon: an abandoned service cannot keep the
    interpreter alive, but orderly shutdown should still go through
    :meth:`close` (or the context-manager form), which drains the queue
    first so every ticket resolves.
    """

    def __init__(
        self,
        governor: Optional[KGGovernor] = None,
        *,
        maxsize: int = 128,
        max_batch_tables: int = 16,
        **governor_kwargs,
    ):
        if governor is None:
            governor = KGGovernor(**governor_kwargs)
        elif governor_kwargs:
            raise ValueError("pass governor kwargs only when the service builds the governor")
        if governor.read_only:
            raise PermissionError("cannot serve ingestion over a read-only governor")
        if governor._service is not None:
            raise ValueError("governor is already fronted by another GovernorService")
        self.governor = governor
        self.max_batch_tables = max(1, int(max_batch_tables))
        self._queue: "queue.Queue" = queue.Queue(maxsize)
        #: A drained-but-unprocessed submission that ended coalescing (kind
        #: switch or shutdown); scheduler-thread state only.
        self._carry: Optional[Any] = None
        self._closed = False
        #: Makes [check closed -> enqueue] atomic against close(): without
        #: it a racing submission could land *behind* the shutdown sentinel
        #: and its ticket would never resolve.  Holding the lock across a
        #: back-pressure block is safe: the scheduler (which never takes
        #: this lock) keeps draining the queue, so the put always completes.
        self._submit_lock = threading.Lock()
        #: Scheduler pause switch (set = running).  :meth:`pause` lets
        #: operators quiesce ingestion — and tests pile up submissions to
        #: observe coalescing deterministically.
        self._resume = threading.Event()
        self._resume.set()
        self._stats_lock = threading.Lock()
        #: Telemetry: submissions accepted / resolved / failed, scheduler
        #: batches executed, submissions that rode along in a batch beyond
        #: the first (``coalesced``), transient ``retries``, and submissions
        #: refused because their key is ``quarantined``.
        self._counters: Dict[str, int] = {
            "submitted": 0,
            "completed": 0,
            "failed": 0,
            "batches": 0,
            "coalesced": 0,
            "retries": 0,
            "quarantined": 0,
        }
        #: How many times a :class:`TransientError` is retried (with capped
        #: exponential backoff) before the ticket fails.
        self.max_transient_retries = 3
        #: Base / cap of the retry backoff, in seconds.
        self.retry_backoff = 0.05
        self.retry_backoff_cap = 1.0
        #: Consecutive failures of one submission key before it is
        #: quarantined (further submissions fail fast with
        #: :class:`PoisonTableError` instead of wedging the queue).
        self.quarantine_after = 3
        #: key -> consecutive failure count (reset on success).
        self._failure_counts: Dict[Any, int] = {}
        #: key -> last error that tipped it into quarantine.
        self._quarantined_keys: Dict[Any, BaseException] = {}
        #: Set when the scheduler thread dies unexpectedly: submissions are
        #: refused (their tickets could never resolve).
        self._scheduler_dead = False
        #: The batch currently executing on the scheduler thread.  Tracked so
        #: the death safety net can fail *in-flight* tickets too — without it
        #: a scheduler bug would leave the batch it was executing (and any
        #: carried coalescing stopper) waiting forever.
        self._inflight: List["_Submission"] = []
        governor._service = self
        self._thread = threading.Thread(
            target=self._run, name="governor-scheduler", daemon=True
        )
        self._thread.start()

    # ------------------------------------------------------------- submission
    def submit_table(
        self,
        table: Table,
        dataset_name: str = "default",
        *,
        timeout: Optional[float] = None,
    ) -> IngestTicket:
        """Queue one table for ingestion."""
        return self._submit("tables", [(dataset_name, table)], timeout)

    def submit_tables(
        self,
        tables: Sequence[Table],
        dataset_name: str = "default",
        *,
        timeout: Optional[float] = None,
    ) -> IngestTicket:
        """Queue several tables as one submission (still coalescible)."""
        return self._submit(
            "tables", [(dataset_name, table) for table in tables], timeout
        )

    def submit_lake(
        self, lake: DataLake, *, timeout: Optional[float] = None
    ) -> IngestTicket:
        """Queue a whole data lake for ingestion."""
        payload = [(table.dataset or "default", table) for table in lake.tables()]
        return self._submit("tables", payload, timeout)

    def submit_pipelines(
        self, scripts: Sequence[PipelineScript], *, timeout: Optional[float] = None
    ) -> IngestTicket:
        """Queue pipeline scripts for abstraction + linking."""
        return self._submit("pipelines", list(scripts), timeout)

    def submit_refresh(
        self,
        table: Table,
        dataset_name: Optional[str] = None,
        *,
        timeout: Optional[float] = None,
    ) -> IngestTicket:
        """Queue a table refresh (retract stale footprint, re-govern)."""
        return self._submit("refresh", (dataset_name, table), timeout)

    def submit_retract(
        self,
        dataset_name: str,
        table_name: str,
        *,
        timeout: Optional[float] = None,
    ) -> IngestTicket:
        """Queue a table retraction; the report lists ``retracted_tables``."""
        return self._submit("retract", (dataset_name, table_name), timeout)

    def _submit(self, kind: str, payload: Any, timeout: Optional[float]) -> IngestTicket:
        if self.governor.storage.graph.in_read_view():
            # A producer blocked on a full queue (or later on the ticket)
            # while holding a read view would deadlock the scheduler's next
            # write batch against its own view.
            raise RuntimeError(
                "cannot submit ingestion work while holding a read view on "
                "the LiDS graph"
            )
        ticket = IngestTicket(kind, wait_guard=self._wait_guard)
        with self._submit_lock:
            if self._closed:
                raise RuntimeError("GovernorService is closed")
            if self._scheduler_dead:
                raise GovernanceError(
                    "GovernorService scheduler thread has died; the service "
                    "must be closed and rebuilt"
                )
            self._queue.put(_Submission(kind, payload, ticket), timeout=timeout)
        with self._stats_lock:
            self._counters["submitted"] += 1
        return ticket

    def _wait_guard(self, kind: str) -> None:
        """Reject blocking waits that would deadlock the scheduler.

        A thread awaiting a ticket (or :meth:`drain`) while holding a read
        view blocks the scheduler's next write batch on its own view while
        it blocks on the scheduler — mutual, permanent.  Raise instead.
        """
        if self.governor.storage.graph.in_read_view():
            raise RuntimeError(
                f"cannot await a {kind!r} ingestion ticket while holding a "
                "read view on the LiDS graph (the scheduler's write batch "
                "would deadlock against this thread's view)"
            )

    # ------------------------------------------------------------- life cycle
    def is_scheduler_thread(self) -> bool:
        """Whether the calling thread is this service's scheduler thread."""
        return threading.current_thread() is self._thread

    def pause(self) -> None:
        """Stop executing queued work (submissions still enqueue)."""
        self._resume.clear()

    def resume(self) -> None:
        """Resume executing queued work."""
        self._resume.set()

    def drain(self) -> None:
        """Block until every submission accepted so far has resolved."""
        self._wait_guard("drain")
        self._queue.join()

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def stats(self) -> Dict[str, int]:
        """Snapshot of the service counters plus the graph's commit version.

        Returned as a copy taken under the stats lock, so callers (and the
        serving tier's ``stats`` RPC) read one consistent counter set.  The
        ``commit_version`` key is what replicas compare their pinned version
        against to report replication lag in *versions*, not wall-clock
        guesses.
        """
        with self._stats_lock:
            snapshot = dict(self._counters)
        snapshot["commit_version"] = self.commit_version
        return snapshot

    @property
    def commit_version(self) -> int:
        """The governed graph's committed write-batch counter."""
        return self.governor.storage.graph.commit_version

    def close(self, timeout: Optional[float] = None) -> None:
        """Stop accepting work, drain the queue, and stop the scheduler.

        Every ticket already accepted resolves before the scheduler exits
        (the shutdown sentinel queues FIFO behind them).  Tickets queued
        behind a poisoned batch *fail* rather than hang: batch execution is
        always finite (transient retries are bounded, quarantined keys fail
        fast), and if the scheduler thread ever dies, the remaining queue is
        drained with every ticket failed.  The underlying
        governor is *not* closed — it simply returns to direct synchronous
        operation.  When ``timeout`` expires before the scheduler drains,
        :class:`TimeoutError` is raised and the governor stays attached to
        the (still draining) service — detaching it early would let direct
        sync mutations race the in-flight batch on the governor's unlocked
        Python state; call :meth:`close` again to finish the hand-back.
        """
        # Un-pause first: a paused scheduler would never drain a full queue,
        # and the sentinel put below must always complete.
        self._resume.set()
        with self._submit_lock:
            if not self._closed:
                self._closed = True
                # Under the submit lock no new submission can slip in behind
                # the sentinel, so every accepted ticket resolves before the
                # scheduler exits.
                self._queue.put(_SHUTDOWN)
        self._thread.join(timeout)
        if self._thread.is_alive():
            raise TimeoutError(
                f"scheduler still draining after {timeout}s; call close() "
                "again to finish shutdown"
            )
        self.governor._service = None

    def __enter__(self) -> "GovernorService":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ------------------------------------------------------------- quarantine
    @property
    def quarantined(self) -> List[Any]:
        """Keys currently refused fast (see :class:`PoisonTableError`)."""
        return list(self._quarantined_keys)

    @property
    def quarantine_reasons(self) -> Dict[Any, BaseException]:
        """``key -> last error`` for every quarantined key.

        The *reason* a table is refused matters operationally: "permission
        denied" and "profiler crashed" call for different fixes.  The
        returned dict is a snapshot — mutating it does not lift anything;
        use :meth:`clear_quarantine` for that.
        """
        return dict(self._quarantined_keys)

    def quarantine(self, key: Any, error: BaseException) -> None:
        """Quarantine ``key`` directly (external failure evidence).

        The scheduler quarantines keys after repeated *ingestion* failures;
        upstream components observing failures of their own — the lake
        crawler's repeatedly-unreadable files — register them here so one
        ledger answers "what is being refused and why" for the whole
        pipeline.  Lifted like any other entry via :meth:`clear_quarantine`.
        """
        self._failure_counts[key] = max(
            self._failure_counts.get(key, 0), self.quarantine_after
        )
        self._quarantined_keys[key] = error

    def clear_quarantine(self, key: Optional[Any] = None) -> None:
        """Lift the quarantine of one key (or all keys) and reset its count."""
        if key is None:
            self._quarantined_keys.clear()
            self._failure_counts.clear()
            return
        self._quarantined_keys.pop(key, None)
        self._failure_counts.pop(key, None)

    @staticmethod
    def _submission_keys(submission: _Submission) -> FrozenSet[Any]:
        """Stable identities of what a submission touches (quarantine keys)."""
        if submission.kind == "tables":
            return frozenset(
                ("table", dataset_name, table.name)
                for dataset_name, table in submission.payload
            )
        if submission.kind == "refresh":
            dataset_name, table = submission.payload
            dataset_name = dataset_name or table.dataset or "default"
            return frozenset([("table", dataset_name, table.name)])
        if submission.kind == "retract":
            dataset_name, table_name = submission.payload
            return frozenset([("table", dataset_name, table_name)])
        return frozenset(
            ("pipeline", script.pipeline_id) for script in submission.payload
        )

    def _quarantine_error(self, submission: _Submission) -> Optional[PoisonTableError]:
        for key in self._submission_keys(submission):
            error = self._quarantined_keys.get(key)
            if error is not None:
                return PoisonTableError(
                    key, self._failure_counts.get(key, self.quarantine_after), error
                )
        return None

    def _record_failure(self, submission: _Submission, error: BaseException) -> None:
        for key in self._submission_keys(submission):
            count = self._failure_counts.get(key, 0) + 1
            self._failure_counts[key] = count
            if count >= self.quarantine_after:
                self._quarantined_keys[key] = error

    def _record_success(self, submission: _Submission) -> None:
        # A success clears the slate: only *consecutive* failures quarantine.
        for key in self._submission_keys(submission):
            self._failure_counts.pop(key, None)

    def _run_with_retry(self, work):
        """Run ``work``, retrying :class:`TransientError` with capped backoff."""
        delay = self.retry_backoff
        attempt = 0
        while True:
            try:
                return work()
            except TransientError:
                attempt += 1
                if attempt > self.max_transient_retries:
                    raise
                with self._stats_lock:
                    self._counters["retries"] += 1
                time.sleep(min(delay, self.retry_backoff_cap))
                delay *= 2

    # -------------------------------------------------------------- scheduler
    def _run(self) -> None:
        try:
            while True:
                item = self._carry if self._carry is not None else self._queue.get()
                self._carry = None
                if item is _SHUTDOWN:
                    self._queue.task_done()
                    return
                self._resume.wait()
                batch = self._coalesce(item)
                self._inflight = batch
                self._execute(item.kind, batch)
                self._inflight = []
                for _ in batch:
                    self._queue.task_done()
        finally:
            # Safety net: if the loop exits for *any* reason (orderly
            # shutdown leaves the queue empty and nothing in flight, so this
            # is a no-op then), every unresolved ticket — in the batch being
            # executed, carried out of coalescing, or still queued — fails
            # instead of hanging forever behind a dead scheduler.
            self._scheduler_dead = True
            error = GovernanceError(
                "GovernorService scheduler stopped before this ticket ran"
            )
            for submission in self._inflight:
                if not submission.ticket.done():
                    submission.ticket._fail(error)
                    with self._stats_lock:
                        self._counters["failed"] += 1
            self._inflight = []
            carry, self._carry = self._carry, None
            if carry is not None and carry is not _SHUTDOWN:
                carry.ticket._fail(error)
                with self._stats_lock:
                    self._counters["failed"] += 1
            self._fail_pending(error)

    def _fail_pending(self, error: BaseException) -> None:
        while True:
            try:
                item = self._queue.get_nowait()
            except queue.Empty:
                return
            if item is not _SHUTDOWN:
                item.ticket._fail(error)
                with self._stats_lock:
                    self._counters["failed"] += 1
            self._queue.task_done()

    def _coalesce(self, first: _Submission) -> List[_Submission]:
        """Drain immediately-available same-kind submissions behind ``first``.

        Coalescing stops at ``max_batch_tables`` total tables (for table
        submissions), at a kind switch, or at the shutdown sentinel; the
        stopping item is carried into the next scheduler turn so FIFO order
        across kinds is preserved.
        """
        batch = [first]
        size = self._batch_size(first)
        while size < self.max_batch_tables:
            try:
                nxt = self._queue.get_nowait()
            except queue.Empty:
                break
            if nxt is _SHUTDOWN or nxt.kind != first.kind:
                self._carry = nxt
                break
            batch.append(nxt)
            size += self._batch_size(nxt)
        return batch

    @staticmethod
    def _batch_size(submission: _Submission) -> int:
        if submission.kind == "tables":
            return len(submission.payload)
        return 1

    def _execute(self, kind: str, batch: List[_Submission]) -> None:
        with self._stats_lock:
            self._counters["batches"] += 1
            self._counters["coalesced"] += len(batch) - 1
        if kind in ("refresh", "retract"):
            # Per-submission execution: each ticket gets its own report and
            # its own failure, so one broken refresh cannot poison the rest.
            for submission in batch:
                self._execute_guarded(submission, lambda s=submission: self._execute_one(s))
            return
        # Quarantined submissions fail fast up front; the rest run as one
        # coalesced batch.
        live: List[_Submission] = []
        for submission in batch:
            poison = self._quarantine_error(submission)
            if poison is not None:
                submission.ticket._mark_running()
                submission.ticket._fail(poison)
                with self._stats_lock:
                    self._counters["failed"] += 1
                    self._counters["quarantined"] += 1
            else:
                live.append(submission)
        if not live:
            return
        for submission in live:
            submission.ticket._mark_running()
        try:
            report = self._run_with_retry(lambda: self._execute_batch(kind, live))
        except BaseException as error:
            if len(live) > 1:
                # The merged batch failed (and rolled back).  Split it and
                # run each submission alone: one poison table then fails
                # only its own ticket instead of the whole batch, and the
                # healthy submissions still land.
                for submission in live:
                    self._execute_guarded(
                        submission,
                        lambda s=submission: self._execute_batch(kind, [s]),
                        mark_running=False,
                    )
            else:
                self._record_failure(live[0], error)
                live[0].ticket._fail(error)
                with self._stats_lock:
                    self._counters["failed"] += 1
        else:
            for submission in live:
                self._record_success(submission)
                submission.ticket._resolve(report)
            with self._stats_lock:
                self._counters["completed"] += len(live)

    def _execute_guarded(
        self, submission: _Submission, work, mark_running: bool = True
    ) -> None:
        """Run one submission's work with quarantine + retry + bookkeeping."""
        if mark_running:
            submission.ticket._mark_running()
        poison = self._quarantine_error(submission)
        if poison is not None:
            submission.ticket._fail(poison)
            with self._stats_lock:
                self._counters["failed"] += 1
                self._counters["quarantined"] += 1
            return
        try:
            report = self._run_with_retry(work)
        except BaseException as error:
            self._record_failure(submission, error)
            submission.ticket._fail(error)
            with self._stats_lock:
                self._counters["failed"] += 1
        else:
            self._record_success(submission)
            submission.ticket._resolve(report)
            with self._stats_lock:
                self._counters["completed"] += 1

    def _execute_batch(self, kind: str, batch: List[_Submission]) -> GovernorReport:
        if kind == "tables":
            return self.governor.add_data_lake(self._merge_lake(batch))
        scripts = [script for s in batch for script in s.payload]
        return self.governor.add_pipelines(scripts)

    def _execute_one(self, submission: _Submission) -> GovernorReport:
        if submission.kind == "refresh":
            dataset_name, table = submission.payload
            return self.governor.refresh_table(table, dataset_name=dataset_name)
        dataset_name, table_name = submission.payload
        report = GovernorReport()
        if self.governor.retract_table(dataset_name, table_name):
            report.retracted_tables.append(f"{dataset_name}/{table_name}")
        return report

    @staticmethod
    def _merge_lake(batch: List[_Submission]) -> DataLake:
        """One lake holding every table of a coalesced batch.

        A ``(dataset, table)`` key submitted twice within one batch keeps the
        *last* submission — equivalent to applying the submissions in order,
        since the governor's refresh path makes a changed re-add
        byte-identical to governing the final contents directly.
        """
        merged: Dict[Tuple[str, str], Tuple[str, Table]] = {}
        for submission in batch:
            for dataset_name, table in submission.payload:
                merged[(dataset_name, table.name)] = (dataset_name, table)
        lake = DataLake("governor-service-batch")
        for dataset_name, table in merged.values():
            lake.add_table(dataset_name, table)
        return lake
