"""The LiDS ontology and knowledge-graph construction (KG Governor).

This package is the core of the platform: it turns column profiles and
abstracted pipelines into the LiDS graph.

* :mod:`repro.kg.ontology` — the LiDS ontology (classes, object properties,
  data properties) under ``http://kglids.org/ontology/``.
* :mod:`repro.kg.dataset_graph` — the Data Global Schema Builder
  (Algorithm 3): metadata subgraphs plus similarity edges annotated with
  RDF-star scores, and derived unionable / joinable table relationships.
* :mod:`repro.kg.pipeline_graph` — pipeline named graphs and the library
  hierarchy graph.
* :mod:`repro.kg.linker` — the Global Graph Linker verifying predicted
  dataset usage against the dataset graph.
* :mod:`repro.kg.governor` — the KG Governor orchestrating profiling,
  abstraction, construction and incremental maintenance.
* :mod:`repro.kg.service` — the queued ingestion service: ``submit_*``
  returns :class:`IngestTicket` handles while a background scheduler
  coalesces micro-batches and commits them atomically.
* :mod:`repro.kg.storage` — the KGLiDS storage bundle (quad store +
  embedding store + model store).
"""

from repro.kg.dataset_graph import DataGlobalSchemaBuilder, SimilarityThresholds
from repro.kg.errors import (
    GovernanceError,
    PoisonTableError,
    SourceUnavailableError,
    TableReadError,
    TransientError,
)
from repro.kg.governor import GovernorReport, KGGovernor
from repro.kg.linker import GlobalGraphLinker
from repro.kg.ontology import LiDSOntology, column_uri, dataset_uri, pipeline_graph_uri, table_uri
from repro.kg.pipeline_graph import PipelineGraphBuilder
from repro.kg.service import GovernorService, IngestTicket
from repro.kg.storage import KGLiDSStorage

__all__ = [
    "LiDSOntology",
    "dataset_uri",
    "table_uri",
    "column_uri",
    "pipeline_graph_uri",
    "SimilarityThresholds",
    "DataGlobalSchemaBuilder",
    "PipelineGraphBuilder",
    "GlobalGraphLinker",
    "KGGovernor",
    "GovernorReport",
    "GovernorService",
    "IngestTicket",
    "KGLiDSStorage",
    "GovernanceError",
    "TransientError",
    "PoisonTableError",
    "SourceUnavailableError",
    "TableReadError",
]
