"""Structured failure taxonomy for the governance tier.

The governor service classifies batch failures so callers (and its own
scheduler) can react mechanically instead of pattern-matching messages:

* :class:`TransientError` — worth retrying: the condition is expected to
  clear on its own (lock contention, a briefly unavailable resource).  The
  scheduler retries these with capped exponential backoff before failing
  the ticket.
* :class:`PoisonTableError` — not worth retrying: the same submission has
  failed repeatedly, so it is quarantined and every further submission
  touching it fails fast with this error instead of wedging the queue.

Failures that are neither (a profiler bug, bad input data) surface on the
ticket as the *original* exception — the taxonomy wraps policy decisions,
never the underlying fault.
"""

from __future__ import annotations

from typing import Any, Optional

__all__ = [
    "GovernanceError",
    "TransientError",
    "PoisonTableError",
    "SourceUnavailableError",
    "TableReadError",
]


class GovernanceError(RuntimeError):
    """Base class of governance-tier failures."""


class TransientError(GovernanceError):
    """A retryable failure: the scheduler backs off and tries again.

    Raise this (or subclass it) from profilers / backends / hooks when a
    failure is expected to clear on retry; anything else is treated as a
    hard failure and surfaces on the ticket unchanged.
    """


class SourceUnavailableError(TransientError):
    """A lake source is (presumably briefly) unreachable.

    Raised by crawler sources when a whole source flaps — the directory is
    unlistable, the share unmounted, the endpoint down.  Transient by
    definition: the crawler backs off and counts it toward the source's
    circuit breaker rather than failing individual tables.
    """


class TableReadError(GovernanceError):
    """One table could not be read into memory (truncated, malformed, denied).

    Deliberately *not* transient: a broken file stays broken until someone
    rewrites it, so retrying in a tight loop is wasted work.  The crawler
    counts these per table and quarantines repeat offenders instead of
    stalling its scan loop.  ``path`` locates the offender; the underlying
    parser/OS error is chained as ``__cause__``.
    """

    def __init__(self, path: Any, message: str, cause: Optional[BaseException] = None):
        self.path = path
        super().__init__(f"cannot read table at {path}: {message}")
        if cause is not None:
            self.__cause__ = cause


class PoisonTableError(GovernanceError):
    """A quarantined submission: it failed repeatedly and is refused fast.

    ``key`` identifies the offender (e.g. ``("table", dataset, name)``),
    ``attempts`` how many failures led to quarantine, and ``cause`` the last
    underlying exception (also chained as ``__cause__``).
    """

    def __init__(self, key: Any, attempts: int, cause: Optional[BaseException] = None):
        self.key = key
        self.attempts = attempts
        self.cause = cause
        super().__init__(
            f"submission {key!r} is quarantined after {attempts} failed "
            f"attempts (last error: {cause!r}); clear_quarantine() to retry"
        )
        if cause is not None:
            self.__cause__ = cause
