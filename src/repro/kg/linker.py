"""The Global Graph Linker.

Dataset-usage analysis only *predicts* which tables and columns a pipeline
reads; the linker verifies each prediction against the Data Global Schema and
materializes ``reads`` / ``readsColumn`` edges (annotated with a prediction
score) for the verified ones.  Unverified predictions — e.g. the user-defined
``NormalizedAge`` column of the running example — are dropped.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.kg.ontology import (
    DATASET_GRAPH,
    LiDSOntology,
    column_uri,
    pipeline_graph_uri,
    pipeline_uri,
    table_uri,
)
from repro.pipelines.abstraction import AbstractedPipeline
from repro.rdf import Literal, QuadStore, RDF, URIRef


@dataclass
class LinkReport:
    """What the linker verified and what it pruned for one pipeline."""

    pipeline_id: str
    linked_tables: List[str] = field(default_factory=list)
    linked_columns: List[str] = field(default_factory=list)
    pruned_tables: List[str] = field(default_factory=list)
    pruned_columns: List[str] = field(default_factory=list)


class GlobalGraphLinker:
    """Links pipeline graphs to the dataset graph."""

    def __init__(self, prediction_score: float = 0.92):
        #: Confidence attached to materialized predicted links (the paper
        #: annotates predicted edges with a score, e.g. 0.92 in Figure 2).
        self.prediction_score = prediction_score
        # Cached table resolution map, keyed by the store object and the
        # dataset graph's mutation counter: any dataset-graph write (including
        # remove-then-add sequences that leave the triple count unchanged)
        # invalidates it even without an explicit invalidate_cache() call,
        # while writes to pipeline graphs — like the linker's own annotate
        # calls — keep it warm across link_pipelines.
        self._known_tables_cache: Optional[Dict[Tuple[str, str], URIRef]] = None
        self._cache_store: Optional[QuadStore] = None
        self._cache_version: int = -1

    def invalidate_cache(self) -> None:
        """Drop the cached table map (call after dataset-graph writes)."""
        self._known_tables_cache = None
        self._cache_store = None
        self._cache_version = -1

    def _known_tables_for(self, store: QuadStore) -> Dict[Tuple[str, str], URIRef]:
        """The cached ``_known_tables(store)``, shared across link calls."""
        version = store.graph_version(DATASET_GRAPH)
        if (
            self._known_tables_cache is None
            or self._cache_store is not store
            or self._cache_version != version
        ):
            self._known_tables_cache = self._known_tables(store)
            self._cache_store = store
            self._cache_version = version
        return self._known_tables_cache

    # ------------------------------------------------------------------- API
    def link_pipeline(
        self, abstraction: AbstractedPipeline, store: QuadStore
    ) -> LinkReport:
        """Verify and materialize the predicted reads of one pipeline."""
        ontology = LiDSOntology
        report = LinkReport(pipeline_id=abstraction.pipeline_id)
        graph = pipeline_graph_uri(abstraction.pipeline_id)
        pipeline_node = pipeline_uri(abstraction.pipeline_id)
        known_tables = self._known_tables_for(store)
        linked_table_nodes: List[URIRef] = []
        for dataset_name, table_name in abstraction.predicted_table_reads:
            resolved = self._resolve_table(dataset_name, table_name, known_tables)
            if resolved is None:
                report.pruned_tables.append(f"{dataset_name}/{table_name}")
                continue
            table_node = table_uri(*resolved)
            store.annotate(
                pipeline_node,
                ontology.reads,
                table_node,
                ontology.withCertainty,
                Literal(self.prediction_score),
                graph=graph,
            )
            linked_table_nodes.append(table_node)
            report.linked_tables.append("/".join(resolved))
        known_columns = self._known_columns(store, linked_table_nodes)
        for column_name in abstraction.predicted_column_reads:
            resolved_column = known_columns.get(column_name.lower())
            if resolved_column is None:
                report.pruned_columns.append(column_name)
                continue
            store.annotate(
                pipeline_node,
                ontology.readsColumn,
                resolved_column,
                ontology.withCertainty,
                Literal(self.prediction_score),
                graph=graph,
            )
            report.linked_columns.append(column_name)
        return report

    def link_pipelines(
        self, abstractions: Sequence[AbstractedPipeline], store: QuadStore
    ) -> List[LinkReport]:
        return [self.link_pipeline(abstraction, store) for abstraction in abstractions]

    # -------------------------------------------------------------- internals
    @staticmethod
    def _known_tables(store: QuadStore) -> Dict[Tuple[str, str], URIRef]:
        """Map of ``(dataset name lower, table name lower) -> table node``."""
        ontology = LiDSOntology
        known: Dict[Tuple[str, str], URIRef] = {}
        for triple in store.triples(None, RDF.type, ontology.Table, graph=DATASET_GRAPH):
            table_node = triple.subject
            table_name = store.value(table_node, ontology.hasName, graph=DATASET_GRAPH, default="")
            dataset_node = store.value(table_node, ontology.isPartOf, graph=DATASET_GRAPH)
            dataset_name = (
                store.value(dataset_node, ontology.hasName, graph=DATASET_GRAPH, default="")
                if dataset_node is not None
                else ""
            )
            known[(str(dataset_name).lower(), str(table_name).lower())] = table_node
        return known

    @staticmethod
    def _resolve_table(
        dataset_name: Optional[str], table_name: str, known: Dict[Tuple[str, str], URIRef]
    ) -> Optional[Tuple[str, str]]:
        table_key = str(table_name).lower()
        if dataset_name is not None and (str(dataset_name).lower(), table_key) in known:
            return str(dataset_name), str(table_name)
        for (known_dataset, known_table) in known:
            if known_table == table_key:
                return known_dataset, known_table
        return None

    @staticmethod
    def _known_columns(
        store: QuadStore, table_nodes: Sequence[URIRef]
    ) -> Dict[str, URIRef]:
        """Columns of the linked tables, keyed by lower-cased name."""
        ontology = LiDSOntology
        known: Dict[str, URIRef] = {}
        for table_node in table_nodes:
            for triple in store.triples(None, ontology.isPartOf, table_node, graph=DATASET_GRAPH):
                column_node = triple.subject
                if not store.contains(column_node, RDF.type, ontology.Column, graph=DATASET_GRAPH):
                    continue
                column_name = store.value(column_node, ontology.hasName, graph=DATASET_GRAPH, default="")
                known.setdefault(str(column_name).lower(), column_node)
        return known
