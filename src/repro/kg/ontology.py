"""The LiDS (Linked Data Science) ontology.

The ontology conceptualizes data, pipeline and library entities (Section 2.1):
13 classes, 19 object properties and 22 data properties under
``http://kglids.org/ontology/``, with data instances under
``http://kglids.org/resource/``.  :meth:`LiDSOntology.ontology_triples` emits
the OWL declarations so the ontology itself is part of the published graph.
"""

from __future__ import annotations

import re
from typing import List, Tuple

from repro.rdf.namespace import KGLIDS_DATA, KGLIDS_ONTOLOGY, KGLIDS_PIPELINE, OWL, RDF, RDFS
from repro.rdf.terms import Literal, URIRef


class LiDSOntology:
    """URI constants for every class and property of the LiDS ontology."""

    # ------------------------------------------------------------ 13 classes
    Source = KGLIDS_ONTOLOGY.Source
    Dataset = KGLIDS_ONTOLOGY.Dataset
    Table = KGLIDS_ONTOLOGY.Table
    Column = KGLIDS_ONTOLOGY.Column
    Pipeline = KGLIDS_ONTOLOGY.Pipeline
    Statement = KGLIDS_ONTOLOGY.Statement
    Parameter = KGLIDS_ONTOLOGY.Parameter
    Library = KGLIDS_ONTOLOGY.Library
    Package = KGLIDS_ONTOLOGY.Package
    Class = KGLIDS_ONTOLOGY.Class
    Function = KGLIDS_ONTOLOGY.Function
    Model = KGLIDS_ONTOLOGY.Model
    Task = KGLIDS_ONTOLOGY.Task

    CLASSES = (
        Source,
        Dataset,
        Table,
        Column,
        Pipeline,
        Statement,
        Parameter,
        Library,
        Package,
        Class,
        Function,
        Model,
        Task,
    )

    # -------------------------------------------------- 19 object properties
    isPartOf = KGLIDS_ONTOLOGY.isPartOf
    hasSource = KGLIDS_ONTOLOGY.hasSource
    reads = KGLIDS_ONTOLOGY.reads
    readsColumn = KGLIDS_ONTOLOGY.readsColumn
    callsLibrary = KGLIDS_ONTOLOGY.callsLibrary
    callsFunction = KGLIDS_ONTOLOGY.callsFunction
    hasNextStatement = KGLIDS_ONTOLOGY.hasNextStatement  # code flow
    hasDataFlowTo = KGLIDS_ONTOLOGY.hasDataFlowTo  # data flow
    hasParameter = KGLIDS_ONTOLOGY.hasParameter
    isSubElementOf = KGLIDS_ONTOLOGY.isSubElementOf  # library hierarchy
    hasContentSimilarity = KGLIDS_ONTOLOGY.hasContentSimilarity
    hasLabelSimilarity = KGLIDS_ONTOLOGY.hasLabelSimilarity
    hasSemanticSimilarity = KGLIDS_ONTOLOGY.hasSemanticSimilarity
    unionableWith = KGLIDS_ONTOLOGY.unionableWith
    joinableWith = KGLIDS_ONTOLOGY.joinableWith
    usesOperation = KGLIDS_ONTOLOGY.usesOperation
    appliedToColumn = KGLIDS_ONTOLOGY.appliedToColumn
    appliedToTable = KGLIDS_ONTOLOGY.appliedToTable
    hasModelingTask = KGLIDS_ONTOLOGY.hasModelingTask

    OBJECT_PROPERTIES = (
        isPartOf,
        hasSource,
        reads,
        readsColumn,
        callsLibrary,
        callsFunction,
        hasNextStatement,
        hasDataFlowTo,
        hasParameter,
        isSubElementOf,
        hasContentSimilarity,
        hasLabelSimilarity,
        hasSemanticSimilarity,
        unionableWith,
        joinableWith,
        usesOperation,
        appliedToColumn,
        appliedToTable,
        hasModelingTask,
    )

    # ---------------------------------------------------- 22 data properties
    hasName = KGLIDS_ONTOLOGY.hasName
    hasFilePath = KGLIDS_ONTOLOGY.hasFilePath
    hasTotalRows = KGLIDS_ONTOLOGY.hasTotalRows
    hasTotalColumns = KGLIDS_ONTOLOGY.hasTotalColumns
    hasFineGrainedType = KGLIDS_ONTOLOGY.hasFineGrainedType
    hasMissingCount = KGLIDS_ONTOLOGY.hasMissingCount
    hasDistinctCount = KGLIDS_ONTOLOGY.hasDistinctCount
    hasMinValue = KGLIDS_ONTOLOGY.hasMinValue
    hasMaxValue = KGLIDS_ONTOLOGY.hasMaxValue
    hasMeanValue = KGLIDS_ONTOLOGY.hasMeanValue
    hasStdValue = KGLIDS_ONTOLOGY.hasStdValue
    hasTrueRatio = KGLIDS_ONTOLOGY.hasTrueRatio
    hasAverageLength = KGLIDS_ONTOLOGY.hasAverageLength
    hasSizeInBytes = KGLIDS_ONTOLOGY.hasSizeInBytes
    hasVotes = KGLIDS_ONTOLOGY.hasVotes
    hasScore = KGLIDS_ONTOLOGY.hasScore
    hasAuthor = KGLIDS_ONTOLOGY.hasAuthor
    hasDate = KGLIDS_ONTOLOGY.hasDate
    hasTaskType = KGLIDS_ONTOLOGY.hasTaskType
    hasStatementText = KGLIDS_ONTOLOGY.hasStatementText
    hasControlFlowType = KGLIDS_ONTOLOGY.hasControlFlowType
    hasParameterValue = KGLIDS_ONTOLOGY.hasParameterValue

    DATA_PROPERTIES = (
        hasName,
        hasFilePath,
        hasTotalRows,
        hasTotalColumns,
        hasFineGrainedType,
        hasMissingCount,
        hasDistinctCount,
        hasMinValue,
        hasMaxValue,
        hasMeanValue,
        hasStdValue,
        hasTrueRatio,
        hasAverageLength,
        hasSizeInBytes,
        hasVotes,
        hasScore,
        hasAuthor,
        hasDate,
        hasTaskType,
        hasStatementText,
        hasControlFlowType,
        hasParameterValue,
    )

    #: RDF-star annotation property carrying prediction / similarity scores.
    withCertainty = KGLIDS_ONTOLOGY.withCertainty

    @classmethod
    def ontology_triples(cls) -> List[Tuple]:
        """OWL declarations of all classes and properties plus labels."""
        triples: List[Tuple] = []
        for class_uri in cls.CLASSES:
            triples.append((class_uri, RDF.type, OWL.Class))
            triples.append((class_uri, RDFS.label, Literal(class_uri.local_name())))
        for property_uri in cls.OBJECT_PROPERTIES:
            triples.append((property_uri, RDF.type, OWL.ObjectProperty))
            triples.append((property_uri, RDFS.label, Literal(property_uri.local_name())))
        for property_uri in cls.DATA_PROPERTIES + (cls.withCertainty,):
            triples.append((property_uri, RDF.type, OWL.DatatypeProperty))
            triples.append((property_uri, RDFS.label, Literal(property_uri.local_name())))
        return triples


# ---------------------------------------------------------------- URI minting
def _slug(text: str) -> str:
    """URI-safe slug of an arbitrary name."""
    return re.sub(r"[^A-Za-z0-9_.\-]+", "_", str(text)).strip("_") or "unnamed"


def source_uri(source_name: str) -> URIRef:
    return KGLIDS_DATA.term(f"source/{_slug(source_name)}")


def dataset_uri(dataset_name: str) -> URIRef:
    return KGLIDS_DATA.term(f"{_slug(dataset_name)}")


def table_uri(dataset_name: str, table_name: str) -> URIRef:
    return KGLIDS_DATA.term(f"{_slug(dataset_name)}/{_slug(table_name)}")


def column_uri(dataset_name: str, table_name: str, column_name: str) -> URIRef:
    return KGLIDS_DATA.term(
        f"{_slug(dataset_name)}/{_slug(table_name)}/{_slug(column_name)}"
    )


def pipeline_uri(pipeline_id: str) -> URIRef:
    return KGLIDS_PIPELINE.term(_slug(pipeline_id))


def pipeline_graph_uri(pipeline_id: str) -> URIRef:
    """The named graph holding one pipeline's abstraction."""
    return KGLIDS_PIPELINE.term(f"graph/{_slug(pipeline_id)}")


def statement_uri(pipeline_id: str, statement_index: int) -> URIRef:
    return KGLIDS_PIPELINE.term(f"{_slug(pipeline_id)}/s{statement_index}")


def library_uri(library_name: str) -> URIRef:
    return KGLIDS_DATA.term(f"library/{_slug(library_name)}")


#: Named graph holding the dataset graph (data global schema).
DATASET_GRAPH = KGLIDS_DATA.term("graph/datasets")
#: Named graph holding the library hierarchy graph.
LIBRARY_GRAPH = KGLIDS_DATA.term("graph/libraries")
#: Named graph holding the ontology declarations.
ONTOLOGY_GRAPH = KGLIDS_ONTOLOGY.term("graph")
