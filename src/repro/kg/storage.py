"""The KGLiDS storage layer: LiDS graph + embedding store + model store."""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Dict, List, Optional

from repro.embeddings.store import EmbeddingStore
from repro.rdf import QuadStore
from repro.sparql import SPARQLEngine, SelectResult


class KGLiDSStorage:
    """Bundles the three stores of Figure 1's "KGLiDS Storage" component.

    * the RDF-star quad store holding the LiDS graph (GraphDB substitute),
    * the embedding store holding CoLR column / table / dataset embeddings
      (Faiss substitute),
    * the model store holding trained models (GNN recommenders, CoLR models)
      that the Model Manager exposes to users.
    """

    def __init__(
        self,
        graph: Optional[QuadStore] = None,
        embeddings: Optional[EmbeddingStore] = None,
    ):
        #: The LiDS graph; pass ``QuadStore.sqlite(path)`` for a durable lake.
        self.graph = graph if graph is not None else QuadStore()
        self.embeddings = embeddings if embeddings is not None else EmbeddingStore()
        # One gate governs all of KGLiDS Storage: embedding reads/writes
        # synchronize with graph commit batches, so recommenders can never
        # observe an embedding batch mid-apply (or mid-rollback).
        self.embeddings.attach_gate(self.graph.gate)
        self._models: Dict[str, Any] = {}
        self._engine: Optional[SPARQLEngine] = None

    def close(self) -> None:
        """Flush and release the graph backend (no-op for in-memory stores).

        Idempotent: closing twice (or after a failed batch) is a no-op.
        """
        self.graph.close()

    @contextmanager
    def transaction(self):
        """One atomic commit across the quad store *and* the embedding store.

        Opens a graph ``write_batch`` and enlists the embedding store in it:
        embedding mutations record undo entries, and the graph batch's
        rollback/commit callbacks unwind or seal them together with the
        quads.  Nests like ``write_batch`` — an inner ``transaction`` joins
        the outer one rather than opening a second embedding batch.
        """
        with self.graph.write_batch():
            if (
                getattr(self.graph, "undo_enabled", False)
                and not self.embeddings.in_batch
            ):
                self.embeddings.begin_batch()
                self.graph.on_rollback(self.embeddings.rollback_batch)
                self.graph.on_commit(self.embeddings.commit_batch)
            yield self

    # ---------------------------------------------------------------- SPARQL
    @property
    def engine(self) -> SPARQLEngine:
        """A SPARQL engine bound to the LiDS graph."""
        if self._engine is None:
            self._engine = SPARQLEngine(self.graph)
        return self._engine

    def query(self, sparql: str) -> SelectResult:
        """Run an ad-hoc SPARQL SELECT query against the LiDS graph."""
        return self.engine.select(sparql)

    # ---------------------------------------------------------------- models
    def register_model(self, name: str, model: Any) -> None:
        """Register a trained model under a name (Model Manager upload)."""
        self._models[name] = model

    def get_model(self, name: str) -> Any:
        """Fetch a registered model; raises ``KeyError`` with the known names."""
        if name not in self._models:
            raise KeyError(
                f"no model named {name!r} is registered; available: {sorted(self._models)}"
            )
        return self._models[name]

    def has_model(self, name: str) -> bool:
        return name in self._models

    def list_models(self) -> List[str]:
        """Names of all registered models (Model Manager listing)."""
        return sorted(self._models)

    # ------------------------------------------------------------ statistics
    def statistics(self) -> Dict[str, int]:
        """Combined statistics used by the Statistics Manager."""
        stats = dict(self.graph.statistics())
        stats["num_embeddings"] = self.embeddings.count()
        stats["num_models"] = len(self._models)
        return stats
