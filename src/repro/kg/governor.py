"""The KG Governor: bootstrapping and incrementally maintaining the LiDS graph.

The governor wires together the three components of Figure 1: data profiling
(Algorithm 2), pipeline abstraction (Algorithm 1) and KG construction
(Algorithm 3 + pipeline graphs + the Global Graph Linker).  It owns the
storage bundle and keeps the profiles around so that datasets and pipelines
can be added incrementally after bootstrapping.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple, Union

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (service -> governor)
    from repro.kg.service import GovernorService

from repro.embeddings.colr import ColRModelSet
from repro.embeddings.store import EmbeddingStore
from repro.kg.dataset_graph import DataGlobalSchemaBuilder, SimilarityThresholds
from repro.kg.linker import GlobalGraphLinker, LinkReport
from repro.kg.ontology import (
    DATASET_GRAPH,
    ONTOLOGY_GRAPH,
    LiDSOntology,
    column_uri,
    dataset_uri,
    pipeline_graph_uri,
    table_uri,
)
from repro.kg.pipeline_graph import PipelineGraphBuilder
from repro.kg.storage import KGLiDSStorage
from repro.parallel import JobExecutor
from repro.pipelines.abstraction import AbstractedPipeline, PipelineAbstractor, PipelineScript
from repro.profiler.profile import DataProfiler, TableProfile
from repro.rdf import QuadStore, SqliteBackend
from repro.tabular import DataLake, Table

PathLike = Union[str, Path]

#: File names of one saved governor directory.
_GRAPH_FILE = "graph.sqlite3"
_EMBEDDINGS_FILE = "embeddings.npz"
_PROFILES_FILE = "profiles.json"
_PIPELINES_FILE = "pipelines.json"
_MANIFEST_FILE = "manifest.json"
_DELTA_FILE = "delta.json"


@dataclass
class GovernorReport:
    """Summary of one governor run (bootstrapping or incremental update)."""

    num_tables_profiled: int = 0
    num_columns_profiled: int = 0
    num_pipelines_abstracted: int = 0
    num_similarity_edges: int = 0
    #: ``dataset/table`` ids that went through the refresh path (retract +
    #: re-profile) because their contents changed since they were governed.
    refreshed_tables: List[str] = field(default_factory=list)
    #: ``dataset/table`` ids removed from the graph by retraction requests.
    retracted_tables: List[str] = field(default_factory=list)
    link_reports: List[LinkReport] = field(default_factory=list)

    def merge(self, other: "GovernorReport") -> "GovernorReport":
        """Compose two reports into a new one (associative, non-mutating).

        Counters add and the event lists concatenate in ``self``-then-
        ``other`` order, so ``(a.merge(b)).merge(c) == a.merge(b.merge(c))``
        — ticket results from the governor service compose into the same
        totals no matter how the scheduler coalesced the submissions.
        """
        return GovernorReport(
            num_tables_profiled=self.num_tables_profiled + other.num_tables_profiled,
            num_columns_profiled=self.num_columns_profiled + other.num_columns_profiled,
            num_pipelines_abstracted=(
                self.num_pipelines_abstracted + other.num_pipelines_abstracted
            ),
            num_similarity_edges=self.num_similarity_edges + other.num_similarity_edges,
            refreshed_tables=self.refreshed_tables + other.refreshed_tables,
            retracted_tables=self.retracted_tables + other.retracted_tables,
            link_reports=self.link_reports + other.link_reports,
        )

    def __add__(self, other: "GovernorReport") -> "GovernorReport":
        if not isinstance(other, GovernorReport):
            return NotImplemented
        return self.merge(other)

    def __radd__(self, other) -> "GovernorReport":
        # ``sum(reports)`` starts from 0; an empty report is the identity.
        if other == 0:
            return self.merge(GovernorReport())
        return NotImplemented


class KGGovernor:
    """Creates, maintains and synchronizes the LiDS graph."""

    def __init__(
        self,
        storage: Optional[KGLiDSStorage] = None,
        profiler: Optional[DataProfiler] = None,
        abstractor: Optional[PipelineAbstractor] = None,
        thresholds: Optional[SimilarityThresholds] = None,
        colr_models: Optional[ColRModelSet] = None,
        executor: Optional[JobExecutor] = None,
        schema_builder: Optional[DataGlobalSchemaBuilder] = None,
        include_default_parameters: bool = True,
    ):
        self.storage = storage or KGLiDSStorage()
        self.executor = executor or JobExecutor()
        # Pass the *original* (possibly None) model set through so the
        # profiler keeps its all-default-components fast path: only then can
        # process-pool workers rebuild an identical profiler from config.
        self.profiler = profiler or DataProfiler(
            colr_models=colr_models, executor=self.executor
        )
        self.colr_models = colr_models or self.profiler.colr_models
        self.abstractor = abstractor or PipelineAbstractor(executor=self.executor)
        self.schema_builder = schema_builder or DataGlobalSchemaBuilder(
            thresholds=thresholds, executor=self.executor
        )
        self.pipeline_builder = PipelineGraphBuilder(
            include_default_parameters=include_default_parameters
        )
        self.linker = GlobalGraphLinker()
        self.table_profiles: List[TableProfile] = []
        #: ``(dataset, table) -> TableProfile`` lookup, maintained alongside
        #: ``table_profiles`` so :meth:`table_profile` is O(1) and repeated
        #: adds of the same table are detected without a scan.
        self._profiles_by_key: Dict[Tuple[str, str], TableProfile] = {}
        #: Content fingerprint of each governed table, recorded at profiling
        #: time so re-adds can tell unchanged (skip) from changed (refresh).
        self._fingerprints_by_key: Dict[Tuple[str, str], str] = {}
        self.abstractions: List[AbstractedPipeline] = []
        #: ``pipeline_id -> AbstractedPipeline``, maintained alongside
        #: ``abstractions`` so re-adds of already-governed scripts are
        #: detected in O(1) (and skipped when the source is unchanged).
        self._abstractions_by_id: Dict[str, AbstractedPipeline] = {}
        #: The :class:`~repro.kg.service.GovernorService` currently fronting
        #: this governor, if any.  While attached, the public sync mutators
        #: become submit-and-wait shims through the service queue so queued
        #: and direct callers serialize on one scheduler.
        self._service: Optional["GovernorService"] = None
        #: Set by ``LiDSClient.open``: a read-only governor rejects every
        #: mutation (the saved directory stays untouched).
        self.read_only = False
        #: What the durable backend verified/repaired on open: the committed
        #: ``commit_version`` marker plus any torn shards / orphan tables it
        #: discarded (empty for in-memory stores).
        self.recovery: Dict[str, object] = dict(self.storage.graph.recovery or {})
        self._write_ontology()

    def _write_ontology(self) -> None:
        # A durable store reopened from disk usually carries the full
        # ontology graph already; skipping the no-op re-adds avoids loading
        # its shard just to discover every triple exists.  Skip only on an
        # *exact* count match: lakes saved by an older code version re-add
        # when the ontology grows or shrinks.  (A rename that keeps the
        # count unchanged would need an explicit migration — the ontology
        # is versioned with this code and has only ever grown.)
        triples = LiDSOntology.ontology_triples()
        if self.storage.graph.num_triples(ONTOLOGY_GRAPH) == len(triples):
            return
        self.storage.graph.add_triples(triples, graph=ONTOLOGY_GRAPH)

    # -------------------------------------------------------- service routing
    def _ensure_writable(self) -> None:
        if self.read_only:
            raise PermissionError(
                "this governor is read-only (opened via LiDSClient.open); "
                "reopen it with KGGovernor.open to govern new data"
            )

    def _route_to_service(self) -> Optional["GovernorService"]:
        """The service to submit through, or ``None`` for the direct path.

        Mutations called on the service's own scheduler thread run directly
        (they *are* the queued work being executed); everyone else becomes a
        submit-and-wait shim so concurrent sync callers and queued tickets
        serialize through one scheduler.  Waiting while holding a read view
        on the graph would deadlock against the scheduler's write batches,
        so that is rejected up front.
        """
        service = self._service
        if service is None or service.is_scheduler_thread():
            return None
        if self.storage.graph.in_read_view():
            raise RuntimeError(
                "cannot govern synchronously while holding a read view: the "
                "scheduler's write batch would wait on this thread's view "
                "while this thread waits on the ticket"
            )
        return service

    # ----------------------------------------------------------- bootstrapping
    def bootstrap(
        self,
        lake: Optional[DataLake] = None,
        scripts: Optional[Sequence[PipelineScript]] = None,
    ) -> GovernorReport:
        """Profile a data lake, abstract pipeline scripts and build the LiDS graph."""
        report = GovernorReport()
        if lake is not None:
            report = report.merge(self.add_data_lake(lake))
        if scripts:
            report = report.merge(self.add_pipelines(scripts))
        return report

    # --------------------------------------------------------- state rollback
    def _profile_state_snapshot(self):
        """Copies of the python-side profile registries (undo material).

        The governor's dict/list state mutates alongside the graph inside a
        write batch; restoring this snapshot on rollback keeps both in step.
        The copies are shallow — profiles themselves are treated as
        immutable once built.
        """
        return (
            list(self.table_profiles),
            dict(self._profiles_by_key),
            dict(self._fingerprints_by_key),
        )

    def _restore_profile_state(self, snapshot) -> None:
        self.table_profiles, self._profiles_by_key, self._fingerprints_by_key = (
            list(snapshot[0]),
            dict(snapshot[1]),
            dict(snapshot[2]),
        )

    def _register_state_rollback(self, restore) -> None:
        """Attach a python-state restorer to the open write batch."""
        graph = self.storage.graph
        if graph.undo_enabled and graph.in_write_batch:
            graph.on_rollback(restore)

    # ------------------------------------------------------------ incremental
    def add_data_lake(
        self, lake: DataLake, *, _force_refresh: frozenset = frozenset()
    ) -> GovernorReport:
        """Profile and register every *new or changed* table of ``lake``.

        The add is incremental: tables already governed with unchanged
        contents are skipped (so re-adding a lake is idempotent), only the
        fresh tables are profiled, and the schema builder scores similarity
        for new x (new + existing) column pairs instead of rebuilding the
        full O(n^2) schema.  Adding tables one by one therefore yields the
        exact graph a single bootstrap over the union would.

        Re-adding a table whose *contents* changed (detected via the content
        fingerprint recorded when it was first governed) takes the refresh
        path: its stale metadata triples, similarity edges and embeddings
        are retracted and the re-governed footprint written *in the same
        commit* (readers observe old state or new, never neither), logged in
        ``GovernorReport.refreshed_tables``.  Change detection costs one
        hash pass over each already-governed table's values per re-add —
        far cheaper than profiling, but no longer the O(1) key lookup the
        pre-refresh governor used.

        Concurrency: profiling and similarity scoring run *outside* the
        store's write gate; only the final graph application (metadata
        subgraphs, similarity edges, table relationships) holds it, inside
        one ``write_batch`` — so concurrent read views block only for the
        short apply phase and observe either none or all of this add.  When
        a :class:`~repro.kg.service.GovernorService` fronts this governor,
        the call becomes a submit-and-wait through its queue.
        """
        self._ensure_writable()
        service = self._route_to_service()
        if service is not None:
            return service.submit_lake(lake).result()
        report = GovernorReport()
        fresh_tables: List[Table] = []
        fingerprints: Dict[Tuple[str, str], str] = {}
        #: ``(dataset, table, stale_profile)`` of re-adds whose contents
        #: changed — retracted inside the same commit that re-governs them.
        stale: List[Tuple[str, str, TableProfile]] = []
        for table in lake.tables():
            key = (table.dataset or "default", table.name)
            if key not in self._profiles_by_key:
                fresh_tables.append(table)
                fingerprints[key] = table.content_fingerprint()
                continue
            forced = key in _force_refresh
            recorded = self._fingerprints_by_key.get(key)
            if recorded is None and not forced:
                continue
            fingerprint = table.content_fingerprint()
            if forced or fingerprint != recorded:
                stale.append((key[0], key[1], self._profiles_by_key[key]))
                fresh_tables.append(table)
                fingerprints[key] = fingerprint
                report.refreshed_tables.append(f"{key[0]}/{key[1]}")
        if not fresh_tables:
            return report
        # Drop the stale profiles from the python registries *before*
        # planning so similarity is never scored against a profile being
        # retracted; the graph-side retraction happens inside the single
        # transaction below.  The snapshot restores everything if the batch
        # (or profiling itself) fails.
        snapshot = self._profile_state_snapshot()
        for dataset_name, table_name, profile in stale:
            key = (dataset_name, table_name)
            self._profiles_by_key.pop(key, None)
            self._fingerprints_by_key.pop(key, None)
            self.table_profiles = [p for p in self.table_profiles if p is not profile]
        self._fingerprints_by_key.update(fingerprints)
        try:
            new_profiles = self.profiler.profile_tables(fresh_tables)
            plan = self.schema_builder.plan_incremental(new_profiles, self.table_profiles)
        except BaseException:
            self._restore_profile_state(snapshot)
            raise
        report.num_tables_profiled += len(new_profiles)
        report.num_columns_profiled += sum(len(p.column_profiles) for p in new_profiles)
        # One transaction covers stale-footprint retraction, embeddings and
        # graph writes: a refresh is all-or-nothing, and readers see the old
        # table state replaced by the new in a single commit.
        with self.storage.transaction():
            self._register_state_rollback(
                lambda: self._restore_profile_state(snapshot)
            )
            for dataset_name, table_name, profile in stale:
                self._retract_graph_footprint(dataset_name, table_name, profile)
            self._store_embeddings(new_profiles)
            edges = self.schema_builder.apply_incremental(
                new_profiles, plan, self.storage.graph
            )
            self.table_profiles.extend(new_profiles)
            for profile in new_profiles:
                self._profiles_by_key[
                    (profile.dataset_name, profile.table_name)
                ] = profile
        # No explicit linker cache invalidation needed: the metadata writes
        # above bumped the dataset graph's version, which keys the cache.
        report.num_similarity_edges += len(edges)
        return report

    def add_table(self, table: Table, dataset_name: str = "default") -> GovernorReport:
        """Incrementally add a single table to the LiDS graph."""
        lake = DataLake(name=dataset_name)
        lake.add_table(dataset_name, table)
        return self.add_data_lake(lake)

    def add_pipelines(self, scripts: Sequence[PipelineScript]) -> GovernorReport:
        """Abstract scripts, write their named graphs, and link them to datasets.

        The add is incremental, mirroring :meth:`add_data_lake`: scripts whose
        ``pipeline_id`` is already governed with identical source code are
        skipped outright (re-adding a script collection is idempotent and
        cheap — this survives :meth:`save`/:meth:`open` because the
        abstractions round-trip through the saved directory), while scripts
        re-added with *changed* source have their stale named graph dropped
        before being abstracted and written afresh.

        Like :meth:`add_data_lake`, abstraction (the expensive static
        analysis) runs outside the store's write gate; stale-graph removal
        and the fresh graph writes each run as one atomic ``write_batch``,
        and a fronting service turns the call into a submit-and-wait.
        """
        self._ensure_writable()
        service = self._route_to_service()
        if service is not None:
            return service.submit_pipelines(scripts).result()
        report = GovernorReport()
        fresh_scripts: List[PipelineScript] = []
        changed_ids: set = set()
        snapshot = self._pipeline_state_snapshot()
        for script in scripts:
            governed = self._abstractions_by_id.get(script.pipeline_id)
            if governed is not None:
                if governed.script.source_code == script.source_code:
                    continue
                changed_ids.add(script.pipeline_id)
                del self._abstractions_by_id[script.pipeline_id]
            fresh_scripts.append(script)
        if changed_ids:
            with self.storage.graph.write_batch():
                self._register_state_rollback(
                    lambda: self._restore_pipeline_state(snapshot)
                )
                # Changed source: each stale pipeline's whole named graph
                # goes, and the shared library graph is rebuilt from the
                # surviving abstractions (the fresh re-abstractions below
                # re-contribute theirs through the normal add path).
                for pipeline_id in changed_ids:
                    self.storage.graph.remove_graph(pipeline_graph_uri(pipeline_id))
                self.abstractions = [
                    a for a in self.abstractions if a.pipeline_id not in changed_ids
                ]
                self._rebuild_library_graph()
        if not fresh_scripts:
            return report
        abstractions = self.abstractor.abstract_scripts(fresh_scripts)
        # Fresh snapshot: the retraction batch above may have committed, and
        # a rollback of the write batch below must not resurrect it.
        snapshot = self._pipeline_state_snapshot()
        with self.storage.graph.write_batch():
            self._register_state_rollback(
                lambda snap=snapshot: self._restore_pipeline_state(snap)
            )
            self.abstractions.extend(abstractions)
            for abstraction in abstractions:
                self._abstractions_by_id[abstraction.pipeline_id] = abstraction
            self.pipeline_builder.add_pipelines(abstractions, self.storage.graph)
            self.pipeline_builder.add_library_hierarchy(
                self.abstractor.library_hierarchy_edges(), self.storage.graph
            )
            report.num_pipelines_abstracted = len(abstractions)
            report.link_reports = self.linker.link_pipelines(
                abstractions, self.storage.graph
            )
        return report

    def _pipeline_state_snapshot(self):
        return (
            list(self.abstractions),
            dict(self._abstractions_by_id),
            set(self.abstractor.library_hierarchy),
        )

    def _restore_pipeline_state(self, snapshot) -> None:
        self.abstractions = list(snapshot[0])
        self._abstractions_by_id = dict(snapshot[1])
        self.abstractor.library_hierarchy = set(snapshot[2])

    def _rebuild_library_graph(self) -> None:
        """Drop and rebuild the shared library graph from ``abstractions``.

        Hierarchy edges accumulate per call across *all* pipelines, so
        retracting one changed pipeline's stale contribution requires the
        set difference against every other pipeline — cheaper and simpler to
        re-derive the whole graph (it is small: one node per library
        element) from the calls the surviving abstractions actually make.
        """
        from repro.kg.ontology import LIBRARY_GRAPH

        graph = self.storage.graph
        graph.remove_graph(LIBRARY_GRAPH)
        self.abstractor.library_hierarchy = set()
        for abstraction in self.abstractions:
            for call in abstraction.calls_used:
                for edge in self.abstractor.documentation.hierarchy_edges(call):
                    self.abstractor.library_hierarchy.add(edge)
            self.pipeline_builder.add_call_hierarchy(abstraction, graph)
        self.pipeline_builder.add_library_hierarchy(
            self.abstractor.library_hierarchy_edges(), graph
        )

    # ---------------------------------------------------------------- refresh
    def refresh_table(self, table: Table, dataset_name: Optional[str] = None) -> GovernorReport:
        """Retract a governed table's graph footprint and re-govern it.

        Everything derived from the table's old contents is removed — its
        metadata triples, the similarity / unionability / joinability edges
        (and their RDF-star score annotations) touching its column and table
        nodes, and its stored embeddings — and the re-profiled footprint is
        written *in the same commit*: concurrent readers observe the old
        table state or the new one, never the gap in between, and a failure
        anywhere (profiling included) rolls everything back to the
        pre-refresh state.  The result is byte-identical to governing the
        modified lake from scratch: no stale triples, edges or embeddings
        survive.  Refreshing a table that was never governed degrades to a
        plain add.  Profiling still runs outside the write gate — only the
        retract-and-apply phase holds it.
        """
        self._ensure_writable()
        service = self._route_to_service()
        if service is not None:
            return service.submit_refresh(table, dataset_name=dataset_name).result()
        dataset_name = dataset_name or table.dataset or "default"
        lake = DataLake(name=dataset_name)
        lake.add_table(dataset_name, table)
        # Force the refresh path even when the content fingerprint matches
        # (the caller explicitly asked for a re-govern): the stale footprint
        # is retracted inside the same commit that re-adds the table.
        return self.add_data_lake(
            lake, _force_refresh=frozenset([(dataset_name, table.name)])
        )

    def retract_table(self, dataset_name: str, table_name: str) -> bool:
        """Remove a table's triples, similarity edges and embeddings.

        Uses the store's retraction primitives: node-scoped matches over the
        dataset graph's hash indexes plus the partial quoted-triple indexes
        (for the RDF-star score annotations), so retraction never scans the
        whole graph.  Dataset / source nodes shared with other tables are
        left in place; pipeline graphs are untouched (their ``reads`` edges
        reference the table node URI, which a refresh re-creates).  Returns
        ``False`` when the table was never governed.  The whole retraction
        commits as one write batch: readers never observe a partially
        retracted table.
        """
        self._ensure_writable()
        service = self._route_to_service()
        if service is not None:
            report = service.submit_retract(dataset_name, table_name).result()
            return bool(report.retracted_tables)
        key = (dataset_name, table_name)
        profile = self._profiles_by_key.get(key)
        if profile is None:
            return False
        snapshot = self._profile_state_snapshot()
        self._profiles_by_key.pop(key, None)
        self._fingerprints_by_key.pop(key, None)
        # Identity-based removal: TableProfile dataclass equality would
        # compare embedded numpy arrays.
        self.table_profiles = [p for p in self.table_profiles if p is not profile]
        with self.storage.transaction():
            self._register_state_rollback(
                lambda: self._restore_profile_state(snapshot)
            )
            self._retract_graph_footprint(dataset_name, table_name, profile)
        return True

    def _retract_graph_footprint(
        self, dataset_name: str, table_name: str, profile: TableProfile
    ) -> None:
        """Remove one table's triples, edges and embeddings (in-batch body).

        Callers hold an open ``storage.transaction()``; the retraction's
        undo entries ride that batch, so a failure later in the same batch
        resurrects the footprint.
        """
        graph = self.storage.graph
        table_node = table_uri(dataset_name, table_name)
        column_nodes = [
            column_uri(p.dataset_name, p.table_name, p.column_name)
            for p in profile.column_profiles
        ]
        for node in [table_node] + column_nodes:
            for triple, graph_name in list(graph.match(subject=node, graph=DATASET_GRAPH)):
                graph.remove(triple.subject, triple.predicate, triple.object, graph=graph_name)
            for triple, graph_name in list(graph.match(obj=node, graph=DATASET_GRAPH)):
                graph.remove(triple.subject, triple.predicate, triple.object, graph=graph_name)
            for triple, graph_name in list(
                graph.match_quoted(inner_subject=node, graph=DATASET_GRAPH)
            ):
                graph.remove(triple.subject, triple.predicate, triple.object, graph=graph_name)
            for triple, graph_name in list(
                graph.match_quoted(inner_object=node, graph=DATASET_GRAPH)
            ):
                graph.remove(triple.subject, triple.predicate, triple.object, graph=graph_name)
        self.storage.embeddings.remove("table", str(table_node))
        for column_node in column_nodes:
            self.storage.embeddings.remove("column", str(column_node))

    # ------------------------------------------------------------ persistence
    def save(self, directory: PathLike) -> Path:
        """Persist the governed lake to ``directory`` (graph + profiles + embeddings).

        The LiDS graph lands in a sqlite file (just a flush when the governor
        already runs on a sqlite backend at that path, a full copy
        otherwise), embeddings in one ``.npz`` archive, and table profiles /
        content fingerprints in JSON.  :meth:`open` restores the governor
        from such a directory in a fresh process.  The whole save runs under
        one read view, so a governor being fed by a background service saves
        a consistent committed state (no half-applied batch can land in the
        snapshot).
        """
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        graph_path = directory / _GRAPH_FILE
        with self.storage.graph.read_view():
            return self._save_locked(directory, graph_path)

    def _save_locked(self, directory: Path, graph_path: Path) -> Path:
        backend = self.storage.graph.backend
        # Resolve both sides: a relative/symlinked spelling of the live
        # backend's own path must not fall into the copy branch (which would
        # unlink the database out from under the open connection).
        if (
            isinstance(backend, SqliteBackend)
            and backend.path.resolve() == graph_path.resolve()
        ):
            self.storage.graph.flush()
            # Fold the WAL into the main file so a bare copy of
            # ``graph.sqlite3`` (how replicas ship snapshots) is complete
            # without the ``-wal`` sidecar.
            backend.checkpoint()
            self._write_delta_manifest(directory, self.storage.graph)
        else:
            # Remove the target database *and* any sqlite sidecars: a stale
            # -wal journal next to a freshly created file would be replayed
            # into the new snapshot as a hot journal.
            for suffix in ("", "-wal", "-shm"):
                sidecar = graph_path.with_name(graph_path.name + suffix)
                if sidecar.exists():
                    sidecar.unlink()
            snapshot = QuadStore.sqlite(graph_path)
            for graph_name in self.storage.graph.graphs():
                for triple in self.storage.graph.triples(graph=graph_name):
                    snapshot.add(
                        triple.subject, triple.predicate, triple.object, graph=graph_name
                    )
            snapshot.flush()
            self._write_delta_manifest(directory, snapshot)
            snapshot.close()
        self.storage.embeddings.save(directory / _EMBEDDINGS_FILE)
        profiles_payload = {
            "format": 1,
            "profiles": [profile.to_dict() for profile in self.table_profiles],
            "fingerprints": [
                [dataset, table, fingerprint]
                for (dataset, table), fingerprint in self._fingerprints_by_key.items()
            ],
        }
        (directory / _PROFILES_FILE).write_text(json.dumps(profiles_payload))
        pipelines_payload = {
            "format": 1,
            "abstractions": [
                abstraction.to_dict() for abstraction in self.abstractions
            ],
            "library_hierarchy": [
                list(edge) for edge in self.abstractor.library_hierarchy_edges()
            ],
        }
        (directory / _PIPELINES_FILE).write_text(json.dumps(pipelines_payload))
        manifest = {
            "format": 1,
            "num_tables": len(self.table_profiles),
            "num_pipelines": len(self.abstractions),
            "num_triples": self.storage.graph.num_triples(),
            "num_embeddings": self.storage.embeddings.count(),
        }
        (directory / _MANIFEST_FILE).write_text(json.dumps(manifest, indent=2))
        return directory

    @staticmethod
    def _write_delta_manifest(directory: Path, store: QuadStore) -> None:
        """Write the per-commit delta manifest next to the graph file.

        Maps every graph to its shard table and an upper bound on its
        last-change commit version, stamped with the store lineage uid —
        enough for :meth:`LiDSClient.reopen` to invalidate only the graphs
        whose shard actually changed between two snapshots of the same
        lineage, without opening the database.
        """
        backend = store.backend
        shard_files = backend.shard_files()
        payload = {
            "format": 1,
            "commit_version": store.commit_version,
            "store_uid": getattr(backend, "uid", None),
            "graphs": {
                str(graph): {
                    "shard": shard_files.get(str(graph)),
                    "version": int(version),
                }
                for graph, version in store.graph_change_versions().items()
            },
        }
        (directory / _DELTA_FILE).write_text(json.dumps(payload, indent=2))

    @classmethod
    def open(
        cls,
        directory: PathLike,
        *,
        graph: Optional[QuadStore] = None,
        **governor_kwargs,
    ) -> "KGGovernor":
        """Reopen a governed lake saved with :meth:`save`.

        The LiDS graph comes back on the sqlite backend (named graphs load
        lazily on first touch), the embedding store and its ANN indexes are
        rebuilt from the archive, and the profile / fingerprint lookups are
        restored — so ``table_profile`` answers, re-adds detect changes, the
        linker resolves tables, and incremental adds continue exactly where
        the saved process stopped, at a fraction of the cost of re-governing.

        ``graph`` lets a caller adopt a store it already opened on the
        directory's graph file (the serving tier's replica pre-syncs its
        store against the writer before the governor constructs).
        """
        directory = Path(directory)
        if graph is None:
            graph = QuadStore.sqlite(directory / _GRAPH_FILE)
        embeddings_path = directory / _EMBEDDINGS_FILE
        embeddings = (
            EmbeddingStore.load(embeddings_path)
            if embeddings_path.exists()
            else EmbeddingStore()
        )
        storage = KGLiDSStorage(graph=graph, embeddings=embeddings)
        governor = cls(storage=storage, **governor_kwargs)
        profiles_path = directory / _PROFILES_FILE
        if profiles_path.exists():
            payload = json.loads(profiles_path.read_text())
            for entry in payload.get("profiles", []):
                profile = TableProfile.from_dict(entry)
                governor.table_profiles.append(profile)
                governor._profiles_by_key[
                    (profile.dataset_name, profile.table_name)
                ] = profile
            for dataset, table, fingerprint in payload.get("fingerprints", []):
                governor._fingerprints_by_key[(dataset, table)] = fingerprint
        pipelines_path = directory / _PIPELINES_FILE
        if pipelines_path.exists():
            payload = json.loads(pipelines_path.read_text())
            for entry in payload.get("abstractions", []):
                abstraction = AbstractedPipeline.from_dict(entry)
                governor.abstractions.append(abstraction)
                governor._abstractions_by_id[abstraction.pipeline_id] = abstraction
            for child, parent in payload.get("library_hierarchy", []):
                governor.abstractor.library_hierarchy.add((child, parent))
        # The linker's table-resolution cache is *not* warmed eagerly: doing
        # so would force the dataset shard to load even when the reopened
        # governor never links a pipeline.  It rebuilds itself from the
        # reloaded graph on the first link (keyed on the graph version).
        return governor

    def close(self) -> None:
        """Flush and release the storage bundle (required for sqlite backends).

        Idempotent: double-close and close-after-a-failed-batch are no-ops
        (a failed batch already rolled back; there is nothing to flush).
        """
        self.storage.close()

    # ----------------------------------------------------------------- lookups
    def table_profile(self, dataset_name: str, table_name: str) -> Optional[TableProfile]:
        """Find the stored profile of a table (O(1) dict lookup)."""
        return self._profiles_by_key.get((dataset_name, table_name))

    def _store_embeddings(self, table_profiles: Sequence[TableProfile]) -> None:
        table_items = []
        column_items = []
        for table_profile in table_profiles:
            if table_profile.embedding is not None:
                table_items.append(
                    (
                        str(table_uri(table_profile.dataset_name, table_profile.table_name)),
                        table_profile.embedding,
                    )
                )
            for profile in table_profile.column_profiles:
                column_items.append(
                    (
                        str(
                            column_uri(
                                profile.dataset_name, profile.table_name, profile.column_name
                            )
                        ),
                        profile.embedding,
                    )
                )
        self.storage.embeddings.put_many("table", table_items)
        self.storage.embeddings.put_many("column", column_items)
