"""The KG Governor: bootstrapping and incrementally maintaining the LiDS graph.

The governor wires together the three components of Figure 1: data profiling
(Algorithm 2), pipeline abstraction (Algorithm 1) and KG construction
(Algorithm 3 + pipeline graphs + the Global Graph Linker).  It owns the
storage bundle and keeps the profiles around so that datasets and pipelines
can be added incrementally after bootstrapping.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.embeddings.colr import ColRModelSet
from repro.kg.dataset_graph import DataGlobalSchemaBuilder, SimilarityThresholds
from repro.kg.linker import GlobalGraphLinker, LinkReport
from repro.kg.ontology import (
    ONTOLOGY_GRAPH,
    LiDSOntology,
    column_uri,
    dataset_uri,
    table_uri,
)
from repro.kg.pipeline_graph import PipelineGraphBuilder
from repro.kg.storage import KGLiDSStorage
from repro.parallel import JobExecutor
from repro.pipelines.abstraction import AbstractedPipeline, PipelineAbstractor, PipelineScript
from repro.profiler.profile import DataProfiler, TableProfile
from repro.tabular import DataLake, Table


@dataclass
class GovernorReport:
    """Summary of one governor run (bootstrapping or incremental update)."""

    num_tables_profiled: int = 0
    num_columns_profiled: int = 0
    num_pipelines_abstracted: int = 0
    num_similarity_edges: int = 0
    link_reports: List[LinkReport] = field(default_factory=list)


class KGGovernor:
    """Creates, maintains and synchronizes the LiDS graph."""

    def __init__(
        self,
        storage: Optional[KGLiDSStorage] = None,
        profiler: Optional[DataProfiler] = None,
        abstractor: Optional[PipelineAbstractor] = None,
        thresholds: Optional[SimilarityThresholds] = None,
        colr_models: Optional[ColRModelSet] = None,
        executor: Optional[JobExecutor] = None,
        schema_builder: Optional[DataGlobalSchemaBuilder] = None,
        include_default_parameters: bool = True,
    ):
        self.storage = storage or KGLiDSStorage()
        self.executor = executor or JobExecutor()
        # Pass the *original* (possibly None) model set through so the
        # profiler keeps its all-default-components fast path: only then can
        # process-pool workers rebuild an identical profiler from config.
        self.profiler = profiler or DataProfiler(
            colr_models=colr_models, executor=self.executor
        )
        self.colr_models = colr_models or self.profiler.colr_models
        self.abstractor = abstractor or PipelineAbstractor(executor=self.executor)
        self.schema_builder = schema_builder or DataGlobalSchemaBuilder(
            thresholds=thresholds, executor=self.executor
        )
        self.pipeline_builder = PipelineGraphBuilder(
            include_default_parameters=include_default_parameters
        )
        self.linker = GlobalGraphLinker()
        self.table_profiles: List[TableProfile] = []
        #: ``(dataset, table) -> TableProfile`` lookup, maintained alongside
        #: ``table_profiles`` so :meth:`table_profile` is O(1) and repeated
        #: adds of the same table are detected without a scan.
        self._profiles_by_key: Dict[Tuple[str, str], TableProfile] = {}
        self.abstractions: List[AbstractedPipeline] = []
        self._write_ontology()

    def _write_ontology(self) -> None:
        self.storage.graph.add_triples(LiDSOntology.ontology_triples(), graph=ONTOLOGY_GRAPH)

    # ----------------------------------------------------------- bootstrapping
    def bootstrap(
        self,
        lake: Optional[DataLake] = None,
        scripts: Optional[Sequence[PipelineScript]] = None,
    ) -> GovernorReport:
        """Profile a data lake, abstract pipeline scripts and build the LiDS graph."""
        report = GovernorReport()
        if lake is not None:
            report = self._merge(report, self.add_data_lake(lake))
        if scripts:
            report = self._merge(report, self.add_pipelines(scripts))
        return report

    # ------------------------------------------------------------ incremental
    def add_data_lake(self, lake: DataLake) -> GovernorReport:
        """Profile and register every *new* table of ``lake``.

        The add is incremental: tables already governed are skipped (so
        re-adding a lake is idempotent), only the fresh tables are profiled,
        and the schema builder scores similarity for new x (new + existing)
        column pairs instead of rebuilding the full O(n^2) schema.  Adding
        tables one by one therefore yields the exact graph a single bootstrap
        over the union would.

        Governance is append-only: re-adding a table whose *contents* changed
        keeps the original profile and edges (a refresh path that retracts a
        table's triples before re-profiling is a ROADMAP open item).
        """
        report = GovernorReport()
        fresh_tables = [
            table
            for table in lake.tables()
            if (table.dataset or "default", table.name) not in self._profiles_by_key
        ]
        if not fresh_tables:
            return report
        new_profiles = self.profiler.profile_tables(fresh_tables)
        report.num_tables_profiled = len(new_profiles)
        report.num_columns_profiled = sum(len(p.column_profiles) for p in new_profiles)
        self._store_embeddings(new_profiles)
        edges = self.schema_builder.build_incremental(
            new_profiles, self.table_profiles, self.storage.graph
        )
        self.table_profiles.extend(new_profiles)
        for profile in new_profiles:
            self._profiles_by_key[(profile.dataset_name, profile.table_name)] = profile
        # No explicit linker cache invalidation needed: the metadata writes
        # above bumped the dataset graph's version, which keys the cache.
        report.num_similarity_edges = len(edges)
        return report

    def add_table(self, table: Table, dataset_name: str = "default") -> GovernorReport:
        """Incrementally add a single table to the LiDS graph."""
        lake = DataLake(name=dataset_name)
        lake.add_table(dataset_name, table)
        return self.add_data_lake(lake)

    def add_pipelines(self, scripts: Sequence[PipelineScript]) -> GovernorReport:
        """Abstract scripts, write their named graphs, and link them to datasets."""
        report = GovernorReport()
        abstractions = self.abstractor.abstract_scripts(scripts)
        self.abstractions.extend(abstractions)
        self.pipeline_builder.add_pipelines(abstractions, self.storage.graph)
        self.pipeline_builder.add_library_hierarchy(
            self.abstractor.library_hierarchy_edges(), self.storage.graph
        )
        report.num_pipelines_abstracted = len(abstractions)
        report.link_reports = self.linker.link_pipelines(abstractions, self.storage.graph)
        return report

    # ----------------------------------------------------------------- lookups
    def table_profile(self, dataset_name: str, table_name: str) -> Optional[TableProfile]:
        """Find the stored profile of a table (O(1) dict lookup)."""
        return self._profiles_by_key.get((dataset_name, table_name))

    def _store_embeddings(self, table_profiles: Sequence[TableProfile]) -> None:
        table_items = []
        column_items = []
        for table_profile in table_profiles:
            if table_profile.embedding is not None:
                table_items.append(
                    (
                        str(table_uri(table_profile.dataset_name, table_profile.table_name)),
                        table_profile.embedding,
                    )
                )
            for profile in table_profile.column_profiles:
                column_items.append(
                    (
                        str(
                            column_uri(
                                profile.dataset_name, profile.table_name, profile.column_name
                            )
                        ),
                        profile.embedding,
                    )
                )
        self.storage.embeddings.put_many("table", table_items)
        self.storage.embeddings.put_many("column", column_items)

    @staticmethod
    def _merge(base: GovernorReport, other: GovernorReport) -> GovernorReport:
        base.num_tables_profiled += other.num_tables_profiled
        base.num_columns_profiled += other.num_columns_profiled
        base.num_pipelines_abstracted += other.num_pipelines_abstracted
        base.num_similarity_edges += other.num_similarity_edges
        base.link_reports.extend(other.link_reports)
        return base
