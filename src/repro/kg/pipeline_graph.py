"""Pipeline named graphs and the library hierarchy graph.

Each abstracted pipeline is written into its own named graph (the RDF notion
of modularity the paper relies on), holding statement nodes with code flow,
data flow, control-flow type, statement text, library calls and parameters.
Library hierarchy edges accumulate in a shared library graph.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.kg.ontology import (
    LIBRARY_GRAPH,
    LiDSOntology,
    dataset_uri,
    library_uri,
    pipeline_graph_uri,
    pipeline_uri,
    statement_uri,
)
from repro.pipelines.abstraction import AbstractedPipeline
from repro.rdf import Literal, QuadStore, RDF, RDFS, URIRef


class PipelineGraphBuilder:
    """Writes abstracted pipelines and the library hierarchy into the store."""

    def __init__(self, include_default_parameters: bool = True):
        #: When False, only explicitly-set parameters are recorded (this is the
        #: behaviour of general-purpose abstraction tools like GraphGen4Code
        #: and what the AutoML comparison of Section 4.4 hinges on).
        self.include_default_parameters = include_default_parameters

    # ------------------------------------------------------------------- API
    def add_pipeline(self, abstraction: AbstractedPipeline, store: QuadStore) -> URIRef:
        """Write one pipeline into its named graph; returns the graph URI."""
        ontology = LiDSOntology
        graph = pipeline_graph_uri(abstraction.pipeline_id)
        pipeline_node = pipeline_uri(abstraction.pipeline_id)
        script = abstraction.script
        store.add(pipeline_node, RDF.type, ontology.Pipeline, graph=graph)
        store.add(pipeline_node, ontology.hasName, Literal(abstraction.pipeline_id), graph=graph)
        store.add(pipeline_node, RDFS.label, Literal(abstraction.pipeline_id), graph=graph)
        store.add(pipeline_node, ontology.hasAuthor, Literal(script.author), graph=graph)
        store.add(pipeline_node, ontology.hasVotes, Literal(int(script.votes)), graph=graph)
        if script.score is not None:
            store.add(pipeline_node, ontology.hasScore, Literal(float(script.score)), graph=graph)
        if script.task:
            store.add(pipeline_node, ontology.hasTaskType, Literal(script.task), graph=graph)
        if script.date:
            store.add(pipeline_node, ontology.hasDate, Literal(script.date), graph=graph)
        if script.dataset_name:
            store.add(
                pipeline_node, ontology.reads, dataset_uri(script.dataset_name), graph=graph
            )
        for statement in abstraction.statements:
            self._add_statement(abstraction, statement, pipeline_node, store, graph)
        self.add_call_hierarchy(abstraction, store)
        return graph

    def add_call_hierarchy(self, abstraction: AbstractedPipeline, store: QuadStore) -> None:
        """Write the library-hierarchy edges implied by one pipeline's calls."""
        self.add_library_hierarchy(
            (edge for call in abstraction.calls_used for edge in _call_hierarchy(call)), store
        )

    def add_pipelines(
        self, abstractions: Iterable[AbstractedPipeline], store: QuadStore
    ) -> List[URIRef]:
        """Write a collection of pipelines; returns the named-graph URIs."""
        return [self.add_pipeline(abstraction, store) for abstraction in abstractions]

    # -------------------------------------------------------------- internals
    def _add_statement(self, abstraction, statement, pipeline_node, store, graph) -> None:
        ontology = LiDSOntology
        statement_node = statement_uri(abstraction.pipeline_id, statement.index)
        store.add(statement_node, RDF.type, ontology.Statement, graph=graph)
        store.add(statement_node, ontology.isPartOf, pipeline_node, graph=graph)
        store.add(statement_node, ontology.hasStatementText, Literal(statement.text), graph=graph)
        store.add(
            statement_node, ontology.hasControlFlowType, Literal(statement.control_flow), graph=graph
        )
        if statement.next_statement is not None:
            store.add(
                statement_node,
                ontology.hasNextStatement,
                statement_uri(abstraction.pipeline_id, statement.next_statement),
                graph=graph,
            )
        for target in statement.data_flow_next:
            store.add(
                statement_node,
                ontology.hasDataFlowTo,
                statement_uri(abstraction.pipeline_id, target),
                graph=graph,
            )
        for call in statement.calls:
            if "." not in call.full_name:
                continue
            call_node = library_uri(call.full_name)
            store.add(statement_node, ontology.callsFunction, call_node, graph=graph)
            store.add(statement_node, ontology.callsLibrary, library_uri(call.library), graph=graph)
            parameters = dict(call.parameter_names)
            parameters.update(call.keyword_arguments)
            if self.include_default_parameters:
                for name, value in call.default_parameters.items():
                    parameters.setdefault(name, value)
            for name, value in parameters.items():
                parameter_node = library_uri(f"{call.full_name}/{name}")
                store.add(parameter_node, RDF.type, ontology.Parameter, graph=graph)
                store.add(parameter_node, ontology.hasName, Literal(name), graph=graph)
                store.add(statement_node, ontology.hasParameter, parameter_node, graph=graph)
                store.add(
                    parameter_node,
                    ontology.hasParameterValue,
                    Literal(repr(value)),
                    graph=graph,
                )

    # ---------------------------------------------------------- library graph
    @staticmethod
    def add_library_hierarchy(edges: Iterable[Tuple[str, str]], store: QuadStore) -> None:
        """Write ``(child, parent)`` library hierarchy edges to the library graph."""
        ontology = LiDSOntology
        for child, parent in edges:
            child_node = library_uri(child)
            parent_node = library_uri(parent)
            child_type = _library_element_type(child)
            parent_type = _library_element_type(parent)
            store.add(child_node, RDF.type, child_type, graph=LIBRARY_GRAPH)
            store.add(child_node, ontology.hasName, Literal(child), graph=LIBRARY_GRAPH)
            store.add(parent_node, RDF.type, parent_type, graph=LIBRARY_GRAPH)
            store.add(parent_node, ontology.hasName, Literal(parent), graph=LIBRARY_GRAPH)
            store.add(child_node, ontology.isSubElementOf, parent_node, graph=LIBRARY_GRAPH)


def _library_element_type(qualified_name: str) -> URIRef:
    """Heuristic LiDS class for a library hierarchy element."""
    ontology = LiDSOntology
    parts = qualified_name.split(".")
    if len(parts) == 1:
        return ontology.Library
    leaf = parts[-1]
    if leaf[:1].isupper():
        return ontology.Class
    if len(parts) == 2 and leaf.islower() and "_" not in leaf:
        return ontology.Package
    return ontology.Function


def _call_hierarchy(qualified_call: str) -> List[Tuple[str, str]]:
    parts = qualified_call.split(".")
    edges = []
    for i in range(len(parts) - 1, 0, -1):
        edges.append((".".join(parts[: i + 1]), ".".join(parts[:i])))
    return edges
