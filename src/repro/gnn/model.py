"""A GraphSAGE-style node classifier with explicit backpropagation.

The architecture follows Section 4 of the paper: node features are the CoLR
table/column embeddings, one message-passing layer mixes each node with the
mean of its neighbours, and a softmax head predicts the operation class.
Training minimizes cross-entropy on the labeled nodes, optionally over
GraphSAINT-sampled subgraphs.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.gnn.graph import FeatureGraph
from repro.gnn.sampling import GraphSAINTNodeSampler


class GNNNodeClassifier:
    """One message-passing layer + softmax node classifier."""

    def __init__(
        self,
        feature_dimensions: int,
        num_classes: int,
        hidden_dimensions: int = 64,
        learning_rate: float = 0.05,
        epochs: int = 60,
        weight_decay: float = 1e-4,
        random_state: int = 0,
    ):
        self.feature_dimensions = feature_dimensions
        self.num_classes = num_classes
        self.hidden_dimensions = hidden_dimensions
        self.learning_rate = learning_rate
        self.epochs = epochs
        self.weight_decay = weight_decay
        self.random_state = random_state
        rng = np.random.RandomState(random_state)
        scale_in = 1.0 / np.sqrt(feature_dimensions)
        scale_hidden = 1.0 / np.sqrt(hidden_dimensions)
        self.W_self = rng.normal(scale=scale_in, size=(feature_dimensions, hidden_dimensions))
        self.W_neigh = rng.normal(scale=scale_in, size=(feature_dimensions, hidden_dimensions))
        self.b_hidden = np.zeros(hidden_dimensions)
        self.W_out = rng.normal(scale=scale_hidden, size=(hidden_dimensions, num_classes))
        self.b_out = np.zeros(num_classes)
        self.training_losses_: List[float] = []

    # ---------------------------------------------------------------- forward
    def _forward(self, features: np.ndarray, adjacency: np.ndarray):
        aggregated = adjacency @ features
        pre_activation = features @ self.W_self + aggregated @ self.W_neigh + self.b_hidden
        hidden = np.maximum(pre_activation, 0.0)
        logits = hidden @ self.W_out + self.b_out
        logits -= logits.max(axis=1, keepdims=True)
        exponentials = np.exp(logits)
        probabilities = exponentials / exponentials.sum(axis=1, keepdims=True)
        return aggregated, pre_activation, hidden, probabilities

    def predict_proba_graph(self, graph: FeatureGraph) -> np.ndarray:
        """Class probabilities for every node of ``graph``."""
        features = graph.features_matrix()
        adjacency = graph.normalized_adjacency()
        *_, probabilities = self._forward(features, adjacency)
        return probabilities

    def predict_graph(self, graph: FeatureGraph) -> np.ndarray:
        """Predicted class index for every node of ``graph``."""
        return np.argmax(self.predict_proba_graph(graph), axis=1)

    def predict_features(self, features: Sequence[float]) -> int:
        """Predict the class of an isolated node (inference on an unseen dataset).

        At inference time the automation models embed the unseen DataFrame and
        classify it without edges, which is equivalent to a single-node graph.
        """
        graph = FeatureGraph(self.feature_dimensions)
        graph.add_node("query", features)
        return int(self.predict_graph(graph)[0])

    def predict_proba_features(self, features: Sequence[float]) -> np.ndarray:
        """Class probabilities for an isolated node."""
        graph = FeatureGraph(self.feature_dimensions)
        graph.add_node("query", features)
        return self.predict_proba_graph(graph)[0]

    # --------------------------------------------------------------- training
    def _train_step(self, graph: FeatureGraph) -> Optional[float]:
        features = graph.features_matrix()
        adjacency = graph.normalized_adjacency()
        labeled_indices, labels = graph.labels_array()
        if labeled_indices.size == 0:
            return None
        aggregated, pre_activation, hidden, probabilities = self._forward(features, adjacency)
        n_labeled = labeled_indices.size
        # Cross-entropy loss over labeled nodes.
        picked = probabilities[labeled_indices, labels]
        loss = float(-np.mean(np.log(picked + 1e-12)))
        # Gradient of the loss w.r.t. logits (zero on unlabeled nodes).
        gradient_logits = np.zeros_like(probabilities)
        gradient_logits[labeled_indices] = probabilities[labeled_indices]
        gradient_logits[labeled_indices, labels] -= 1.0
        gradient_logits /= n_labeled
        # Output layer.
        gradient_W_out = hidden.T @ gradient_logits + self.weight_decay * self.W_out
        gradient_b_out = gradient_logits.sum(axis=0)
        # Hidden layer through ReLU.
        gradient_hidden = gradient_logits @ self.W_out.T
        gradient_hidden[pre_activation <= 0.0] = 0.0
        gradient_W_self = features.T @ gradient_hidden + self.weight_decay * self.W_self
        gradient_W_neigh = aggregated.T @ gradient_hidden + self.weight_decay * self.W_neigh
        gradient_b_hidden = gradient_hidden.sum(axis=0)
        # SGD update.
        self.W_out -= self.learning_rate * gradient_W_out
        self.b_out -= self.learning_rate * gradient_b_out
        self.W_self -= self.learning_rate * gradient_W_self
        self.W_neigh -= self.learning_rate * gradient_W_neigh
        self.b_hidden -= self.learning_rate * gradient_b_hidden
        return loss

    def fit(
        self,
        graph: FeatureGraph,
        use_graphsaint: bool = True,
        sample_budget: int = 64,
        samples_per_epoch: int = 4,
    ) -> "GNNNodeClassifier":
        """Train on the labeled nodes of ``graph``.

        With ``use_graphsaint`` the model trains on sampled subgraphs (the
        paper uses GraphSAINT); otherwise it performs full-graph gradient
        descent.  Per-epoch losses are recorded in ``training_losses_``.
        """
        self.training_losses_ = []
        sampler = (
            GraphSAINTNodeSampler(graph, budget=sample_budget, seed=self.random_state)
            if use_graphsaint and graph.num_nodes > sample_budget
            else None
        )
        for _ in range(self.epochs):
            if sampler is not None:
                epoch_losses = []
                for subgraph in sampler.iter_samples(samples_per_epoch):
                    loss = self._train_step(subgraph)
                    if loss is not None:
                        epoch_losses.append(loss)
                if epoch_losses:
                    self.training_losses_.append(float(np.mean(epoch_losses)))
            else:
                loss = self._train_step(graph)
                if loss is not None:
                    self.training_losses_.append(loss)
        return self

    def accuracy(self, graph: FeatureGraph) -> float:
        """Accuracy over the labeled nodes of ``graph``."""
        labeled_indices, labels = graph.labels_array()
        if labeled_indices.size == 0:
            return 0.0
        predictions = self.predict_graph(graph)[labeled_indices]
        return float(np.mean(predictions == labels))
