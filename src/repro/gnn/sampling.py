"""GraphSAINT-style subgraph sampling.

GraphSAINT trains GNNs on small sampled subgraphs instead of the full graph.
The node sampler here follows the simplest GraphSAINT variant: sample a set
of nodes (biased toward labeled nodes so every minibatch has supervision) and
induce the subgraph over them.
"""

from __future__ import annotations

from typing import Iterator, Optional

import numpy as np

from repro.gnn.graph import FeatureGraph


class GraphSAINTNodeSampler:
    """Samples induced subgraphs of a fixed node budget."""

    def __init__(self, graph: FeatureGraph, budget: int = 64, seed: int = 0):
        if budget < 2:
            raise ValueError("budget must be at least 2")
        self.graph = graph
        self.budget = budget
        self._rng = np.random.RandomState(seed)

    def sample(self) -> FeatureGraph:
        """Sample one subgraph.

        Half of the budget is drawn from labeled nodes (so the training loss
        is defined on every sample), the other half uniformly at random.
        """
        n = self.graph.num_nodes
        if n <= self.budget:
            return self.graph.subgraph(range(n))
        labeled, _ = self.graph.labels_array()
        chosen = set()
        if labeled.size:
            take = min(len(labeled), self.budget // 2)
            chosen.update(self._rng.choice(labeled, size=take, replace=False).tolist())
        remaining = self.budget - len(chosen)
        pool = np.setdiff1d(np.arange(n), np.array(sorted(chosen), dtype=int))
        if remaining > 0 and pool.size:
            take = min(remaining, pool.size)
            chosen.update(self._rng.choice(pool, size=take, replace=False).tolist())
        return self.graph.subgraph(chosen)

    def iter_samples(self, num_samples: int) -> Iterator[FeatureGraph]:
        """Yield ``num_samples`` sampled subgraphs."""
        for _ in range(num_samples):
            yield self.sample()
