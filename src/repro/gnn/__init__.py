"""A small numpy graph-neural-network library.

KGLiDS formalizes data cleaning and transformation recommendation as GNN node
classification over subgraphs of the LiDS graph, trained with GraphSAINT
sampling.  This package provides the pieces that reproduction needs: a
feature graph container, GraphSAGE-style message passing with explicit
backpropagation, a GraphSAINT-style node sampler, and a node-classifier
training loop.
"""

from repro.gnn.graph import FeatureGraph
from repro.gnn.model import GNNNodeClassifier
from repro.gnn.sampling import GraphSAINTNodeSampler

__all__ = ["FeatureGraph", "GNNNodeClassifier", "GraphSAINTNodeSampler"]
