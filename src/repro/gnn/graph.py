"""Feature graphs: nodes with dense features, undirected edges, optional labels."""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np


class FeatureGraph:
    """A graph whose nodes carry feature vectors and (optionally) class labels.

    Nodes are identified by arbitrary hashable ids (the automation models use
    LiDS-graph URIs).  Edges are stored undirected; the normalized adjacency
    operator used by message passing includes self-loops.
    """

    def __init__(self, feature_dimensions: int):
        self.feature_dimensions = feature_dimensions
        self._node_index: Dict[object, int] = {}
        self._node_ids: List[object] = []
        self._features: List[np.ndarray] = []
        self._labels: Dict[int, int] = {}
        self._edges: List[Tuple[int, int]] = []

    # -------------------------------------------------------------- building
    def add_node(self, node_id, features: Sequence[float], label: Optional[int] = None) -> int:
        """Add a node; returns its integer index.  Re-adding updates features."""
        features = np.asarray(features, dtype=float).ravel()
        if features.shape[0] != self.feature_dimensions:
            raise ValueError(
                f"expected {self.feature_dimensions} features, got {features.shape[0]}"
            )
        if node_id in self._node_index:
            index = self._node_index[node_id]
            self._features[index] = features
        else:
            index = len(self._node_ids)
            self._node_index[node_id] = index
            self._node_ids.append(node_id)
            self._features.append(features)
        if label is not None:
            self._labels[index] = int(label)
        return index

    def add_edge(self, source_id, target_id) -> None:
        """Add an undirected edge between two existing nodes."""
        if source_id not in self._node_index or target_id not in self._node_index:
            raise KeyError("both endpoints must be added before the edge")
        self._edges.append((self._node_index[source_id], self._node_index[target_id]))

    # ---------------------------------------------------------------- access
    @property
    def num_nodes(self) -> int:
        return len(self._node_ids)

    @property
    def num_edges(self) -> int:
        return len(self._edges)

    def node_ids(self) -> List[object]:
        return list(self._node_ids)

    def index_of(self, node_id) -> int:
        return self._node_index[node_id]

    def features_matrix(self) -> np.ndarray:
        """Node features stacked as an ``(n_nodes, n_features)`` matrix."""
        if not self._features:
            return np.zeros((0, self.feature_dimensions))
        return np.vstack(self._features)

    def labels_array(self) -> Tuple[np.ndarray, np.ndarray]:
        """Return ``(labeled node indices, labels)`` as arrays."""
        if not self._labels:
            return np.array([], dtype=int), np.array([], dtype=int)
        indices = np.array(sorted(self._labels.keys()), dtype=int)
        labels = np.array([self._labels[i] for i in indices], dtype=int)
        return indices, labels

    def normalized_adjacency(self) -> np.ndarray:
        """Row-normalized adjacency matrix with self-loops (mean aggregation)."""
        n = self.num_nodes
        adjacency = np.eye(n)
        for source, target in self._edges:
            adjacency[source, target] = 1.0
            adjacency[target, source] = 1.0
        row_sums = adjacency.sum(axis=1, keepdims=True)
        row_sums[row_sums == 0.0] = 1.0
        return adjacency / row_sums

    def neighbors(self, node_id) -> List[object]:
        """Node ids adjacent to ``node_id``."""
        index = self._node_index[node_id]
        out = set()
        for source, target in self._edges:
            if source == index:
                out.add(target)
            elif target == index:
                out.add(source)
        return [self._node_ids[i] for i in sorted(out)]

    def subgraph(self, node_indices: Iterable[int]) -> "FeatureGraph":
        """Induced subgraph over the given node indices (labels preserved)."""
        selected = sorted(set(int(i) for i in node_indices))
        graph = FeatureGraph(self.feature_dimensions)
        for index in selected:
            graph.add_node(
                self._node_ids[index],
                self._features[index],
                label=self._labels.get(index),
            )
        member = set(selected)
        for source, target in self._edges:
            if source in member and target in member:
                graph.add_edge(self._node_ids[source], self._node_ids[target])
        return graph
