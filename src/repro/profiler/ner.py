"""A gazetteer-based named-entity recognizer.

The paper uses a pre-trained NER model (OntoNotes 5, 18 entity types) to
decide whether a string column holds named entities.  Offline we approximate
it with curated gazetteers for the entity families that appear in the
synthetic data-lake domains (persons, countries, cities, organizations,
languages, products) plus simple shape heuristics (capitalized short phrases).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Optional

_PERSON_FIRST_NAMES = frozenset(
    """
    james mary robert patricia john jennifer michael linda david elizabeth
    william barbara richard susan joseph jessica thomas sarah charles karen
    christopher lisa daniel nancy matthew betty anthony margaret mark sandra
    donald ashley steven kimberly paul emily andrew donna joshua michelle
    kenneth carol kevin amanda brian dorothy george melissa timothy deborah
    ahmed fatima omar layla hassan noor wei li ming chen yuki haruto sofia
    mateo valentina santiago camila lucas isabella pierre marie hans greta
    """.split()
)

_PERSON_LAST_NAMES = frozenset(
    """
    smith johnson williams brown jones garcia miller davis rodriguez martinez
    hernandez lopez gonzalez wilson anderson thomas taylor moore jackson martin
    lee perez thompson white harris sanchez clark ramirez lewis robinson walker
    young allen king wright scott torres nguyen hill flores green adams nelson
    baker hall rivera campbell mitchell carter roberts gomez phillips evans
    helali mansour hose ammar khan singh patel kumar chen wang li zhang tanaka
    """.split()
)

_COUNTRIES = frozenset(
    """
    canada austria egypt germany france spain portugal italy japan china india
    brazil mexico argentina chile peru kenya ghana nigeria morocco tunisia
    sweden norway denmark finland iceland poland ukraine greece turkey vietnam
    thailand indonesia malaysia singapore australia netherlands belgium
    switzerland ireland scotland england wales usa uk
    """.split()
)

_CITIES = frozenset(
    """
    montreal toronto vancouver ottawa vienna cairo alexandria berlin munich
    paris lyon madrid barcelona lisbon porto rome milan tokyo osaka beijing
    shanghai mumbai delhi saopaulo rio bogota lima quito nairobi accra lagos
    casablanca tunis stockholm oslo copenhagen helsinki warsaw kyiv athens
    istanbul hanoi bangkok jakarta kualalumpur sydney melbourne amsterdam
    brussels zurich geneva dublin london manchester boston chicago seattle
    houston denver phoenix
    """.split()
)

_ORGANIZATIONS = frozenset(
    """
    google microsoft amazon apple meta ibm oracle intel nvidia samsung sony
    toyota honda ford tesla boeing airbus siemens bosch nestle unilever pfizer
    novartis roche walmart costco target visa mastercard paypal netflix spotify
    concordia waterloo mcgill mit stanford berkeley oxford cambridge
    """.split()
)

_LANGUAGES = frozenset(
    """
    english french spanish german italian portuguese arabic mandarin cantonese
    japanese korean hindi urdu bengali russian ukrainian polish dutch swedish
    norwegian danish finnish greek turkish vietnamese thai indonesian swahili
    """.split()
)

_PRODUCTS = frozenset(
    """
    iphone ipad macbook galaxy pixel thinkpad surface playstation xbox switch
    kindle echo alexa roomba fitbit airpods chromecast
    """.split()
)

#: Entity type name -> gazetteer.
_GAZETTEERS: Dict[str, FrozenSet[str]] = {
    "PERSON": _PERSON_FIRST_NAMES | _PERSON_LAST_NAMES,
    "GPE": _COUNTRIES | _CITIES,
    "ORG": _ORGANIZATIONS,
    "LANGUAGE": _LANGUAGES,
    "PRODUCT": _PRODUCTS,
}


class NamedEntityRecognizer:
    """Recognizes whether a string value denotes a named entity.

    :meth:`recognize` returns the entity type (``PERSON``, ``GPE``, ``ORG``,
    ``LANGUAGE``, ``PRODUCT``) or ``None``.  A value counts as an entity when
    the majority of its tokens are found in one gazetteer, or when it has the
    shape of a short capitalized proper noun phrase.
    """

    def __init__(self, use_shape_heuristic: bool = True):
        self.use_shape_heuristic = use_shape_heuristic

    def recognize(self, value: str) -> Optional[str]:
        """Entity type of ``value`` or ``None``."""
        if not value or not isinstance(value, str):
            return None
        tokens = [token.lower().strip(".,") for token in value.split() if token.strip(".,")]
        if not tokens or len(tokens) > 4:
            return None
        best_type, best_hits = None, 0
        for entity_type, gazetteer in _GAZETTEERS.items():
            hits = sum(1 for token in tokens if token in gazetteer)
            if hits > best_hits:
                best_type, best_hits = entity_type, hits
        if best_hits and best_hits >= (len(tokens) + 1) // 2:
            return best_type
        if self.use_shape_heuristic and self._looks_like_proper_noun(value, tokens):
            return "PROPER_NOUN"
        return None

    @staticmethod
    def _looks_like_proper_noun(value: str, tokens) -> bool:
        words = value.split()
        if not 1 <= len(words) <= 3:
            return False
        if any(any(c.isdigit() for c in word) for word in words):
            return False
        return all(word[0].isupper() and word[1:].islower() for word in words if word)

    def entity_ratio(self, values) -> float:
        """Fraction of values recognized as named entities."""
        values = [v for v in values if isinstance(v, str) and v]
        if not values:
            return 0.0
        recognized = sum(1 for v in values if self.recognize(v) is not None)
        return recognized / len(values)
