"""Fine-grained column data-type inference (7 types, Section 3.2)."""

from __future__ import annotations

from typing import Optional

from repro.embeddings.words import WordEmbeddingModel, default_word_model
from repro.profiler.ner import NamedEntityRecognizer
from repro.tabular.column import Column
from repro.tabular.values import coerce_bool, looks_like_date, looks_like_float, looks_like_int
from repro.types import (
    TYPE_BOOLEAN,
    TYPE_DATE,
    TYPE_FLOAT,
    TYPE_INT,
    TYPE_NAMED_ENTITY,
    TYPE_NATURAL_LANGUAGE,
    TYPE_STRING,
)


class FineGrainedTypeInferrer:
    """Classifies a column into one of the seven fine-grained types.

    Decision order mirrors the paper's profiler: booleans, then numerics and
    dates (value-shape based), then named entities (NER model), then natural
    language (word-embedding vocabulary coverage), falling back to generic
    strings.  A small sample of values is inspected (type inference does not
    need the full column).
    """

    def __init__(
        self,
        ner: Optional[NamedEntityRecognizer] = None,
        word_model: Optional[WordEmbeddingModel] = None,
        sample_size: int = 200,
        entity_threshold: float = 0.6,
        language_threshold: float = 0.6,
        seed: int = 0,
    ):
        self.ner = ner or NamedEntityRecognizer()
        self.word_model = word_model or default_word_model()
        self.sample_size = sample_size
        self.entity_threshold = entity_threshold
        self.language_threshold = language_threshold
        self.seed = seed

    # ------------------------------------------------------------------- API
    def infer(self, column: Column) -> str:
        """The fine-grained type of ``column``."""
        sample = column.sample(self.sample_size, seed=self.seed)
        if not sample:
            return TYPE_STRING
        if self._is_boolean(column, sample):
            return TYPE_BOOLEAN
        numeric_type = self._numeric_type(sample)
        if numeric_type is not None:
            return numeric_type
        if self._is_date(sample):
            return TYPE_DATE
        strings = [str(v) for v in sample if isinstance(v, str)]
        if not strings:
            return TYPE_STRING
        if self.ner.entity_ratio(strings) >= self.entity_threshold:
            return TYPE_NAMED_ENTITY
        if self._language_ratio(strings) >= self.language_threshold:
            return TYPE_NATURAL_LANGUAGE
        return TYPE_STRING

    # -------------------------------------------------------------- internals
    @staticmethod
    def _is_boolean(column: Column, sample) -> bool:
        coerced = [coerce_bool(v) for v in sample]
        if any(flag is None for flag in coerced):
            return False
        # Binary integer columns with 0/1 only are treated as boolean when the
        # column has exactly two distinct values.
        return column.distinct_count() <= 2

    @staticmethod
    def _numeric_type(sample) -> Optional[str]:
        ints, floats, other = 0, 0, 0
        for value in sample:
            if isinstance(value, bool):
                other += 1
            elif isinstance(value, int):
                ints += 1
            elif isinstance(value, float):
                floats += 1
            elif isinstance(value, str) and looks_like_int(value):
                ints += 1
            elif isinstance(value, str) and looks_like_float(value):
                floats += 1
            else:
                other += 1
        total = ints + floats + other
        if total == 0 or (ints + floats) / total < 0.95:
            return None
        return TYPE_FLOAT if floats else TYPE_INT

    @staticmethod
    def _is_date(sample) -> bool:
        strings = [str(v) for v in sample if isinstance(v, str)]
        if not strings or len(strings) < 0.9 * len(sample):
            return False
        matching = sum(1 for v in strings if looks_like_date(v))
        return matching / len(strings) >= 0.8

    def _language_ratio(self, strings) -> float:
        """Fraction of values whose tokens are mostly in-vocabulary words."""
        if not strings:
            return 0.0
        in_language = 0
        for value in strings:
            tokens = [token.lower().strip(".,!?") for token in value.split()]
            tokens = [token for token in tokens if token]
            if len(tokens) < 3:
                continue
            known = sum(1 for token in tokens if self.word_model.has_word(token))
            if known / len(tokens) >= 0.7:
                in_language += 1
        return in_language / len(strings)
