"""Column / table profiles and the data profiler (Algorithm 2).

The profiler decomposes a data lake into independent per-column jobs (the
Spark structure of the paper), and for each column produces a
:class:`ColumnProfile` holding the membership metadata, the inferred
fine-grained type, the collected statistics and the CoLR embedding computed
over a value sample.  Table profiles aggregate column embeddings into the
per-type concatenated table embedding of Eq. (1).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.embeddings.colr import ColRModelSet
from repro.embeddings.words import WordEmbeddingModel, default_word_model
from repro.parallel import JobExecutor
from repro.profiler.ner import NamedEntityRecognizer
from repro.profiler.stats import ColumnStatistics, collect_statistics
from repro.profiler.type_inference import FineGrainedTypeInferrer
from repro.tabular import Column, DataLake, Table
from repro.types import FINE_GRAINED_TYPES


@dataclass
class ColumnProfile:
    """The profile of one column (the ``CP`` record of Algorithm 2)."""

    dataset_name: str
    table_name: str
    column_name: str
    fine_grained_type: str
    statistics: ColumnStatistics
    embedding: np.ndarray
    label_embedding: Optional[np.ndarray] = None

    @property
    def column_id(self) -> str:
        """A stable identifier ``dataset/table/column`` used for URIs and indexes."""
        return f"{self.dataset_name}/{self.table_name}/{self.column_name}"

    def to_json(self) -> str:
        """JSON document form (what Algorithm 2 dumps per column)."""
        payload = {
            "dataset": self.dataset_name,
            "table": self.table_name,
            "column": self.column_name,
            "fine_grained_type": self.fine_grained_type,
            "statistics": self.statistics.to_dict(),
            "embedding": [round(float(x), 6) for x in self.embedding.tolist()],
        }
        return json.dumps(payload)


@dataclass
class TableProfile:
    """Aggregated profile of a table: its columns plus the table embedding."""

    dataset_name: str
    table_name: str
    column_profiles: List[ColumnProfile] = field(default_factory=list)
    embedding: Optional[np.ndarray] = None

    @property
    def table_id(self) -> str:
        return f"{self.dataset_name}/{self.table_name}"

    def type_breakdown(self) -> Dict[str, int]:
        """Count of columns per fine-grained type (the Table 1 breakdown)."""
        counts = {type_name: 0 for type_name in FINE_GRAINED_TYPES}
        for profile in self.column_profiles:
            counts[profile.fine_grained_type] = counts.get(profile.fine_grained_type, 0) + 1
        return counts


class DataProfiler:
    """Profiles data lakes at column granularity (Algorithm 2).

    ``sample_fraction`` controls the CoLR value subsampling: the paper samples
    ``max(0.1 * |col|, 1000)`` values per column; setting the fraction to 1.0
    disables subsampling (the "No Subsampling" ablation of Figure 6).
    """

    def __init__(
        self,
        colr_models: Optional[ColRModelSet] = None,
        word_model: Optional[WordEmbeddingModel] = None,
        ner: Optional[NamedEntityRecognizer] = None,
        sample_fraction: float = 0.1,
        min_sample_size: int = 1000,
        executor: Optional[JobExecutor] = None,
        seed: int = 0,
    ):
        self.colr_models = colr_models or ColRModelSet.pretrained()
        self.word_model = word_model or default_word_model()
        self.ner = ner or NamedEntityRecognizer()
        self.sample_fraction = sample_fraction
        self.min_sample_size = min_sample_size
        self.executor = executor or JobExecutor()
        self.seed = seed
        self.type_inferrer = FineGrainedTypeInferrer(
            ner=self.ner, word_model=self.word_model, seed=seed
        )

    # ------------------------------------------------------------------- API
    def profile_column(self, table: Table, column: Column) -> ColumnProfile:
        """Profile a single column (the parallel worker of Algorithm 2)."""
        fine_grained_type = self.type_inferrer.infer(column)
        statistics = collect_statistics(column, fine_grained_type)
        sample_size = max(
            int(self.sample_fraction * len(column)), min(self.min_sample_size, len(column))
        )
        sample = column.sample(sample_size, seed=self.seed)
        embedding = self.colr_models.embed_column_values(sample, fine_grained_type)
        label_embedding = self.word_model.label_vector(column.name)
        return ColumnProfile(
            dataset_name=table.dataset or "default",
            table_name=table.name,
            column_name=column.name,
            fine_grained_type=fine_grained_type,
            statistics=statistics,
            embedding=embedding,
            label_embedding=label_embedding,
        )

    def profile_table(self, table: Table) -> TableProfile:
        """Profile every column of a table and compute the table embedding."""
        jobs = [(table, column) for column in table.columns]
        column_profiles = self.executor.map(lambda job: self.profile_column(*job), jobs)
        table_profile = TableProfile(
            dataset_name=table.dataset or "default",
            table_name=table.name,
            column_profiles=list(column_profiles),
        )
        if column_profiles:
            table_profile.embedding = self.colr_models.table_embedding(
                [profile.embedding for profile in column_profiles],
                [profile.fine_grained_type for profile in column_profiles],
            )
        return table_profile

    def profile_data_lake(self, lake: DataLake) -> List[TableProfile]:
        """Profile every table of a data lake."""
        return self.executor.map(self.profile_table, lake.tables())

    # --------------------------------------------------------------- reports
    @staticmethod
    def lake_statistics(table_profiles: Sequence[TableProfile]) -> Dict[str, float]:
        """Aggregate statistics in the layout of Table 1."""
        total_columns = sum(len(profile.column_profiles) for profile in table_profiles)
        total_rows = sum(
            profile.column_profiles[0].statistics.count if profile.column_profiles else 0
            for profile in table_profiles
        )
        breakdown = {type_name: 0 for type_name in FINE_GRAINED_TYPES}
        for table_profile in table_profiles:
            for type_name, count in table_profile.type_breakdown().items():
                breakdown[type_name] += count
        report: Dict[str, float] = {
            "num_tables": len(table_profiles),
            "total_columns": total_columns,
            "avg_rows_per_table": total_rows / len(table_profiles) if table_profiles else 0.0,
        }
        for type_name in FINE_GRAINED_TYPES:
            report[f"{type_name}_cols"] = breakdown[type_name]
        return report
