"""Column / table profiles and the data profiler (Algorithm 2).

The profiler decomposes a data lake into independent per-column jobs (the
Spark structure of the paper), and for each column produces a
:class:`ColumnProfile` holding the membership metadata, the inferred
fine-grained type, the collected statistics and the CoLR embedding computed
over a value sample.  Table profiles aggregate column embeddings into the
per-type concatenated table embedding of Eq. (1).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from repro.embeddings.colr import ColRModelSet
from repro.embeddings.words import WordEmbeddingModel, default_word_model
from repro.parallel import JobExecutor
from repro.profiler.ner import NamedEntityRecognizer
from repro.profiler.stats import ColumnStatistics, collect_statistics
from repro.profiler.type_inference import FineGrainedTypeInferrer
from repro.tabular import Column, DataLake, Table
from repro.types import FINE_GRAINED_TYPES


@dataclass
class ColumnProfile:
    """The profile of one column (the ``CP`` record of Algorithm 2)."""

    dataset_name: str
    table_name: str
    column_name: str
    fine_grained_type: str
    statistics: ColumnStatistics
    embedding: np.ndarray
    label_embedding: Optional[np.ndarray] = None

    @property
    def column_id(self) -> str:
        """A stable identifier ``dataset/table/column`` used for URIs and indexes."""
        return f"{self.dataset_name}/{self.table_name}/{self.column_name}"

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form: JSON-serializable and the pickle transport format.

        The inverse is :meth:`from_dict`; ``from_dict(to_dict(p))`` restores
        the profile exactly (embeddings kept at full float precision), which
        is what lets process-pool workers ship profiles across process
        boundaries without loss.
        """
        return {
            "dataset": self.dataset_name,
            "table": self.table_name,
            "column": self.column_name,
            "fine_grained_type": self.fine_grained_type,
            "statistics": self.statistics.to_dict(),
            "embedding": [float(x) for x in np.asarray(self.embedding).ravel()],
            "label_embedding": (
                [float(x) for x in np.asarray(self.label_embedding).ravel()]
                if self.label_embedding is not None
                else None
            ),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "ColumnProfile":
        """Rebuild a profile from :meth:`to_dict` output."""
        label_embedding = payload.get("label_embedding")
        return cls(
            dataset_name=payload["dataset"],
            table_name=payload["table"],
            column_name=payload["column"],
            fine_grained_type=payload["fine_grained_type"],
            statistics=ColumnStatistics.from_dict(payload["statistics"]),
            embedding=np.asarray(payload["embedding"], dtype=float),
            label_embedding=(
                np.asarray(label_embedding, dtype=float)
                if label_embedding is not None
                else None
            ),
        )

    def to_json(self) -> str:
        """JSON document form (what Algorithm 2 dumps per column)."""
        return json.dumps(self.to_dict())

    @classmethod
    def from_json(cls, document: str) -> "ColumnProfile":
        """Inverse of :meth:`to_json`."""
        return cls.from_dict(json.loads(document))


@dataclass
class TableProfile:
    """Aggregated profile of a table: its columns plus the table embedding."""

    dataset_name: str
    table_name: str
    column_profiles: List[ColumnProfile] = field(default_factory=list)
    embedding: Optional[np.ndarray] = None

    @property
    def table_id(self) -> str:
        return f"{self.dataset_name}/{self.table_name}"

    def type_breakdown(self) -> Dict[str, int]:
        """Count of columns per fine-grained type (the Table 1 breakdown)."""
        counts = {type_name: 0 for type_name in FINE_GRAINED_TYPES}
        for profile in self.column_profiles:
            counts[profile.fine_grained_type] = counts.get(profile.fine_grained_type, 0) + 1
        return counts

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form mirroring :meth:`ColumnProfile.to_dict`."""
        return {
            "dataset": self.dataset_name,
            "table": self.table_name,
            "column_profiles": [profile.to_dict() for profile in self.column_profiles],
            "embedding": (
                [float(x) for x in np.asarray(self.embedding).ravel()]
                if self.embedding is not None
                else None
            ),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "TableProfile":
        """Rebuild a table profile from :meth:`to_dict` output."""
        embedding = payload.get("embedding")
        return cls(
            dataset_name=payload["dataset"],
            table_name=payload["table"],
            column_profiles=[
                ColumnProfile.from_dict(column) for column in payload["column_profiles"]
            ],
            embedding=np.asarray(embedding, dtype=float) if embedding is not None else None,
        )


class DataProfiler:
    """Profiles data lakes at column granularity (Algorithm 2).

    ``sample_fraction`` controls the CoLR value subsampling: the paper samples
    ``max(0.1 * |col|, 1000)`` values per column; setting the fraction to 1.0
    disables subsampling (the "No Subsampling" ablation of Figure 6).
    """

    def __init__(
        self,
        colr_models: Optional[ColRModelSet] = None,
        word_model: Optional[WordEmbeddingModel] = None,
        ner: Optional[NamedEntityRecognizer] = None,
        sample_fraction: float = 0.1,
        min_sample_size: int = 1000,
        executor: Optional[JobExecutor] = None,
        seed: int = 0,
    ):
        #: Whether every model component is the deterministic default; only
        #: then can process-pool workers rebuild an identical profiler from a
        #: small config instead of pickling custom models.
        self._default_components = colr_models is None and word_model is None and ner is None
        self.colr_models = colr_models or ColRModelSet.pretrained()
        self.word_model = word_model or default_word_model()
        self.ner = ner or NamedEntityRecognizer()
        self.sample_fraction = sample_fraction
        self.min_sample_size = min_sample_size
        self.executor = executor or JobExecutor()
        self.seed = seed
        self.type_inferrer = FineGrainedTypeInferrer(
            ner=self.ner, word_model=self.word_model, seed=seed
        )

    # ------------------------------------------------------------------- API
    def profile_column(self, table: Table, column: Column) -> ColumnProfile:
        """Profile a single column (the parallel worker of Algorithm 2)."""
        fine_grained_type = self.type_inferrer.infer(column)
        statistics = collect_statistics(column, fine_grained_type)
        sample_size = max(
            int(self.sample_fraction * len(column)), min(self.min_sample_size, len(column))
        )
        sample = column.sample(sample_size, seed=self.seed)
        embedding = self.colr_models.embed_column_values(sample, fine_grained_type)
        label_embedding = self.word_model.label_vector(column.name)
        return ColumnProfile(
            dataset_name=table.dataset or "default",
            table_name=table.name,
            column_name=column.name,
            fine_grained_type=fine_grained_type,
            statistics=statistics,
            embedding=embedding,
            label_embedding=label_embedding,
        )

    def profile_table(self, table: Table) -> TableProfile:
        """Profile every column of a table and compute the table embedding."""
        jobs = [(table, column) for column in table.columns]
        if self.executor.backend == "processes":
            # Table-level fan-out (``profile_tables``) already owns the pool;
            # columns run serially inside each worker to avoid nested pools.
            column_profiles = [self.profile_column(table, column) for table, column in jobs]
        else:
            column_profiles = self.executor.map(lambda job: self.profile_column(*job), jobs)
        table_profile = TableProfile(
            dataset_name=table.dataset or "default",
            table_name=table.name,
            column_profiles=list(column_profiles),
        )
        if column_profiles:
            table_profile.embedding = self.colr_models.table_embedding(
                [profile.embedding for profile in column_profiles],
                [profile.fine_grained_type for profile in column_profiles],
            )
        return table_profile

    def profile_tables(self, tables: Sequence[Table]) -> List[TableProfile]:
        """Profile a batch of tables, fanning out across cores when possible.

        On the ``processes`` backend (with default model components) each
        worker process rebuilds the profiler once via the pool initializer —
        the CoLR and word models are deterministic, so every backend produces
        byte-identical profiles — and tables are shipped to workers in
        chunks.  Custom model components (or a failed pool start) fall back
        to the in-process path.
        """
        tables = list(tables)
        if self.executor.backend == "processes" and self._default_components:
            return self.executor.map(
                _profile_table_worker,
                tables,
                initializer=_init_profiler_worker,
                initargs=(self.process_config(),),
            )
        return self.executor.map(self.profile_table, tables)

    def profile_data_lake(self, lake: DataLake) -> List[TableProfile]:
        """Profile every table of a data lake."""
        return self.profile_tables(lake.tables())

    def process_config(self) -> Dict[str, Any]:
        """The picklable config a worker process rebuilds this profiler from."""
        return {
            "sample_fraction": self.sample_fraction,
            "min_sample_size": self.min_sample_size,
            "seed": self.seed,
        }

    # --------------------------------------------------------------- reports
    @staticmethod
    def lake_statistics(table_profiles: Sequence[TableProfile]) -> Dict[str, float]:
        """Aggregate statistics in the layout of Table 1."""
        total_columns = sum(len(profile.column_profiles) for profile in table_profiles)
        total_rows = sum(
            profile.column_profiles[0].statistics.count if profile.column_profiles else 0
            for profile in table_profiles
        )
        breakdown = {type_name: 0 for type_name in FINE_GRAINED_TYPES}
        for table_profile in table_profiles:
            for type_name, count in table_profile.type_breakdown().items():
                breakdown[type_name] += count
        report: Dict[str, float] = {
            "num_tables": len(table_profiles),
            "total_columns": total_columns,
            "avg_rows_per_table": total_rows / len(table_profiles) if table_profiles else 0.0,
        }
        for type_name in FINE_GRAINED_TYPES:
            report[f"{type_name}_cols"] = breakdown[type_name]
        return report


# ---------------------------------------------------------------------------
# Process-pool workers.  One profiler is built per worker process (via the
# pool initializer) so the CoLR / word / NER models load once per worker
# rather than once per table; columns inside a worker run serially to avoid
# nested pools.
# ---------------------------------------------------------------------------
_WORKER_PROFILER: Optional[DataProfiler] = None


def _init_profiler_worker(config: Dict[str, Any]) -> None:
    """Pool initializer: build the per-process profiler from its config."""
    global _WORKER_PROFILER
    _WORKER_PROFILER = DataProfiler(executor=JobExecutor(backend="serial"), **config)


def _profile_table_worker(table: Table) -> TableProfile:
    """Per-table job executed inside a worker process."""
    if _WORKER_PROFILER is None:  # pragma: no cover - initializer always runs
        raise RuntimeError("profiler worker used before initialization")
    return _WORKER_PROFILER.profile_table(table)
