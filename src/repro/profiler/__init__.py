"""Embedding-based data profiling (Algorithm 2 of the paper).

The profiler analyzes datasets at column granularity: it infers one of seven
fine-grained data types per column, collects per-type statistics, and
generates a CoLR embedding from a sample of the column's values.  Column
profiles are the input to the Data Global Schema Builder (Algorithm 3).
"""

from repro.profiler.ner import NamedEntityRecognizer
from repro.profiler.profile import ColumnProfile, DataProfiler, TableProfile
from repro.profiler.stats import ColumnStatistics, collect_statistics
from repro.profiler.type_inference import FineGrainedTypeInferrer

__all__ = [
    "NamedEntityRecognizer",
    "FineGrainedTypeInferrer",
    "ColumnStatistics",
    "collect_statistics",
    "ColumnProfile",
    "TableProfile",
    "DataProfiler",
]
