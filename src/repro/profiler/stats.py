"""Per-column statistics collected by the profiler (line 7 of Algorithm 2)."""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Any, Dict, Optional

import numpy as np

from repro.tabular.column import Column
from repro.types import TYPE_BOOLEAN, TYPE_FLOAT, TYPE_INT


@dataclass
class ColumnStatistics:
    """Statistics stored in the column profile and in the LiDS graph."""

    count: int = 0
    missing_count: int = 0
    distinct_count: int = 0
    minimum: Optional[float] = None
    maximum: Optional[float] = None
    mean: Optional[float] = None
    std: Optional[float] = None
    true_ratio: Optional[float] = None
    average_length: Optional[float] = None

    @property
    def missing_ratio(self) -> float:
        """Fraction of missing cells."""
        if self.count == 0:
            return 0.0
        return self.missing_count / self.count

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form (used when dumping profiles to JSON)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "ColumnStatistics":
        """Inverse of :meth:`to_dict` (ignores unknown keys for forward compat)."""
        known = set(cls.__dataclass_fields__)
        return cls(**{key: value for key, value in payload.items() if key in known})


def collect_statistics(column: Column, fine_grained_type: str) -> ColumnStatistics:
    """Compute the statistics for a column given its fine-grained type.

    Numeric columns get min/max/mean/std, boolean columns get the true-ratio
    (used by Algorithm 3's boolean content similarity), string-like columns
    get the average text length.
    """
    stats = ColumnStatistics(
        count=len(column),
        missing_count=column.missing_count(),
        distinct_count=column.distinct_count(),
    )
    if fine_grained_type in (TYPE_INT, TYPE_FLOAT):
        numeric = column.numeric_values()
        if numeric:
            array = np.asarray(numeric, dtype=float)
            stats.minimum = float(array.min())
            stats.maximum = float(array.max())
            stats.mean = float(array.mean())
            stats.std = float(array.std())
    elif fine_grained_type == TYPE_BOOLEAN:
        stats.true_ratio = column.true_ratio()
    else:
        lengths = [len(str(v)) for v in column.non_missing()]
        if lengths:
            stats.average_length = float(np.mean(lengths))
    return stats
