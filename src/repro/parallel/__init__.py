"""Spark-substitute job execution."""

from repro.parallel.executor import BACKENDS, JobExecutor, default_worker_count, map_jobs

__all__ = ["BACKENDS", "JobExecutor", "default_worker_count", "map_jobs"]
