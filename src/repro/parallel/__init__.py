"""Spark-substitute job execution."""

from repro.parallel.executor import JobExecutor, map_jobs

__all__ = ["JobExecutor", "map_jobs"]
