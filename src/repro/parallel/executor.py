"""A thin executor abstraction standing in for Spark RDD ``map`` jobs.

Algorithms 1-3 of the paper decompose their work into independent per-script,
per-column and per-column-pair jobs that Spark distributes across workers.
This module keeps the same decomposition while executing either serially or
with a thread pool — on a laptop the work is CPU-bound Python so the serial
backend is the default, but the job-oriented structure is preserved so the
code reads like the paper's pseudocode.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Iterable, List, Optional, Sequence, TypeVar

JobInput = TypeVar("JobInput")
JobOutput = TypeVar("JobOutput")


class JobExecutor:
    """Maps a worker function over independent jobs.

    ``backend`` is ``"serial"`` (default) or ``"threads"``.  The executor is
    deliberately tiny: the point is to make the map/mapPartitions structure of
    the paper's algorithms explicit and swappable, not to re-implement Spark.
    """

    def __init__(self, backend: str = "serial", max_workers: Optional[int] = None):
        if backend not in ("serial", "threads"):
            raise ValueError(f"unknown backend {backend!r}")
        self.backend = backend
        self.max_workers = max_workers

    def map(
        self, worker: Callable[[JobInput], JobOutput], jobs: Iterable[JobInput]
    ) -> List[JobOutput]:
        """Apply ``worker`` to every job and return results in job order."""
        jobs = list(jobs)
        if self.backend == "serial" or len(jobs) <= 1:
            return [worker(job) for job in jobs]
        with ThreadPoolExecutor(max_workers=self.max_workers) as pool:
            return list(pool.map(worker, jobs))

    def map_partitions(
        self,
        worker: Callable[[Sequence[JobInput]], JobOutput],
        jobs: Sequence[JobInput],
        num_partitions: int = 4,
    ) -> List[JobOutput]:
        """Apply ``worker`` to contiguous partitions of the job list."""
        jobs = list(jobs)
        if not jobs:
            return []
        num_partitions = max(1, min(num_partitions, len(jobs)))
        size = (len(jobs) + num_partitions - 1) // num_partitions
        partitions = [jobs[i : i + size] for i in range(0, len(jobs), size)]
        return self.map(worker, partitions)


def map_jobs(
    worker: Callable[[JobInput], JobOutput],
    jobs: Iterable[JobInput],
    backend: str = "serial",
) -> List[JobOutput]:
    """Convenience wrapper: ``JobExecutor(backend).map(worker, jobs)``."""
    return JobExecutor(backend=backend).map(worker, jobs)
