"""A thin executor abstraction standing in for Spark RDD ``map`` jobs.

Algorithms 1-3 of the paper decompose their work into independent per-script,
per-column and per-column-pair jobs that Spark distributes across workers.
This module keeps the same decomposition while executing serially, with a
thread pool, or with a process pool — the profiler and the per-type
similarity kernels are CPU-bound Python/numpy, so only the ``processes``
backend actually scales with cores (the GIL serializes the ``threads``
backend on pure-Python work).  The job-oriented structure is preserved so the
code reads like the paper's pseudocode.
"""

from __future__ import annotations

import os
import pickle
import threading
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Iterable, List, Optional, Sequence, Tuple, TypeVar

JobInput = TypeVar("JobInput")
JobOutput = TypeVar("JobOutput")

#: Backends accepted by :class:`JobExecutor`.
BACKENDS = ("serial", "threads", "processes")


def default_worker_count() -> int:
    """Worker count matching the machine (affinity-aware where available)."""
    try:
        return len(os.sched_getaffinity(0)) or 1
    except AttributeError:  # pragma: no cover - non-Linux platforms
        return os.cpu_count() or 1


class JobExecutor:
    """Maps a worker function over independent jobs.

    ``backend`` is ``"serial"`` (default), ``"threads"`` or ``"processes"``.
    The executor is deliberately tiny: the point is to make the
    map/mapPartitions structure of the paper's algorithms explicit and
    swappable, not to re-implement Spark.

    The ``processes`` backend ships jobs to a :class:`ProcessPoolExecutor`
    in contiguous chunks (amortizing pickling overhead) and supports a
    per-map ``initializer`` that loads heavy per-worker state (e.g. the
    CoLR / word models) once per worker instead of once per job.  When the
    pool cannot start or the worker/jobs cannot be pickled, the map falls
    back to serial execution and records why in ``last_fallback_reason``.

    The executor may be shared across threads (the governor service's
    scheduler maps on it while e.g. a recommender profiles on the caller's
    thread): process-pool fan-outs are serialized by an internal lock, so
    two threads never spawn two full-width worker pools at once — the
    second fan-out queues instead of oversubscribing every core — and
    ``last_fallback_reason`` always describes the most recent fan-out.
    """

    def __init__(
        self,
        backend: str = "serial",
        max_workers: Optional[int] = None,
        num_partitions: Optional[int] = None,
    ):
        if backend not in BACKENDS:
            raise ValueError(f"unknown backend {backend!r}")
        self.backend = backend
        self.max_workers = max_workers
        #: Default partition count of :meth:`map_partitions` (one per core).
        self.num_partitions = num_partitions or default_worker_count()
        #: Why the last ``processes`` map fell back to serial (``None`` if it
        #: did not); mirrors Spark's task-failure diagnostics.
        self.last_fallback_reason: Optional[str] = None
        #: Serializes process-pool fan-outs across sharing threads.
        self._processes_lock = threading.Lock()

    # ------------------------------------------------------------------- map
    def map(
        self,
        worker: Callable[[JobInput], JobOutput],
        jobs: Iterable[JobInput],
        initializer: Optional[Callable[..., None]] = None,
        initargs: Tuple = (),
        chunksize: Optional[int] = None,
    ) -> List[JobOutput]:
        """Apply ``worker`` to every job and return results in job order.

        ``initializer``/``initargs`` set up per-worker state before any job
        runs.  On the serial and thread backends (which share the parent's
        memory) the initializer runs once in-process.  ``chunksize``
        overrides the ``processes`` backend's internally computed chunk size
        — callers with few, expensive, unevenly-costed jobs (e.g. fitness
        evaluation) pass 1 so no worker is handed two stragglers at once.
        """
        jobs = list(jobs)
        if self.backend == "processes" and len(jobs) > 1:
            result = self._map_processes(worker, jobs, initializer, initargs, chunksize)
            if result is not None:
                return result
            # fall through to serial with last_fallback_reason recorded
        elif self.backend == "threads" and len(jobs) > 1:
            if initializer is not None:
                initializer(*initargs)
            with ThreadPoolExecutor(max_workers=self.max_workers) as pool:
                return list(pool.map(worker, jobs))
        if initializer is not None:
            initializer(*initargs)
        return [worker(job) for job in jobs]

    def _map_processes(
        self,
        worker: Callable[[JobInput], JobOutput],
        jobs: List[JobInput],
        initializer: Optional[Callable[..., None]],
        initargs: Tuple,
        chunksize: Optional[int] = None,
    ) -> Optional[List[JobOutput]]:
        """Chunked process-pool map; ``None`` means "fall back to serial"."""
        with self._processes_lock:
            self.last_fallback_reason = None
            workers = self.max_workers or default_worker_count()
            workers = max(1, min(workers, len(jobs)))
            if chunksize is None:
                # Contiguous chunks amortize per-task pickling: aim for a few
                # chunks per worker so stragglers still balance.
                chunksize = max(1, (len(jobs) + workers * 4 - 1) // (workers * 4))
            try:
                with ProcessPoolExecutor(
                    max_workers=workers, initializer=initializer, initargs=initargs
                ) as pool:
                    return list(pool.map(worker, jobs, chunksize=chunksize))
            except (
                pickle.PicklingError,
                TypeError,
                AttributeError,
                ImportError,
                OSError,
                BrokenProcessPool,
            ) as error:
                # Unpicklable workers/jobs, fork failures (resource limits,
                # sandboxes) and dead pools all degrade gracefully to serial.
                self.last_fallback_reason = f"{type(error).__name__}: {error}"
                return None

    def map_partitions(
        self,
        worker: Callable[[Sequence[JobInput]], JobOutput],
        jobs: Sequence[JobInput],
        num_partitions: Optional[int] = None,
    ) -> List[JobOutput]:
        """Apply ``worker`` to contiguous partitions of the job list.

        ``num_partitions`` defaults to the executor's ``num_partitions``
        (one per core), so partitioned jobs saturate the machine by default.
        """
        jobs = list(jobs)
        if not jobs:
            return []
        if num_partitions is None:
            num_partitions = self.num_partitions
        num_partitions = max(1, min(num_partitions, len(jobs)))
        size = (len(jobs) + num_partitions - 1) // num_partitions
        partitions = [jobs[i : i + size] for i in range(0, len(jobs), size)]
        return self.map(worker, partitions)


def map_jobs(
    worker: Callable[[JobInput], JobOutput],
    jobs: Iterable[JobInput],
    backend: str = "serial",
) -> List[JobOutput]:
    """Convenience wrapper: ``JobExecutor(backend).map(worker, jobs)``."""
    return JobExecutor(backend=backend).map(worker, jobs)
