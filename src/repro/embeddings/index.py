"""Vector indexes for similarity search (the Faiss / HNSW substitutes).

Two indexes are provided: a brute-force :class:`FlatIndex` with exact cosine
top-k (Faiss ``IndexFlat`` analogue, used by the KGLiDS embedding store) and
an :class:`HNSWIndex` approximating Hierarchical Navigable Small World graphs
with a navigable k-NN graph plus greedy beam search (used by the Starmie
baseline, which the paper notes relies on an HNSW index).
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np


def _normalize(vector: np.ndarray) -> np.ndarray:
    vector = np.asarray(vector, dtype=float).ravel()
    norm = np.linalg.norm(vector)
    return vector / norm if norm > 0 else vector


class FlatIndex:
    """Exact cosine-similarity search over stored vectors."""

    def __init__(self, dimensions: int):
        self.dimensions = dimensions
        self._keys: List[str] = []
        self._vectors: List[np.ndarray] = []
        self._positions: Dict[str, int] = {}
        self._matrix: Optional[np.ndarray] = None

    def __len__(self) -> int:
        return len(self._keys)

    def __contains__(self, key: str) -> bool:
        return key in self._positions

    def add(self, key: str, vector: np.ndarray) -> None:
        """Insert or replace the vector under ``key`` (L2-normalized on insert).

        Re-adding an existing key overwrites its row in place — O(1) instead
        of an index rebuild — so profile refreshes stay cheap.
        """
        vector = _normalize(vector)
        if vector.shape[0] != self.dimensions:
            raise ValueError(
                f"expected {self.dimensions}-dimensional vector, got {vector.shape[0]}"
            )
        position = self._positions.get(key)
        if position is not None:
            self._vectors[position] = vector
            if self._matrix is not None:
                self._matrix[position] = vector
            return
        self._positions[key] = len(self._keys)
        self._keys.append(key)
        self._vectors.append(vector)
        self._matrix = None

    def add_many(self, items: Sequence[Tuple[str, np.ndarray]]) -> None:
        """Insert or replace a batch of ``(key, vector)`` pairs.

        Equivalent to repeated :meth:`add` but normalizes the whole batch in
        one vectorized pass and touches the cached matrix at most once,
        instead of per row.
        """
        if not items:
            return
        stacked = np.stack([np.asarray(vector, dtype=float).ravel() for _, vector in items])
        if stacked.shape[1] != self.dimensions:
            raise ValueError(
                f"expected {self.dimensions}-dimensional vectors, got {stacked.shape[1]}"
            )
        norms = np.linalg.norm(stacked, axis=1)
        stacked = stacked / np.where(norms > 0, norms, 1.0)[:, None]
        appended = False
        for row, (key, _) in zip(stacked, items):
            position = self._positions.get(key)
            if position is not None:
                self._vectors[position] = row
                if self._matrix is not None and not appended:
                    self._matrix[position] = row
                continue
            self._positions[key] = len(self._keys)
            self._keys.append(key)
            self._vectors.append(row)
            appended = True
        if appended:
            self._matrix = None

    def _ensure_matrix(self) -> np.ndarray:
        if self._matrix is None:
            self._matrix = (
                np.vstack(self._vectors) if self._vectors else np.zeros((0, self.dimensions))
            )
        return self._matrix

    def remove(self, key: str) -> bool:
        """Delete a key's vector in O(1) by swapping the last row into its slot.

        This is the retraction primitive behind ``EmbeddingStore.remove`` —
        refreshing a table whose columns changed must drop the stale vectors,
        not just overwrite the surviving ones.
        """
        position = self._positions.pop(key, None)
        if position is None:
            return False
        last = len(self._keys) - 1
        if position != last:
            self._keys[position] = self._keys[last]
            self._vectors[position] = self._vectors[last]
            self._positions[self._keys[position]] = position
            if self._matrix is not None:
                self._matrix[position] = self._vectors[position]
        self._keys.pop()
        self._vectors.pop()
        if self._matrix is not None:
            self._matrix = self._matrix[: len(self._keys)]
        return True

    def search(self, query: np.ndarray, k: int = 10) -> List[Tuple[str, float]]:
        """Top-k ``(key, cosine similarity)`` pairs for the query vector."""
        if not self._keys:
            return []
        matrix = self._ensure_matrix()
        query = _normalize(query)
        scores = matrix @ query
        k = min(k, len(self._keys))
        top = np.argpartition(-scores, k - 1)[:k]
        top = top[np.argsort(-scores[top])]
        return [(self._keys[i], float(scores[i])) for i in top]

    def search_many(
        self, queries: np.ndarray, k: int = 10
    ) -> List[List[Tuple[str, float]]]:
        """Top-k results for a batch of query vectors in one matrix product.

        Equivalent to ``[search(q, k) for q in queries]`` but the scoring is
        a single matmul and the top-k selection one row-wise argpartition —
        this is the bulk candidate-generation path of the ANN-pruned
        similarity kernel.
        """
        queries = np.atleast_2d(np.asarray(queries, dtype=float))
        if not self._keys:
            return [[] for _ in range(queries.shape[0])]
        norms = np.linalg.norm(queries, axis=1)
        normalized = queries / np.where(norms > 0, norms, 1.0)[:, None]
        scores = normalized @ self._ensure_matrix().T
        k = min(k, len(self._keys))
        top = np.argpartition(-scores, k - 1, axis=1)[:, :k]
        results: List[List[Tuple[str, float]]] = []
        for row, candidates in enumerate(top):
            ordered = candidates[np.argsort(-scores[row, candidates])]
            results.append([(self._keys[i], float(scores[row, i])) for i in ordered])
        return results

    def keys(self) -> List[str]:
        return list(self._keys)


class HNSWIndex:
    """Approximate nearest-neighbour search over a navigable small-world graph.

    Construction links each inserted vector to the ``m`` best candidates
    found by a beam search over the *existing* neighbour graph (width
    ``ef_construction``), so an insert probes ~``ef_construction * m``
    vectors instead of scanning all ``n`` stored ones — the seed
    implementation's O(n^2) build becomes near-linear.  Queries run the same
    best-first beam (width ``ef_search``) from a fixed entry point.  This
    reproduces the behaviour that matters for the evaluation: sub-linear
    probing with approximate results.
    """

    def __init__(
        self,
        dimensions: int,
        m: int = 8,
        ef_search: int = 32,
        ef_construction: Optional[int] = None,
    ):
        self.dimensions = dimensions
        self.m = m
        self.ef_search = ef_search
        #: Beam width used to locate link candidates during insertion; wider
        #: beams buy graph quality (recall) for build time.
        self.ef_construction = ef_construction if ef_construction is not None else max(32, 4 * m)
        self._keys: List[str] = []
        self._vectors: List[np.ndarray] = []
        self._neighbors: List[List[int]] = []

    def __len__(self) -> int:
        return len(self._keys)

    def add(self, key: str, vector: np.ndarray) -> None:
        """Insert a vector, wiring it into the neighbour graph.

        Link candidates come from a beam search over the current graph, not
        from scoring every stored vector; back-links keep node degree at most
        ``2 m`` by evicting the weakest neighbour when the new node is
        closer.
        """
        vector = _normalize(vector)
        if vector.shape[0] != self.dimensions:
            raise ValueError(
                f"expected {self.dimensions}-dimensional vector, got {vector.shape[0]}"
            )
        index = len(self._keys)
        self._keys.append(key)
        self._vectors.append(vector)
        self._neighbors.append([])
        if index == 0:
            return
        candidates = self._beam_search(vector, max(self.ef_construction, self.m))
        for score, neighbor in candidates[: self.m]:
            self._neighbors[index].append(neighbor)
            backlinks = self._neighbors[neighbor]
            if len(backlinks) < self.m * 2:
                backlinks.append(index)
                continue
            # Degree cap reached: keep the new link only if it beats the
            # neighbour's current weakest edge (one stacked matvec, not a
            # Python-level dot per backlink).
            neighbor_vector = self._vectors[neighbor]
            backlink_scores = (
                np.stack([self._vectors[b] for b in backlinks]) @ neighbor_vector
            )
            weakest_position = int(np.argmin(backlink_scores))
            if score > float(backlink_scores[weakest_position]):
                backlinks[weakest_position] = index

    def _beam_search(self, query: np.ndarray, ef: int) -> List[Tuple[float, int]]:
        """Best-first beam of width ``ef``: ``(score, node)`` sorted best-first."""
        entry = 0
        visited = {entry}
        entry_score = float(np.dot(self._vectors[entry], query))
        # Max-heap via negative scores.
        candidates: List[Tuple[float, int]] = [(-entry_score, entry)]
        best: List[Tuple[float, int]] = [(entry_score, entry)]
        while candidates:
            negative_score, node = heapq.heappop(candidates)
            if -negative_score < min(score for score, _ in best) and len(best) >= ef:
                break
            for neighbor in self._neighbors[node]:
                if neighbor in visited:
                    continue
                visited.add(neighbor)
                score = float(np.dot(self._vectors[neighbor], query))
                heapq.heappush(candidates, (-score, neighbor))
                best.append((score, neighbor))
                best.sort(reverse=True)
                if len(best) > ef:
                    best.pop()
        best.sort(reverse=True)
        return best

    def search(self, query: np.ndarray, k: int = 10) -> List[Tuple[str, float]]:
        """Approximate top-k ``(key, cosine similarity)`` via greedy beam search."""
        if not self._keys:
            return []
        query = _normalize(query)
        best = self._beam_search(query, self.ef_search)
        return [(self._keys[i], score) for score, i in best[:k]]

    def keys(self) -> List[str]:
        return list(self._keys)
