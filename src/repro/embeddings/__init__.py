"""Embedding models and vector indexes.

This package holds the learned-representation machinery of KGLiDS:

* :mod:`repro.embeddings.words` — word embeddings for column-name (label)
  similarity, substituting GloVe + WordNet with deterministic character-n-gram
  hashing embeddings.
* :mod:`repro.embeddings.colr` — the CoLR column-content embedding models
  (one per fine-grained data type), producing 300-dimensional column
  embeddings and the concatenated per-type table embeddings of Eq. (1).
* :mod:`repro.embeddings.training` — the column-pair training procedure
  (binary cross-entropy on similar/dissimilar pairs) used to pre-train CoLR.
* :mod:`repro.embeddings.index` — flat and HNSW-style approximate
  nearest-neighbour indexes (the Faiss substitute).
* :mod:`repro.embeddings.store` — the embedding store attached to the
  KGLiDS storage layer.
"""

from repro.embeddings.colr import (
    COLR_DIMENSIONS,
    CoarseGrainedModelSet,
    ColRModel,
    ColRModelSet,
    cosine_similarity,
)
from repro.embeddings.index import FlatIndex, HNSWIndex
from repro.embeddings.store import EmbeddingStore
from repro.embeddings.training import ColumnPair, generate_training_pairs, train_colr_model
from repro.embeddings.words import WordEmbeddingModel, label_similarity, tokenize_label

__all__ = [
    "COLR_DIMENSIONS",
    "ColRModel",
    "ColRModelSet",
    "CoarseGrainedModelSet",
    "cosine_similarity",
    "FlatIndex",
    "HNSWIndex",
    "EmbeddingStore",
    "WordEmbeddingModel",
    "label_similarity",
    "tokenize_label",
    "ColumnPair",
    "generate_training_pairs",
    "train_colr_model",
]
