"""Word embeddings for column-label similarity.

The paper computes label similarity between column names with GloVe word
embeddings combined with a semantic similarity technique.  Pre-trained GloVe
vectors are not available offline, so this module builds deterministic
embeddings from character n-grams: words sharing sub-word structure
("age" / "Age" / "patient_age", "area_sq_ft" / "area_sq_m") land close
together, which is exactly the property label similarity relies on.
"""

from __future__ import annotations

import hashlib
import re
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

_CAMEL_RE = re.compile(r"(?<=[a-z0-9])(?=[A-Z])")
_NON_ALNUM_RE = re.compile(r"[^A-Za-z0-9]+")

#: Common abbreviation expansions seen in column names; improves matches like
#: ``qty`` vs ``quantity`` or ``num`` vs ``number``.
_ABBREVIATIONS: Dict[str, str] = {
    "qty": "quantity",
    "num": "number",
    "no": "number",
    "amt": "amount",
    "avg": "average",
    "max": "maximum",
    "min": "minimum",
    "pct": "percent",
    "id": "identifier",
    "dob": "birthdate",
    "addr": "address",
    "tel": "telephone",
    "lat": "latitude",
    "lon": "longitude",
    "lng": "longitude",
}


def tokenize_label(label: str) -> List[str]:
    """Split a column label into lower-cased word tokens.

    Handles snake_case, kebab-case, camelCase and digits, and expands a few
    common abbreviations.
    """
    if not label:
        return []
    text = _CAMEL_RE.sub(" ", str(label))
    text = _NON_ALNUM_RE.sub(" ", text)
    tokens = [token.lower() for token in text.split() if token]
    return [_ABBREVIATIONS.get(token, token) for token in tokens]


class WordEmbeddingModel:
    """Deterministic character-n-gram hashing word embeddings.

    Each word is embedded as the normalized sum of hashed character n-gram
    vectors (n = 3..5 plus the whole word).  The embedding of a multi-token
    label is the mean of its token embeddings.  Vectors are cached.
    """

    def __init__(self, dimensions: int = 50, seed: int = 13):
        self.dimensions = dimensions
        self.seed = seed
        self._cache: Dict[str, np.ndarray] = {}

    # ------------------------------------------------------------- internals
    def _hash_vector(self, text: str) -> np.ndarray:
        digest = hashlib.sha256(f"{self.seed}:{text}".encode("utf-8")).digest()
        state = np.frombuffer(digest, dtype=np.uint8).astype(np.uint32)
        rng = np.random.RandomState(state)
        return rng.normal(size=self.dimensions)

    def _ngrams(self, word: str) -> List[str]:
        padded = f"<{word}>"
        grams = [padded]
        for n in (3, 4, 5):
            grams.extend(padded[i : i + n] for i in range(max(0, len(padded) - n + 1)))
        return grams

    # ------------------------------------------------------------------- API
    def word_vector(self, word: str) -> np.ndarray:
        """Embedding of a single word."""
        word = word.lower()
        if word in self._cache:
            return self._cache[word]
        grams = self._ngrams(word)
        vector = np.zeros(self.dimensions)
        for gram in grams:
            vector += self._hash_vector(gram)
        norm = np.linalg.norm(vector)
        if norm > 0:
            vector /= norm
        self._cache[word] = vector
        return vector

    def label_vector(self, label: str) -> np.ndarray:
        """Embedding of a (possibly multi-token) column label."""
        tokens = tokenize_label(label)
        if not tokens:
            return np.zeros(self.dimensions)
        vectors = [self.word_vector(token) for token in tokens]
        vector = np.mean(vectors, axis=0)
        norm = np.linalg.norm(vector)
        return vector / norm if norm > 0 else vector

    def similarity(self, label_a: str, label_b: str) -> float:
        """Cosine + token-overlap similarity between two labels in ``[0, 1]``.

        The blend of embedding cosine and Jaccard token overlap mirrors the
        paper's combination of word embeddings with a semantic similarity
        technique over label tokens.
        """
        tokens_a, tokens_b = set(tokenize_label(label_a)), set(tokenize_label(label_b))
        if not tokens_a or not tokens_b:
            return 0.0
        if tokens_a == tokens_b:
            return 1.0
        cosine = float(np.dot(self.label_vector(label_a), self.label_vector(label_b)))
        cosine = max(0.0, min(1.0, (cosine + 1.0) / 2.0))
        jaccard = len(tokens_a & tokens_b) / len(tokens_a | tokens_b)
        return max(0.0, min(1.0, 0.5 * cosine + 0.5 * jaccard))

    def has_word(self, word: str) -> bool:
        """Whether ``word`` looks like a natural-language token.

        The profiler uses this to decide whether free text is natural language
        (paper: "natural language texts are predicted based on the existence
        of corresponding word embeddings for the tokens").  Offline we
        approximate vocabulary membership with a small built-in English
        lexicon plus purely-alphabetic token shape.
        """
        word = word.lower()
        if word in _COMMON_ENGLISH_WORDS:
            return True
        return word.isalpha() and 2 < len(word) <= 20


_COMMON_ENGLISH_WORDS = frozenset(
    """
    the be to of and a in that have i it for not on with he as you do at this
    but his by from they we say her she or an will my one all would there
    their what so up out if about who get which go me when make can like time
    no just him know take people into year your good some could them see other
    than then now look only come its over think also back after use two how
    our work first well way even new want because any these give day most us
    great small old big high different following where under while last might
    product review comment description text note message title name summary
    excellent poor quality service price recommend love hate terrible amazing
    """.split()
)

_DEFAULT_MODEL: Optional[WordEmbeddingModel] = None


def default_word_model() -> WordEmbeddingModel:
    """A process-wide shared word-embedding model (cached vectors)."""
    global _DEFAULT_MODEL
    if _DEFAULT_MODEL is None:
        _DEFAULT_MODEL = WordEmbeddingModel()
    return _DEFAULT_MODEL


def label_similarity(label_a: str, label_b: str) -> float:
    """Module-level helper using the shared word model."""
    return default_word_model().similarity(label_a, label_b)
