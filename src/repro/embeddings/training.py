"""Training CoLR models on column pairs with binary cross-entropy.

The paper pre-trains CoLR on ~5,500 Kaggle/OpenML tables by sampling column
pairs and predicting a binary similarity target.  Offline we generate the
column pairs synthetically: positives are distribution-preserving variants of
the same column (sub-samples, unit conversions, renamed copies), negatives
are columns drawn from unrelated generators.  Training nudges the MLP weights
with a cosine-based contrastive loss whose gradient is approximated by SPSA
(simultaneous perturbation), which keeps the trainer dependency-free while
demonstrably reducing the loss (verified by tests and used in the Figure 6
ablation).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.embeddings.colr import ColRModel, featurize_value
from repro.types import TYPE_FLOAT, TYPE_INT, TYPE_NAMED_ENTITY, TYPE_STRING


@dataclass
class ColumnPair:
    """A training example: two columns of values plus a similarity target."""

    values_a: List
    values_b: List
    label: int  # 1 similar, 0 dissimilar
    fine_grained_type: str = TYPE_FLOAT


_FIRST_NAMES = [
    "james", "mary", "robert", "patricia", "john", "jennifer", "michael",
    "linda", "david", "elizabeth", "william", "barbara", "richard", "susan",
]
_CITIES = [
    "montreal", "toronto", "vienna", "cairo", "boston", "madrid", "lisbon",
    "oslo", "tokyo", "seoul", "lima", "quito", "accra", "nairobi",
]
_CODES = ["A1", "B2", "C3", "D4", "E5", "F6", "G7", "H8", "J9", "K0"]


def generate_training_pairs(
    n_pairs: int = 60, seed: int = 7, fine_grained_type: str = TYPE_FLOAT
) -> List[ColumnPair]:
    """Generate a balanced synthetic set of similar / dissimilar column pairs."""
    rng = np.random.RandomState(seed)
    pairs: List[ColumnPair] = []
    for i in range(n_pairs):
        positive = i % 2 == 0
        if fine_grained_type in (TYPE_INT, TYPE_FLOAT):
            base_scale = float(rng.choice([1.0, 10.0, 100.0, 1000.0]))
            base = rng.normal(loc=base_scale, scale=base_scale / 4.0, size=60)
            if fine_grained_type == TYPE_INT:
                base = np.round(base)
            if positive:
                factor = float(rng.choice([1.0, 0.3048, 2.2, 1.6]))
                other = rng.permutation(base)[:40] * factor
            else:
                other_scale = base_scale * float(rng.choice([1e-3, 1e3, 1e4]))
                other = rng.exponential(scale=other_scale + 1.0, size=50)
            pairs.append(
                ColumnPair(base.tolist(), other.tolist(), int(positive), fine_grained_type)
            )
        elif fine_grained_type == TYPE_NAMED_ENTITY:
            base = [str(rng.choice(_FIRST_NAMES)).title() for _ in range(40)]
            if positive:
                other = [value.upper() for value in rng.permutation(base)[:30]]
            else:
                other = [str(rng.choice(_CITIES)).title() for _ in range(30)]
            pairs.append(ColumnPair(base, other, int(positive), fine_grained_type))
        else:
            base = [f"{rng.choice(_CODES)}{rng.randint(100, 999)}" for _ in range(40)]
            if positive:
                other = list(rng.permutation(base)[:30])
            else:
                other = [" ".join(rng.choice(_CITIES, size=3)) for _ in range(30)]
            pairs.append(ColumnPair(base, other, int(positive), fine_grained_type))
    return pairs


def _pair_features(pair: ColumnPair) -> Tuple[np.ndarray, np.ndarray]:
    features_a = np.vstack(
        [featurize_value(v, pair.fine_grained_type) for v in pair.values_a]
    )
    features_b = np.vstack(
        [featurize_value(v, pair.fine_grained_type) for v in pair.values_b]
    )
    return features_a, features_b


def binary_cross_entropy_loss(model: ColRModel, pairs: Sequence[ColumnPair]) -> float:
    """Mean binary cross-entropy of the model's pair-similarity predictions."""
    if not pairs:
        return 0.0
    total = 0.0
    for pair in pairs:
        features_a, features_b = _pair_features(pair)
        probability = model.pair_probability(features_a, features_b)
        probability = min(max(probability, 1e-6), 1.0 - 1e-6)
        if pair.label:
            total += -np.log(probability)
        else:
            total += -np.log(1.0 - probability)
    return float(total / len(pairs))


def train_colr_model(
    model: ColRModel,
    pairs: Sequence[ColumnPair],
    epochs: int = 5,
    learning_rate: float = 0.05,
    perturbation: float = 0.01,
    seed: int = 0,
) -> List[float]:
    """Train ``model`` in place on the column pairs; returns per-epoch losses.

    Each epoch performs one SPSA step: the loss is evaluated at two randomly
    perturbed weight settings and the weights move along the estimated
    descent direction.  This is intentionally lightweight — the goal is to
    reproduce the training *procedure* (pair sampling + BCE objective), not
    to match the authors' GPU training runs.
    """
    rng = np.random.RandomState(seed)
    losses = [binary_cross_entropy_loss(model, pairs)]
    parameters = ["W1", "b1", "W2", "b2"]
    for _ in range(epochs):
        directions = {name: rng.choice([-1.0, 1.0], size=getattr(model, name).shape) for name in parameters}
        for sign in (+1.0, -1.0):
            for name in parameters:
                getattr(model, name).__iadd__(sign * perturbation * directions[name])
            if sign > 0:
                loss_plus = binary_cross_entropy_loss(model, pairs)
                for name in parameters:
                    getattr(model, name).__isub__(perturbation * directions[name])
            else:
                loss_minus = binary_cross_entropy_loss(model, pairs)
                for name in parameters:
                    getattr(model, name).__iadd__(perturbation * directions[name])
        gradient_estimate = (loss_plus - loss_minus) / (2.0 * perturbation)
        for name in parameters:
            update = learning_rate * gradient_estimate * directions[name]
            getattr(model, name).__isub__(update)
        current = binary_cross_entropy_loss(model, pairs)
        if current > losses[-1]:
            # Reject steps that increase the loss (keeps training monotone).
            for name in parameters:
                getattr(model, name).__iadd__(learning_rate * gradient_estimate * directions[name])
            current = losses[-1]
        losses.append(current)
    return losses
