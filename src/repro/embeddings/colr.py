"""CoLR: column learned representations.

The paper (Section 3.2) trains, per fine-grained data type, a neural network
``h_theta`` that maps a single cell value to a 300-dimensional vector; the
embedding of a column is the average of ``h_theta`` over a 10% sample of its
values, and the embedding of a table concatenates the per-type averages of
its column embeddings (Eq. 1).

The reproduction keeps that architecture: a hand-crafted value featurizer per
type feeds a small two-layer MLP.  Models can be used with deterministic
"pre-trained" weights (a fixed random projection, which already preserves the
"similar value distributions => nearby embeddings" property the platform
relies on) or trained on column pairs with binary cross-entropy via
:mod:`repro.embeddings.training`, which is what the ablation benchmarks do.
"""

from __future__ import annotations

import hashlib
import math
import re
from typing import Any, Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.types import COLR_TYPES, TYPE_DATE, TYPE_FLOAT, TYPE_INT

#: Dimensionality of CoLR column embeddings (the paper uses 300).
COLR_DIMENSIONS = 300
#: Dimensionality of the hand-crafted value features fed to the MLP.
VALUE_FEATURE_DIMENSIONS = 64

_YEAR_RE = re.compile(r"(19|20)\d{2}")
_DIGIT_RE = re.compile(r"\d")


def cosine_similarity(a: np.ndarray, b: np.ndarray) -> float:
    """Cosine similarity mapped to ``[0, 1]`` (0.5 means orthogonal)."""
    a = np.asarray(a, dtype=float).ravel()
    b = np.asarray(b, dtype=float).ravel()
    norm_a, norm_b = np.linalg.norm(a), np.linalg.norm(b)
    if norm_a == 0.0 or norm_b == 0.0:
        return 0.0
    cosine = float(np.dot(a, b) / (norm_a * norm_b))
    return max(0.0, min(1.0, (cosine + 1.0) / 2.0))


# --------------------------------------------------------------------------
# Value featurizers
# --------------------------------------------------------------------------
def _hash_bucket(text: str, buckets: int, salt: str) -> int:
    digest = hashlib.md5(f"{salt}:{text}".encode("utf-8")).hexdigest()
    return int(digest[:8], 16) % buckets


def numeric_value_features(value: float) -> np.ndarray:
    """Distribution-describing features of a numeric cell value."""
    features = np.zeros(VALUE_FEATURE_DIMENSIONS)
    if value is None or (isinstance(value, float) and math.isnan(value)):
        return features
    value = float(value)
    magnitude = math.log1p(abs(value))
    features[0] = math.copysign(1.0, value) if value != 0 else 0.0
    features[1] = magnitude
    features[2] = magnitude**2 / 10.0
    features[3] = value / (1.0 + abs(value))
    features[4] = abs(value) % 1.0
    features[5] = 1.0 if float(value).is_integer() else 0.0
    features[6] = len(str(int(abs(value)))) / 10.0 if abs(value) >= 1 else 0.0
    features[7] = 1.0 if 0.0 <= value <= 1.0 else 0.0
    features[8] = 1.0 if 1900 <= value <= 2100 else 0.0
    features[9] = 1.0 if value < 0 else 0.0
    # Multi-frequency encoding of the log-magnitude: columns whose value
    # scales differ even moderately land on different phases, which is what
    # gives the averaged column embedding its discriminative power.
    for k, frequency in enumerate((0.5, 1.0, 2.0, 4.0, 8.0)):
        features[10 + 2 * k] = math.sin(frequency * magnitude)
        features[11 + 2 * k] = math.cos(frequency * magnitude)
    # Fine-grained magnitude buckets with linear interpolation between the two
    # nearest buckets (soft one-hot over log-magnitude, 24 buckets of 0.5).
    position = min(23.0, magnitude * 2.0)
    lower = int(position)
    fraction = position - lower
    features[20 + lower] = 1.0 - fraction
    if lower + 1 <= 23:
        features[20 + lower + 1] = fraction
    # Leading-digit distribution (Benford-style signal).
    leading = str(abs(value)).lstrip("0.").replace(".", "")
    if leading:
        features[44 + min(9, int(leading[0]))] = 1.0
    # Value sign/fraction interactions in the remaining slots.
    features[54] = math.sin(value / (1.0 + abs(value)) * math.pi)
    features[55] = float(abs(value) % 10) / 10.0
    return features


def string_value_features(value: str, salt: str = "string") -> np.ndarray:
    """Character-shape and hashed n-gram features of a string cell value."""
    features = np.zeros(VALUE_FEATURE_DIMENSIONS)
    text = str(value)
    if not text:
        return features
    length = len(text)
    tokens = text.split()
    digits = len(_DIGIT_RE.findall(text))
    features[0] = min(1.0, length / 50.0)
    features[1] = min(1.0, len(tokens) / 20.0)
    features[2] = digits / length
    features[3] = sum(1 for c in text if c.isupper()) / length
    features[4] = sum(1 for c in text if c.isalpha()) / length
    features[5] = sum(1 for c in text if not c.isalnum() and not c.isspace()) / length
    features[6] = 1.0 if text.istitle() else 0.0
    features[7] = 1.0 if text.isupper() else 0.0
    lowered = text.lower()
    padded = f"<{lowered}>"
    buckets = VALUE_FEATURE_DIMENSIONS - 8
    for n in (2, 3):
        for i in range(max(0, len(padded) - n + 1)):
            gram = padded[i : i + n]
            features[8 + _hash_bucket(gram, buckets, salt)] += 1.0
    gram_part = features[8:]
    norm = np.linalg.norm(gram_part)
    if norm > 0:
        features[8:] = gram_part / norm
    return features


def date_value_features(value: str) -> np.ndarray:
    """Features for date-like values: year, month/day structure, separators."""
    features = np.zeros(VALUE_FEATURE_DIMENSIONS)
    text = str(value)
    year_match = _YEAR_RE.search(text)
    if year_match:
        year = int(year_match.group(0))
        features[0] = (year - 1900) / 200.0
        features[1] = 1.0
    numbers = [int(n) for n in re.findall(r"\d+", text)]
    if numbers:
        features[2] = min(1.0, len(numbers) / 6.0)
        features[3] = min(numbers) / 60.0 if numbers else 0.0
        features[4] = max(numbers) / 3000.0
    features[5] = 1.0 if "-" in text else 0.0
    features[6] = 1.0 if "/" in text else 0.0
    features[7] = 1.0 if ":" in text else 0.0
    features[8] = min(1.0, len(text) / 30.0)
    shape_features = string_value_features(text, salt="date")
    features[9:] = shape_features[9:]
    return features


def featurize_value(value: Any, fine_grained_type: str) -> np.ndarray:
    """Dispatch to the featurizer for the value's fine-grained type."""
    if fine_grained_type in (TYPE_INT, TYPE_FLOAT):
        try:
            return numeric_value_features(float(value))
        except (TypeError, ValueError):
            return np.zeros(VALUE_FEATURE_DIMENSIONS)
    if fine_grained_type == TYPE_DATE:
        return date_value_features(value)
    return string_value_features(value, salt=fine_grained_type)


# --------------------------------------------------------------------------
# The CoLR model
# --------------------------------------------------------------------------
class ColRModel:
    """A two-layer MLP mapping value features to a CoLR embedding.

    ``forward`` embeds a single value; ``embed_column`` averages over a value
    sample, exactly like lines 8-10 of Algorithm 2.
    """

    def __init__(
        self,
        fine_grained_type: str,
        dimensions: int = COLR_DIMENSIONS,
        hidden: int = 128,
        seed: Optional[int] = None,
    ):
        self.fine_grained_type = fine_grained_type
        self.dimensions = dimensions
        self.hidden = hidden
        if seed is None:
            seed = int(hashlib.md5(fine_grained_type.encode()).hexdigest()[:6], 16)
        self.seed = seed
        rng = np.random.RandomState(seed)
        scale1 = 1.0 / math.sqrt(VALUE_FEATURE_DIMENSIONS)
        scale2 = 1.0 / math.sqrt(hidden)
        self.W1 = rng.normal(scale=scale1, size=(VALUE_FEATURE_DIMENSIONS, hidden))
        self.b1 = np.zeros(hidden)
        self.W2 = rng.normal(scale=scale2, size=(hidden, dimensions))
        self.b2 = np.zeros(dimensions)

    # --------------------------------------------------------------- forward
    def forward_features(self, features: np.ndarray) -> np.ndarray:
        """Embed a batch (or single vector) of value features."""
        features = np.atleast_2d(np.asarray(features, dtype=float))
        hidden = np.tanh(features @ self.W1 + self.b1)
        output = np.tanh(hidden @ self.W2 + self.b2)
        return output

    def forward(self, value: Any) -> np.ndarray:
        """Embed a single cell value."""
        return self.forward_features(featurize_value(value, self.fine_grained_type))[0]

    def embed_values(self, values: Sequence[Any]) -> np.ndarray:
        """Average embedding of a sequence of values (a column sample)."""
        if not values:
            return np.zeros(self.dimensions)
        features = np.vstack(
            [featurize_value(value, self.fine_grained_type) for value in values]
        )
        return self.forward_features(features).mean(axis=0)

    # ------------------------------------------------------------- training
    def pair_probability(self, features_a: np.ndarray, features_b: np.ndarray) -> float:
        """Predicted probability that two value-feature sets are similar columns."""
        embedding_a = self.forward_features(features_a).mean(axis=0)
        embedding_b = self.forward_features(features_b).mean(axis=0)
        return cosine_similarity(embedding_a, embedding_b)


class ColRModelSet:
    """The family ``H_{theta, T}``: one CoLR model per fine-grained type."""

    def __init__(self, dimensions: int = COLR_DIMENSIONS, hidden: int = 128):
        self.dimensions = dimensions
        self.models: Dict[str, ColRModel] = {
            type_name: ColRModel(type_name, dimensions=dimensions, hidden=hidden)
            for type_name in COLR_TYPES
        }

    @classmethod
    def pretrained(cls, dimensions: int = COLR_DIMENSIONS) -> "ColRModelSet":
        """The deterministic pre-trained model set shipped with the platform."""
        return cls(dimensions=dimensions)

    def model_for(self, fine_grained_type: str) -> ColRModel:
        """The model for a fine-grained type (generic string model as fallback)."""
        return self.models.get(fine_grained_type, self.models["string"])

    def embed_column_values(
        self, values: Sequence[Any], fine_grained_type: str
    ) -> np.ndarray:
        """Column embedding: average CoLR over the (sampled) values."""
        return self.model_for(fine_grained_type).embed_values(list(values))

    def table_embedding(
        self, column_embeddings: Iterable, column_types: Iterable[str]
    ) -> np.ndarray:
        """Table embedding per Eq. (1): concatenation of per-type averages.

        ``column_embeddings`` and ``column_types`` are parallel sequences; the
        result has ``len(COLR_TYPES) * dimensions`` entries (1800 by default),
        with zeros for types absent from the table.
        """
        per_type: Dict[str, List[np.ndarray]] = {t: [] for t in COLR_TYPES}
        for embedding, type_name in zip(column_embeddings, column_types):
            if type_name in per_type:
                per_type[type_name].append(np.asarray(embedding, dtype=float))
        parts = []
        for type_name in COLR_TYPES:
            embeddings = per_type[type_name]
            if embeddings:
                parts.append(np.mean(embeddings, axis=0))
            else:
                parts.append(np.zeros(self.dimensions))
        return np.concatenate(parts)

    def dataset_embedding(self, table_embeddings: Sequence[np.ndarray]) -> np.ndarray:
        """Dataset embedding: the mean of its table embeddings."""
        if not len(table_embeddings):
            return np.zeros(self.dimensions * len(COLR_TYPES))
        return np.mean(np.vstack(table_embeddings), axis=0)


class CoarseGrainedModelSet(ColRModelSet):
    """The coarse-grained ablation baseline of Figure 6.

    Inspired by Mueller & Smola's three-model design, it keeps only three
    embedding models — numeric, string and "other" — so columns of different
    fine-grained types are embedded (and therefore compared) together.
    """

    _COARSE_MAP = {
        "int": "numeric",
        "float": "numeric",
        "date": "other",
        "named_entity": "string",
        "natural_language": "string",
        "string": "string",
        "boolean": "other",
    }

    def __init__(self, dimensions: int = COLR_DIMENSIONS, hidden: int = 128):
        self.dimensions = dimensions
        self.models = {
            "numeric": ColRModel("float", dimensions=dimensions, hidden=hidden, seed=101),
            "string": ColRModel("string", dimensions=dimensions, hidden=hidden, seed=102),
            "other": ColRModel("string", dimensions=dimensions, hidden=hidden, seed=103),
        }

    def model_for(self, fine_grained_type: str) -> ColRModel:
        coarse = self._COARSE_MAP.get(fine_grained_type, "string")
        return self.models[coarse]

    def coarse_type(self, fine_grained_type: str) -> str:
        """The coarse group a fine-grained type falls into."""
        return self._COARSE_MAP.get(fine_grained_type, "string")
