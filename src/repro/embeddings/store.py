"""The embedding store: maps LiDS-graph node URIs to vectors with ANN search."""

from __future__ import annotations

import json
from contextlib import contextmanager
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.embeddings.index import FlatIndex

PathLike = Union[str, Path]


class EmbeddingStore:
    """Stores embeddings of columns, tables and datasets keyed by node URI.

    This is the Faiss-backed component of KGLiDS Storage: the profiler writes
    CoLR embeddings into it and the interfaces query it for nearest-neighbour
    lookups (e.g. finding the LiDS table most similar to a user DataFrame).
    Separate namespaces keep column, table and dataset vectors (of different
    dimensionality) apart.
    """

    def __init__(self):
        self._vectors: Dict[str, Dict[str, np.ndarray]] = {}
        self._indexes: Dict[str, FlatIndex] = {}
        #: The graph store's readers-writer gate, when governed (see
        #: :meth:`attach_gate`); ``None`` leaves the store unsynchronized.
        self._gate = None
        #: Monotonic mutation counter (recommenders key caches on this).
        self._version = 0
        #: Open batch's undo log: ``(namespace, key, previous_vector|None)``.
        self._undo: Optional[List[Tuple[str, str, Optional[np.ndarray]]]] = None
        self._version_mark = 0

    # ------------------------------------------------------- gate / versioning
    def attach_gate(self, gate) -> None:
        """Share the graph store's :class:`ReadWriteGate`.

        Once attached, every mutation takes the write side and every lookup
        the read side — so an embedding batch applied inside the governor's
        ``write_batch`` (whose thread already holds the gate; acquisition is
        reentrant) is invisible to recommender threads until the whole batch
        commits, exactly like the quads it describes.
        """
        self._gate = gate

    @property
    def version(self) -> int:
        """Bumps on every mutation; rolled back with an aborted batch."""
        return self._version

    @contextmanager
    def _write_scope(self):
        gate = self._gate
        if gate is None:
            yield
            return
        gate.acquire_write()
        try:
            yield
        finally:
            gate.release_write()

    @contextmanager
    def _read_scope(self):
        gate = self._gate
        if gate is None:
            yield
            return
        gate.acquire_read()
        try:
            yield
        finally:
            gate.release_read()

    # ------------------------------------------------------------ transactions
    @property
    def in_batch(self) -> bool:
        """Whether an undo-recording batch is currently open."""
        return self._undo is not None

    def begin_batch(self) -> None:
        """Start recording undo entries (caller holds the write gate)."""
        self._undo = []
        self._version_mark = self._version

    def commit_batch(self) -> None:
        self._undo = None

    def rollback_batch(self) -> None:
        """Restore every key the aborted batch touched to its prior vector."""
        undo, self._undo = self._undo, None
        if undo is None:
            return
        for namespace, key, previous in reversed(undo):
            if previous is None:
                self._delete(namespace, key)
            else:
                self._insert(namespace, key, previous)
        self._version = self._version_mark

    def _record(self, namespace: str, key: str) -> None:
        if self._undo is not None:
            previous = self._vectors.get(namespace, {}).get(key)
            self._undo.append((namespace, key, previous))

    # ------------------------------------------------------------------- API
    def put(self, namespace: str, key: str, vector: np.ndarray) -> None:
        """Store a vector for ``key`` in ``namespace`` (e.g. ``"column"``).

        Overwrites are O(1) amortized: the flat index replaces the key's row
        in place instead of being rebuilt.
        """
        vector = np.asarray(vector, dtype=float).ravel()
        with self._write_scope():
            self._record(namespace, key)
            self._insert(namespace, key, vector)

    def put_many(
        self, namespace: str, items: Sequence[Tuple[str, np.ndarray]]
    ) -> None:
        """Store a batch of ``(key, vector)`` pairs in one namespace.

        The flat index ingests the whole batch at once (one normalization
        pass, one matrix invalidation) instead of being re-touched per row —
        this is the bulk-ingestion path the governor uses when registering a
        freshly profiled lake.
        """
        if not items:
            return
        items = [(key, np.asarray(vector, dtype=float).ravel()) for key, vector in items]
        with self._write_scope():
            bucket = self._vectors.setdefault(namespace, {})
            for key, vector in items:
                self._record(namespace, key)
                bucket[key] = vector
            if namespace not in self._indexes:
                self._indexes[namespace] = FlatIndex(items[0][1].shape[0])
            self._indexes[namespace].add_many(items)
            self._version += 1

    def remove(self, namespace: str, key: str) -> bool:
        """Delete a stored vector and its index row (``False`` if absent).

        The retraction primitive used by table refresh: stale column / table
        vectors must leave the ANN index, not merely be overwritten.
        """
        with self._write_scope():
            bucket = self._vectors.get(namespace)
            if bucket is None or key not in bucket:
                return False
            self._record(namespace, key)
            self._delete(namespace, key)
            return True

    # -------------------------------------------------- unrecorded primitives
    def _insert(self, namespace: str, key: str, vector: np.ndarray) -> None:
        bucket = self._vectors.setdefault(namespace, {})
        bucket[key] = vector
        if namespace not in self._indexes:
            self._indexes[namespace] = FlatIndex(vector.shape[0])
        self._indexes[namespace].add(key, vector)
        self._version += 1

    def _delete(self, namespace: str, key: str) -> None:
        bucket = self._vectors.get(namespace)
        if bucket is not None:
            bucket.pop(key, None)
            if not bucket:
                # Prune emptied namespaces so a rolled-back batch leaves no
                # trace (an empty bucket is indistinguishable from an absent
                # one for every read, but not for state comparisons).
                del self._vectors[namespace]
                self._indexes.pop(namespace, None)
                self._version += 1
                return
        index = self._indexes.get(namespace)
        if index is not None:
            index.remove(key)
        self._version += 1

    def get(self, namespace: str, key: str) -> Optional[np.ndarray]:
        """Fetch a stored vector (``None`` if absent)."""
        with self._read_scope():
            return self._vectors.get(namespace, {}).get(key)

    def keys(self, namespace: str) -> List[str]:
        """All keys stored in a namespace."""
        with self._read_scope():
            return list(self._vectors.get(namespace, {}).keys())

    def search(
        self, namespace: str, query: np.ndarray, k: int = 10
    ) -> List[Tuple[str, float]]:
        """Top-k most similar stored vectors to the query (cosine)."""
        with self._read_scope():
            index = self._indexes.get(namespace)
            if index is None:
                return []
            return index.search(query, k=k)

    def count(self, namespace: Optional[str] = None) -> int:
        """Number of stored vectors, optionally per namespace."""
        if namespace is not None:
            return len(self._vectors.get(namespace, {}))
        return sum(len(bucket) for bucket in self._vectors.values())

    def estimated_size_bytes(self) -> int:
        """Rough memory footprint of all stored vectors."""
        return sum(
            vector.size * 8
            for bucket in self._vectors.values()
            for vector in bucket.values()
        )

    # ------------------------------------------------------------ persistence
    def save(self, path: PathLike) -> Path:
        """Write the store to one ``.npz`` file (per-namespace matrices).

        Keys go into a JSON manifest embedded in the archive (npz member
        names cannot carry arbitrary URI characters); vectors are stacked
        into one matrix per namespace.  :meth:`load` is the exact inverse —
        vectors round-trip at full float precision and the ANN indexes are
        rebuilt on load.
        """
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        arrays: Dict[str, np.ndarray] = {}
        manifest: List[Dict[str, object]] = []
        for position, namespace in enumerate(sorted(self._vectors)):
            bucket = self._vectors[namespace]
            keys = list(bucket.keys())
            manifest.append({"namespace": namespace, "keys": keys})
            if keys:
                arrays[f"vectors_{position}"] = np.stack([bucket[key] for key in keys])
        arrays["manifest"] = np.frombuffer(
            json.dumps(manifest).encode("utf-8"), dtype=np.uint8
        )
        with path.open("wb") as handle:
            np.savez_compressed(handle, **arrays)
        return path

    @classmethod
    def load(cls, path: PathLike) -> "EmbeddingStore":
        """Rebuild a store (vectors + ANN indexes) from a :meth:`save` file."""
        store = cls()
        with np.load(Path(path)) as data:
            manifest = json.loads(data["manifest"].tobytes().decode("utf-8"))
            for position, entry in enumerate(manifest):
                name = f"vectors_{position}"
                if name not in data:
                    continue
                matrix = data[name]
                store.put_many(
                    str(entry["namespace"]),
                    list(zip(entry["keys"], matrix)),
                )
        return store
