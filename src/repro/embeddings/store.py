"""The embedding store: maps LiDS-graph node URIs to vectors with ANN search."""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.embeddings.index import FlatIndex

PathLike = Union[str, Path]


class EmbeddingStore:
    """Stores embeddings of columns, tables and datasets keyed by node URI.

    This is the Faiss-backed component of KGLiDS Storage: the profiler writes
    CoLR embeddings into it and the interfaces query it for nearest-neighbour
    lookups (e.g. finding the LiDS table most similar to a user DataFrame).
    Separate namespaces keep column, table and dataset vectors (of different
    dimensionality) apart.
    """

    def __init__(self):
        self._vectors: Dict[str, Dict[str, np.ndarray]] = {}
        self._indexes: Dict[str, FlatIndex] = {}

    # ------------------------------------------------------------------- API
    def put(self, namespace: str, key: str, vector: np.ndarray) -> None:
        """Store a vector for ``key`` in ``namespace`` (e.g. ``"column"``).

        Overwrites are O(1) amortized: the flat index replaces the key's row
        in place instead of being rebuilt.
        """
        vector = np.asarray(vector, dtype=float).ravel()
        bucket = self._vectors.setdefault(namespace, {})
        bucket[key] = vector
        if namespace not in self._indexes:
            self._indexes[namespace] = FlatIndex(vector.shape[0])
        self._indexes[namespace].add(key, vector)

    def put_many(
        self, namespace: str, items: Sequence[Tuple[str, np.ndarray]]
    ) -> None:
        """Store a batch of ``(key, vector)`` pairs in one namespace.

        The flat index ingests the whole batch at once (one normalization
        pass, one matrix invalidation) instead of being re-touched per row —
        this is the bulk-ingestion path the governor uses when registering a
        freshly profiled lake.
        """
        if not items:
            return
        items = [(key, np.asarray(vector, dtype=float).ravel()) for key, vector in items]
        bucket = self._vectors.setdefault(namespace, {})
        for key, vector in items:
            bucket[key] = vector
        if namespace not in self._indexes:
            self._indexes[namespace] = FlatIndex(items[0][1].shape[0])
        self._indexes[namespace].add_many(items)

    def remove(self, namespace: str, key: str) -> bool:
        """Delete a stored vector and its index row (``False`` if absent).

        The retraction primitive used by table refresh: stale column / table
        vectors must leave the ANN index, not merely be overwritten.
        """
        bucket = self._vectors.get(namespace)
        if bucket is None or key not in bucket:
            return False
        del bucket[key]
        index = self._indexes.get(namespace)
        if index is not None:
            index.remove(key)
        return True

    def get(self, namespace: str, key: str) -> Optional[np.ndarray]:
        """Fetch a stored vector (``None`` if absent)."""
        return self._vectors.get(namespace, {}).get(key)

    def keys(self, namespace: str) -> List[str]:
        """All keys stored in a namespace."""
        return list(self._vectors.get(namespace, {}).keys())

    def search(
        self, namespace: str, query: np.ndarray, k: int = 10
    ) -> List[Tuple[str, float]]:
        """Top-k most similar stored vectors to the query (cosine)."""
        index = self._indexes.get(namespace)
        if index is None:
            return []
        return index.search(query, k=k)

    def count(self, namespace: Optional[str] = None) -> int:
        """Number of stored vectors, optionally per namespace."""
        if namespace is not None:
            return len(self._vectors.get(namespace, {}))
        return sum(len(bucket) for bucket in self._vectors.values())

    def estimated_size_bytes(self) -> int:
        """Rough memory footprint of all stored vectors."""
        return sum(
            vector.size * 8
            for bucket in self._vectors.values()
            for vector in bucket.values()
        )

    # ------------------------------------------------------------ persistence
    def save(self, path: PathLike) -> Path:
        """Write the store to one ``.npz`` file (per-namespace matrices).

        Keys go into a JSON manifest embedded in the archive (npz member
        names cannot carry arbitrary URI characters); vectors are stacked
        into one matrix per namespace.  :meth:`load` is the exact inverse —
        vectors round-trip at full float precision and the ANN indexes are
        rebuilt on load.
        """
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        arrays: Dict[str, np.ndarray] = {}
        manifest: List[Dict[str, object]] = []
        for position, namespace in enumerate(sorted(self._vectors)):
            bucket = self._vectors[namespace]
            keys = list(bucket.keys())
            manifest.append({"namespace": namespace, "keys": keys})
            if keys:
                arrays[f"vectors_{position}"] = np.stack([bucket[key] for key in keys])
        arrays["manifest"] = np.frombuffer(
            json.dumps(manifest).encode("utf-8"), dtype=np.uint8
        )
        with path.open("wb") as handle:
            np.savez_compressed(handle, **arrays)
        return path

    @classmethod
    def load(cls, path: PathLike) -> "EmbeddingStore":
        """Rebuild a store (vectors + ANN indexes) from a :meth:`save` file."""
        store = cls()
        with np.load(Path(path)) as data:
            manifest = json.loads(data["manifest"].tobytes().decode("utf-8"))
            for position, entry in enumerate(manifest):
                name = f"vectors_{position}"
                if name not in data:
                    continue
                matrix = data[name]
                store.put_many(
                    str(entry["namespace"]),
                    list(zip(entry["keys"], matrix)),
                )
        return store
