"""The embedding store: maps LiDS-graph node URIs to vectors with ANN search."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.embeddings.index import FlatIndex


class EmbeddingStore:
    """Stores embeddings of columns, tables and datasets keyed by node URI.

    This is the Faiss-backed component of KGLiDS Storage: the profiler writes
    CoLR embeddings into it and the interfaces query it for nearest-neighbour
    lookups (e.g. finding the LiDS table most similar to a user DataFrame).
    Separate namespaces keep column, table and dataset vectors (of different
    dimensionality) apart.
    """

    def __init__(self):
        self._vectors: Dict[str, Dict[str, np.ndarray]] = {}
        self._indexes: Dict[str, FlatIndex] = {}

    # ------------------------------------------------------------------- API
    def put(self, namespace: str, key: str, vector: np.ndarray) -> None:
        """Store a vector for ``key`` in ``namespace`` (e.g. ``"column"``).

        Overwrites are O(1) amortized: the flat index replaces the key's row
        in place instead of being rebuilt.
        """
        vector = np.asarray(vector, dtype=float).ravel()
        bucket = self._vectors.setdefault(namespace, {})
        bucket[key] = vector
        if namespace not in self._indexes:
            self._indexes[namespace] = FlatIndex(vector.shape[0])
        self._indexes[namespace].add(key, vector)

    def put_many(
        self, namespace: str, items: Sequence[Tuple[str, np.ndarray]]
    ) -> None:
        """Store a batch of ``(key, vector)`` pairs in one namespace.

        The flat index ingests the whole batch at once (one normalization
        pass, one matrix invalidation) instead of being re-touched per row —
        this is the bulk-ingestion path the governor uses when registering a
        freshly profiled lake.
        """
        if not items:
            return
        items = [(key, np.asarray(vector, dtype=float).ravel()) for key, vector in items]
        bucket = self._vectors.setdefault(namespace, {})
        for key, vector in items:
            bucket[key] = vector
        if namespace not in self._indexes:
            self._indexes[namespace] = FlatIndex(items[0][1].shape[0])
        self._indexes[namespace].add_many(items)

    def get(self, namespace: str, key: str) -> Optional[np.ndarray]:
        """Fetch a stored vector (``None`` if absent)."""
        return self._vectors.get(namespace, {}).get(key)

    def keys(self, namespace: str) -> List[str]:
        """All keys stored in a namespace."""
        return list(self._vectors.get(namespace, {}).keys())

    def search(
        self, namespace: str, query: np.ndarray, k: int = 10
    ) -> List[Tuple[str, float]]:
        """Top-k most similar stored vectors to the query (cosine)."""
        index = self._indexes.get(namespace)
        if index is None:
            return []
        return index.search(query, k=k)

    def count(self, namespace: Optional[str] = None) -> int:
        """Number of stored vectors, optionally per namespace."""
        if namespace is not None:
            return len(self._vectors.get(namespace, {}))
        return sum(len(bucket) for bucket in self._vectors.values())

    def estimated_size_bytes(self) -> int:
        """Rough memory footprint of all stored vectors."""
        return sum(
            vector.size * 8
            for bucket in self._vectors.values()
            for vector in bucket.values()
        )
