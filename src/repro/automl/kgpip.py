"""The revised KGpip AutoML pipeline.

Given an unseen dataset (a :class:`~repro.tabular.Table` plus a target
column), the pipeline:

1. embeds the dataset and finds the most similar table in the LiDS graph;
2. queries the graph for the estimators used by the top-voted pipelines that
   read that table (classifier recommendation);
3. queries the graph for the hyperparameter values those pipelines passed to
   the recommended estimator (hyperparameter recommendation);
4. runs a budgeted random search over estimator configurations, seeded and
   pruned by the recommendations when ``use_lids_priors`` is enabled
   (``Pip_LiDS``) and completely uninformed otherwise (``Pip_G4C``, the
   GraphGen4Code-based baseline, whose graph lacks parameter names).

The F1 difference between the two configurations under the same budget is
what Figure 9 reports.
"""

from __future__ import annotations

import ast
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.automl.search_space import (
    ESTIMATOR_REGISTRY,
    default_estimator_names,
    instantiate_estimator,
    sample_configuration,
)
from repro.embeddings.colr import ColRModelSet
from repro.kg.ontology import LiDSOntology, library_uri
from repro.kg.storage import KGLiDSStorage
from repro.ml.model_selection import cross_val_f1
from repro.profiler.profile import DataProfiler
from repro.tabular import Table


@dataclass
class EstimatorRecommendation:
    """One recommended estimator with its supporting evidence."""

    estimator_name: str
    votes: int
    similarity: float
    hyperparameter_priors: Dict[str, Any] = field(default_factory=dict)


@dataclass
class AutoMLResult:
    """Outcome of one AutoML search."""

    best_estimator_name: str
    best_configuration: Dict[str, Any]
    best_score: float
    evaluations: int
    elapsed_seconds: float
    trace: List[Tuple[str, Dict[str, Any], float]] = field(default_factory=list)


class KGpipAutoML:
    """Classifier + hyperparameter recommendation and budgeted search."""

    def __init__(
        self,
        storage: KGLiDSStorage,
        profiler: Optional[DataProfiler] = None,
        colr_models: Optional[ColRModelSet] = None,
        use_lids_priors: bool = True,
        random_state: int = 0,
    ):
        self.storage = storage
        self.colr_models = colr_models or ColRModelSet.pretrained()
        self.profiler = profiler or DataProfiler(colr_models=self.colr_models)
        self.use_lids_priors = use_lids_priors
        self.random_state = random_state

    # --------------------------------------------------------- recommendation
    def most_similar_table(self, table: Table) -> Optional[Tuple[str, float]]:
        """URI and similarity of the LiDS table most similar to ``table``."""
        profile = self.profiler.profile_table(table)
        if profile.embedding is None:
            return None
        matches = self.storage.embeddings.search("table", profile.embedding, k=1)
        if not matches:
            return None
        return matches[0]

    def recommend_ml_models(
        self, table: Table, task: str = "classification", k: int = 5
    ) -> List[EstimatorRecommendation]:
        """Estimators used by top-voted pipelines of the most similar dataset."""
        match = self.most_similar_table(table)
        if match is None:
            return [
                EstimatorRecommendation(name, votes=0, similarity=0.0)
                for name in default_estimator_names()[:k]
            ]
        table_uri_str, similarity = match
        usage = self._estimator_usage_for_table(table_uri_str, task)
        if not usage:
            return [
                EstimatorRecommendation(name, votes=0, similarity=similarity)
                for name in default_estimator_names()[:k]
            ]
        recommendations = []
        for estimator_name, votes in sorted(usage.items(), key=lambda item: -item[1])[:k]:
            priors = (
                self.recommend_hyperparameters(estimator_name, table_uri_str)
                if self.use_lids_priors
                else {}
            )
            recommendations.append(
                EstimatorRecommendation(
                    estimator_name=estimator_name,
                    votes=votes,
                    similarity=similarity,
                    hyperparameter_priors=priors,
                )
            )
        return recommendations

    def _estimator_usage_for_table(self, table_uri_str: str, task: str) -> Dict[str, int]:
        """``{estimator name: accumulated votes}`` over pipelines reading the table."""
        ontology = LiDSOntology
        store = self.storage.graph
        usage: Dict[str, int] = {}
        for estimator_name in ESTIMATOR_REGISTRY:
            call_node = library_uri(estimator_name)
            for triple, graph in store.match(None, ontology.callsFunction, call_node):
                statement_node = triple.subject
                for pipeline_node in store.objects(statement_node, ontology.isPartOf, graph=graph):
                    reads = {str(node) for node in store.objects(pipeline_node, ontology.reads, graph=graph)}
                    if table_uri_str not in reads:
                        continue
                    votes = store.value(pipeline_node, ontology.hasVotes, graph=graph, default=0)
                    usage[estimator_name] = usage.get(estimator_name, 0) + int(votes or 0) + 1
        return usage

    def recommend_hyperparameters(
        self, estimator_name: str, table_uri_str: Optional[str] = None
    ) -> Dict[str, Any]:
        """Most common hyperparameter values recorded for the estimator.

        When ``table_uri_str`` is given, only pipelines reading that table are
        considered; otherwise all pipelines calling the estimator contribute.
        """
        ontology = LiDSOntology
        store = self.storage.graph
        call_node = library_uri(estimator_name)
        value_counts: Dict[str, Dict[str, int]] = {}
        for triple, graph in store.match(None, ontology.callsFunction, call_node):
            statement_node = triple.subject
            if table_uri_str is not None:
                pipelines = store.objects(statement_node, ontology.isPartOf, graph=graph)
                if not any(
                    table_uri_str in {str(n) for n in store.objects(p, ontology.reads, graph=graph)}
                    for p in pipelines
                ):
                    continue
            for parameter_node in store.objects(statement_node, ontology.hasParameter, graph=graph):
                name = store.value(parameter_node, ontology.hasName, graph=graph)
                value = store.value(parameter_node, ontology.hasParameterValue, graph=graph)
                if name is None or value is None:
                    continue
                bucket = value_counts.setdefault(str(name), {})
                bucket[str(value)] = bucket.get(str(value), 0) + 1
        priors: Dict[str, Any] = {}
        for name, counts in value_counts.items():
            best_value = max(counts.items(), key=lambda item: item[1])[0]
            priors[name] = self._parse_recorded_value(best_value)
        return priors

    @staticmethod
    def _parse_recorded_value(recorded: str) -> Any:
        try:
            return ast.literal_eval(recorded)
        except (ValueError, SyntaxError):
            return recorded

    # ----------------------------------------------------------------- search
    def search(
        self,
        table: Table,
        target: str,
        time_budget_seconds: float = 5.0,
        max_evaluations: int = 12,
        cv: int = 3,
    ) -> AutoMLResult:
        """Budgeted estimator + hyperparameter search on an unseen dataset.

        Candidate estimators come from :meth:`recommend_ml_models`; each
        evaluation samples a configuration (seeded by LiDS priors when
        enabled), trains it and scores it with cross-validated F1.  The search
        stops when the time budget or the evaluation budget is exhausted.
        """
        started = time.perf_counter()
        X, _ = table.to_feature_matrix(target=target)
        y = table.target_vector(target)
        recommendations = self.recommend_ml_models(table)
        rng = np.random.RandomState(self.random_state)
        best_name, best_configuration, best_score = "", {}, -1.0
        trace: List[Tuple[str, Dict[str, Any], float]] = []
        evaluations = 0
        candidate_cycle = recommendations or [
            EstimatorRecommendation(name, 0, 0.0) for name in default_estimator_names()
        ]
        while evaluations < max_evaluations:
            if time.perf_counter() - started > time_budget_seconds:
                break
            recommendation = candidate_cycle[evaluations % len(candidate_cycle)]
            priors = recommendation.hyperparameter_priors if self.use_lids_priors else None
            configuration = sample_configuration(
                recommendation.estimator_name, rng, priors=priors
            )
            try:
                estimator = instantiate_estimator(recommendation.estimator_name, configuration)
                score = cross_val_f1(estimator, X, y, cv=cv, random_state=self.random_state)
            except Exception:
                score = 0.0
            trace.append((recommendation.estimator_name, configuration, score))
            if score > best_score:
                best_name, best_configuration, best_score = (
                    recommendation.estimator_name,
                    configuration,
                    score,
                )
            evaluations += 1
        return AutoMLResult(
            best_estimator_name=best_name,
            best_configuration=best_configuration,
            best_score=max(best_score, 0.0),
            evaluations=evaluations,
            elapsed_seconds=time.perf_counter() - started,
            trace=trace,
        )
