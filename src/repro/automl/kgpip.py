"""The revised KGpip AutoML pipeline.

Given an unseen dataset (a :class:`~repro.tabular.Table` plus a target
column), the pipeline:

1. embeds the dataset and finds the most similar table in the LiDS graph;
2. queries the graph for the estimators used by the top-voted pipelines that
   read that table (classifier recommendation);
3. queries the graph for the hyperparameter values those pipelines passed to
   the recommended estimator (hyperparameter recommendation);
4. spends a budget searching pipeline space — by default with the
   :mod:`~repro.automl.evolution` subsystem (``strategy="evolution"``): a
   GOLEM-style evolutionary loop over DAG-shaped pipeline genomes whose
   initial population and variation operators are biased by the LiDS priors
   when ``use_lids_priors`` is enabled (``Pip_LiDS``) and uninformed
   otherwise (``Pip_G4C``, the GraphGen4Code baseline).  The original
   budgeted random search survives as ``strategy="random"``, now deduped by
   configuration hash and writing through the same fitness cache, so the
   two strategies are comparable at an equal evaluation budget.

The F1 difference between the two prior configurations under the same budget
is what Figure 9 reports.
"""

from __future__ import annotations

import ast
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.automl.evolution.evolve import EvolutionConfig, EvolutionarySearch
from repro.automl.evolution.fitness import FitnessCache, FitnessEvaluator
from repro.automl.evolution.genome import OPERATION_REGISTRY, PipelineGenome
from repro.automl.evolution.priors import PriorBook
from repro.automl.search_space import (
    ESTIMATOR_REGISTRY,
    default_estimator_names,
    sample_configuration,
)
from repro.embeddings.colr import ColRModelSet
from repro.kg.ontology import LiDSOntology, library_uri
from repro.kg.storage import KGLiDSStorage
from repro.parallel import JobExecutor
from repro.profiler.profile import DataProfiler
from repro.tabular import Table

#: Search strategies :meth:`KGpipAutoML.search` accepts.
SEARCH_STRATEGIES = ("evolution", "random")


@dataclass
class EstimatorRecommendation:
    """One recommended estimator with its supporting evidence."""

    estimator_name: str
    votes: int
    similarity: float
    hyperparameter_priors: Dict[str, Any] = field(default_factory=dict)


@dataclass
class AutoMLResult:
    """Outcome of one AutoML search (either strategy).

    ``evaluations`` counts actual pipeline fits (screens and fulls alike);
    ``evaluations_spent`` is the budget consumed in full-evaluation cost
    units, which is the number the two strategies are compared on.
    """

    best_estimator_name: str
    best_configuration: Dict[str, Any]
    best_score: float
    evaluations: int
    elapsed_seconds: float
    trace: List[Tuple[str, Dict[str, Any], float]] = field(default_factory=list)
    strategy: str = "random"
    #: Canonical descriptive id of the winning genome (evolution strategy).
    best_genome: Optional[str] = None
    evaluations_spent: float = 0.0
    #: Random strategy: samples skipped because their configuration hash was
    #: already attempted (they cost no budget).
    duplicate_samples: int = 0
    generations_run: int = 0
    stopped_because: str = ""
    cache_stats: Dict[str, int] = field(default_factory=dict)
    fidelity_stats: Dict[str, int] = field(default_factory=dict)
    operator_stats: Dict[str, Dict[str, float]] = field(default_factory=dict)


class KGpipAutoML:
    """Classifier + hyperparameter recommendation and budgeted search."""

    def __init__(
        self,
        storage: KGLiDSStorage,
        profiler: Optional[DataProfiler] = None,
        colr_models: Optional[ColRModelSet] = None,
        use_lids_priors: bool = True,
        random_state: int = 0,
        executor: Optional[JobExecutor] = None,
    ):
        self.storage = storage
        self.colr_models = colr_models or ColRModelSet.pretrained()
        self.profiler = profiler or DataProfiler(colr_models=self.colr_models)
        self.use_lids_priors = use_lids_priors
        self.random_state = random_state
        self.executor = executor or JobExecutor()

    # --------------------------------------------------------- recommendation
    def most_similar_table(self, table: Table) -> Optional[Tuple[str, float]]:
        """URI and similarity of the LiDS table most similar to ``table``."""
        profile = self.profiler.profile_table(table)
        if profile.embedding is None:
            return None
        matches = self.storage.embeddings.search("table", profile.embedding, k=1)
        if not matches:
            return None
        return matches[0]

    def recommend_ml_models(
        self, table: Table, task: str = "classification", k: int = 5
    ) -> List[EstimatorRecommendation]:
        """Estimators used by top-voted pipelines of the most similar dataset."""
        match = self.most_similar_table(table)
        if match is None:
            return [
                EstimatorRecommendation(name, votes=0, similarity=0.0)
                for name in default_estimator_names()[:k]
            ]
        table_uri_str, similarity = match
        usage = self._estimator_usage_for_table(table_uri_str, task)
        if not usage:
            return [
                EstimatorRecommendation(name, votes=0, similarity=similarity)
                for name in default_estimator_names()[:k]
            ]
        recommendations = []
        for estimator_name, votes in sorted(usage.items(), key=lambda item: -item[1])[:k]:
            priors = (
                self.recommend_hyperparameters(estimator_name, table_uri_str)
                if self.use_lids_priors
                else {}
            )
            recommendations.append(
                EstimatorRecommendation(
                    estimator_name=estimator_name,
                    votes=votes,
                    similarity=similarity,
                    hyperparameter_priors=priors,
                )
            )
        return recommendations

    def _estimator_usage_for_table(self, table_uri_str: str, task: str) -> Dict[str, int]:
        """``{estimator name: accumulated votes}`` over pipelines reading the table."""
        ontology = LiDSOntology
        store = self.storage.graph
        usage: Dict[str, int] = {}
        for estimator_name in ESTIMATOR_REGISTRY:
            call_node = library_uri(estimator_name)
            for triple, graph in store.match(None, ontology.callsFunction, call_node):
                statement_node = triple.subject
                for pipeline_node in store.objects(statement_node, ontology.isPartOf, graph=graph):
                    reads = {str(node) for node in store.objects(pipeline_node, ontology.reads, graph=graph)}
                    if table_uri_str not in reads:
                        continue
                    votes = store.value(pipeline_node, ontology.hasVotes, graph=graph, default=0)
                    usage[estimator_name] = usage.get(estimator_name, 0) + int(votes or 0) + 1
        return usage

    def recommend_hyperparameters(
        self, estimator_name: str, table_uri_str: Optional[str] = None
    ) -> Dict[str, Any]:
        """Most common hyperparameter values recorded for the estimator.

        When ``table_uri_str`` is given, only pipelines reading that table are
        considered; otherwise all pipelines calling the estimator contribute.
        """
        ontology = LiDSOntology
        store = self.storage.graph
        call_node = library_uri(estimator_name)
        value_counts: Dict[str, Dict[str, int]] = {}
        for triple, graph in store.match(None, ontology.callsFunction, call_node):
            statement_node = triple.subject
            if table_uri_str is not None:
                pipelines = store.objects(statement_node, ontology.isPartOf, graph=graph)
                if not any(
                    table_uri_str in {str(n) for n in store.objects(p, ontology.reads, graph=graph)}
                    for p in pipelines
                ):
                    continue
            for parameter_node in store.objects(statement_node, ontology.hasParameter, graph=graph):
                name = store.value(parameter_node, ontology.hasName, graph=graph)
                value = store.value(parameter_node, ontology.hasParameterValue, graph=graph)
                if name is None or value is None:
                    continue
                bucket = value_counts.setdefault(str(name), {})
                bucket[str(value)] = bucket.get(str(value), 0) + 1
        priors: Dict[str, Any] = {}
        for name, counts in value_counts.items():
            best_value = max(counts.items(), key=lambda item: item[1])[0]
            priors[name] = self._parse_recorded_value(best_value)
        return priors

    @staticmethod
    def _parse_recorded_value(recorded: str) -> Any:
        try:
            return ast.literal_eval(recorded)
        except (ValueError, SyntaxError):
            return recorded

    # ------------------------------------------------------------------ priors
    def prior_book(self, table: Optional[Table] = None) -> PriorBook:
        """The :class:`PriorBook` driving the evolutionary strategy.

        Corpus-wide operation/value weights are harvested by SPARQL from the
        storage; when a ``table`` is given, the table-similarity estimator
        recommendation (votes of pipelines reading the most similar dataset)
        is folded on top, so the book carries both the global and the
        dataset-local signal.  With ``use_lids_priors`` off this is the
        uniform book — the ``Pip_G4C`` baseline.
        """
        if not self.use_lids_priors:
            return PriorBook.uniform()
        book = PriorBook.from_client(self.storage)
        if table is None:
            return book
        for recommendation in self.recommend_ml_models(table):
            weights = book.operation_weights["estimator"]
            weights[recommendation.estimator_name] = (
                weights.get(recommendation.estimator_name, 1.0)
                + recommendation.votes
                + 1.0
            )
            spec = OPERATION_REGISTRY.get(recommendation.estimator_name)
            if spec is None:
                continue
            for name, value in recommendation.hyperparameter_priors.items():
                if name not in spec.params:
                    continue
                bucket = book.value_weights.setdefault(
                    (recommendation.estimator_name, name), {}
                )
                try:
                    bucket[value] = bucket.get(value, 0.0) + 2.0
                except TypeError:
                    continue
        return book

    # ----------------------------------------------------------------- search
    def search(
        self,
        table: Table,
        target: str,
        time_budget_seconds: Optional[float] = 5.0,
        max_evaluations: int = 12,
        cv: int = 3,
        strategy: str = "evolution",
        population_size: int = 8,
        generations: int = 16,
        cache: Optional[FitnessCache] = None,
    ) -> AutoMLResult:
        """Budgeted pipeline search on an unseen dataset.

        ``max_evaluations`` is the budget in full-evaluation cost units for
        *both* strategies (the evolutionary loop charges screens at their
        subsample fraction), so ``strategy="evolution"`` and
        ``strategy="random"`` results are directly comparable.  Pass a shared
        ``cache`` to let strategies reuse each other's paid-for scores.
        """
        if strategy not in SEARCH_STRATEGIES:
            raise ValueError(f"unknown search strategy {strategy!r}")
        started = time.perf_counter()
        X, _ = table.to_feature_matrix(target=target)
        y = table.target_vector(target)
        evaluator = FitnessEvaluator(
            X,
            y,
            cv=cv,
            random_state=self.random_state,
            executor=self.executor,
            cache=cache,
        )
        if strategy == "evolution":
            return self._search_evolution(
                table,
                evaluator,
                started,
                time_budget_seconds,
                max_evaluations,
                population_size,
                generations,
            )
        return self._search_random(
            table, evaluator, started, time_budget_seconds, max_evaluations
        )

    def _search_evolution(
        self,
        table: Table,
        evaluator: FitnessEvaluator,
        started: float,
        time_budget_seconds: Optional[float],
        max_evaluations: int,
        population_size: int,
        generations: int,
    ) -> AutoMLResult:
        book = self.prior_book(table)
        # Clamp the population so the budget affords the screen sweep plus
        # the promotion fulls — otherwise small budgets are consumed by
        # screens and the loop never scores a pipeline at full fidelity.
        reserve = min(evaluator.promote_top_k, max(1, max_evaluations // 2))
        affordable = int(
            (float(max_evaluations) - reserve) / evaluator.screen_cost + 1e-9
        )
        population_size = max(2, min(population_size, affordable))
        config = EvolutionConfig(
            population_size=population_size,
            generations=generations,
            max_evaluations=float(max_evaluations),
            time_budget_seconds=time_budget_seconds,
            seed=self.random_state,
        )
        search = EvolutionarySearch(evaluator, book, config)
        outcome = search.run()
        estimator_node = (
            outcome.best_genome.estimator_node if outcome.best_genome else None
        )
        return AutoMLResult(
            best_estimator_name=estimator_node.operation if estimator_node else "",
            best_configuration=dict(estimator_node.params) if estimator_node else {},
            best_score=max(outcome.best_score, 0.0),
            evaluations=(
                evaluator.stats.screen_evaluations + evaluator.stats.full_evaluations
            ),
            elapsed_seconds=time.perf_counter() - started,
            strategy="evolution",
            best_genome=(
                outcome.best_genome.descriptive_id if outcome.best_genome else None
            ),
            evaluations_spent=outcome.evaluations_spent,
            generations_run=outcome.generations_run,
            stopped_because=outcome.stopped_because,
            cache_stats=outcome.cache_stats,
            fidelity_stats=outcome.fidelity_stats,
            operator_stats=outcome.operator_stats,
        )

    def _search_random(
        self,
        table: Table,
        evaluator: FitnessEvaluator,
        started: float,
        time_budget_seconds: Optional[float],
        max_evaluations: int,
    ) -> AutoMLResult:
        """The budgeted random baseline, deduped by configuration hash.

        Every sample becomes a bare-estimator genome
        (:meth:`PipelineGenome.single_estimator`) evaluated through the same
        :class:`FitnessCache` as the evolutionary strategy; re-sampled
        configurations are skipped without consuming budget.
        """
        recommendations = self.recommend_ml_models(table)
        rng = np.random.RandomState(self.random_state)
        best_name, best_configuration, best_score = "", {}, -1.0
        best_genome: Optional[PipelineGenome] = None
        trace: List[Tuple[str, Dict[str, Any], float]] = []
        evaluations = 0
        duplicates = 0
        attempted: set = set()
        candidate_cycle = recommendations or [
            EstimatorRecommendation(name, 0, 0.0) for name in default_estimator_names()
        ]
        draws = 0
        max_draws = max_evaluations * 8  # bounded even when the space saturates
        while evaluations < max_evaluations and draws < max_draws:
            if (
                time_budget_seconds is not None
                and time.perf_counter() - started > time_budget_seconds
            ):
                break
            recommendation = candidate_cycle[draws % len(candidate_cycle)]
            draws += 1
            priors = recommendation.hyperparameter_priors if self.use_lids_priors else None
            configuration = sample_configuration(
                recommendation.estimator_name, rng, priors=priors
            )
            genome = PipelineGenome.single_estimator(
                recommendation.estimator_name, configuration
            )
            if genome.genome_hash in attempted:
                duplicates += 1
                continue
            attempted.add(genome.genome_hash)
            score = evaluator.evaluate_full(genome)
            trace.append((recommendation.estimator_name, configuration, score))
            if score > best_score:
                best_name, best_configuration, best_score = (
                    recommendation.estimator_name,
                    configuration,
                    score,
                )
                best_genome = genome
            evaluations += 1
        return AutoMLResult(
            best_estimator_name=best_name,
            best_configuration=best_configuration,
            best_score=max(best_score, 0.0),
            evaluations=evaluations,
            elapsed_seconds=time.perf_counter() - started,
            trace=trace,
            strategy="random",
            best_genome=best_genome.descriptive_id if best_genome else None,
            evaluations_spent=round(evaluator.spent, 4),
            duplicate_samples=duplicates,
            cache_stats=evaluator.cache.stats(),
            fidelity_stats=evaluator.stats.as_dict(),
        )
