"""DAG-shaped pipeline genomes for the evolutionary AutoML search.

A genome is a small directed acyclic graph of ML operations — imputation,
preprocessing (scaling), unary feature transforms and exactly one estimator —
rooted at a pseudo ``input`` node and sinking into the estimator.  Data flows
along the edges: a transformer node consumes the (column-wise concatenated)
outputs of its parents and emits a transformed matrix; the estimator trains
on the concatenation of its parents, so parallel transformer branches widen
the feature space.

Two ideas are borrowed from GOLEM's ``GraphDelegate``:

* every structural mutation goes through a method decorated with
  :func:`_resets_descriptive_id`, which invalidates the cached canonical
  identity — computing it is the expensive part, so it is memoized until the
  graph actually changes;
* the canonical identity (:attr:`PipelineGenome.descriptive_id`) is built
  recursively from the sink with *sorted* parent sub-identities, so two
  genomes that differ only in node insertion order or node ids hash
  identically.  :attr:`PipelineGenome.genome_hash` (sha256 of the descriptive
  id) keys the fitness cache.
"""

from __future__ import annotations

import copy
import hashlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.automl.search_space import ESTIMATOR_REGISTRY, HYPERPARAMETER_SPACES

#: The pseudo-node every genome draws its raw feature matrix from.
INPUT_NODE = "input"

#: Stage ordering along every path: imputation happens before scaling, which
#: happens before unary feature ops, which happen before the estimator.
STAGES: Tuple[str, ...] = ("imputation", "preprocessing", "feature", "estimator")
STAGE_ORDER: Dict[str, int] = {stage: index for index, stage in enumerate(STAGES)}

#: How many nodes of each stage one genome may carry.  Transformer stages
#: allow two nodes so the DAG can branch (e.g. scaled features concatenated
#: with a log-transformed copy); the estimator is always unique.
STAGE_CAPACITY: Dict[str, int] = {
    "imputation": 1,
    "preprocessing": 2,
    "feature": 2,
    "estimator": 1,
}

#: Hard cap on genome size (excluding the input pseudo-node).
MAX_NODES = 6


@dataclass(frozen=True)
class OperationSpec:
    """One operation the genome may carry: its stage and hyperparameter space.

    ``params`` maps each typed hyperparameter to its *ordered* candidate list;
    perturbation mutations step to neighbouring candidates, so the order is
    meaningful (numeric candidates are sorted ascending).
    """

    name: str
    stage: str
    params: Dict[str, Tuple[Any, ...]] = field(default_factory=dict)

    def default_params(self) -> Dict[str, Any]:
        return {key: candidates[0] for key, candidates in self.params.items()}


def _estimator_specs() -> Dict[str, OperationSpec]:
    specs = {}
    for name in ESTIMATOR_REGISTRY:
        space = HYPERPARAMETER_SPACES.get(name, {})
        specs[name] = OperationSpec(
            name=name,
            stage="estimator",
            params={key: tuple(candidates) for key, candidates in space.items()},
        )
    return specs


#: Every operation the search may place in a genome, keyed by the qualified
#: callable name recorded in the LiDS pipeline graph — the same names the
#: synthetic Kaggle corpus calls, so KG priors line up without translation.
OPERATION_REGISTRY: Dict[str, OperationSpec] = {
    "sklearn.impute.SimpleImputer": OperationSpec(
        "sklearn.impute.SimpleImputer",
        "imputation",
        {"strategy": ("mean", "median", "most_frequent")},
    ),
    "sklearn.impute.KNNImputer": OperationSpec(
        "sklearn.impute.KNNImputer", "imputation", {"n_neighbors": (2, 3, 5, 7)}
    ),
    "sklearn.impute.IterativeImputer": OperationSpec(
        "sklearn.impute.IterativeImputer", "imputation", {"max_iter": (2, 3, 5)}
    ),
    "sklearn.preprocessing.StandardScaler": OperationSpec(
        "sklearn.preprocessing.StandardScaler", "preprocessing"
    ),
    "sklearn.preprocessing.MinMaxScaler": OperationSpec(
        "sklearn.preprocessing.MinMaxScaler", "preprocessing"
    ),
    "sklearn.preprocessing.RobustScaler": OperationSpec(
        "sklearn.preprocessing.RobustScaler", "preprocessing"
    ),
    "numpy.log1p": OperationSpec("numpy.log1p", "feature"),
    "numpy.sqrt": OperationSpec("numpy.sqrt", "feature"),
    **_estimator_specs(),
}


def operations_for_stage(stage: str) -> List[str]:
    """Names of every registered operation of one stage (stable order)."""
    return [name for name, spec in OPERATION_REGISTRY.items() if spec.stage == stage]


def _resets_descriptive_id(method):
    """Invalidate the cached canonical id around any structural mutation.

    The GOLEM ``GraphDelegate`` pattern: the descriptive id is expensive to
    recompute and cheap to cache, so every mutating method funnels through
    this decorator instead of recomputing eagerly.
    """

    def wrapper(self, *args, **kwargs):
        self._descriptive_id = None
        return method(self, *args, **kwargs)

    wrapper.__name__ = method.__name__
    wrapper.__doc__ = method.__doc__
    return wrapper


@dataclass
class GenomeNode:
    """One operation instance in a genome: its name and concrete parameters."""

    node_id: str
    operation: str
    params: Dict[str, Any] = field(default_factory=dict)

    @property
    def spec(self) -> OperationSpec:
        return OPERATION_REGISTRY[self.operation]

    @property
    def stage(self) -> str:
        return self.spec.stage


class GenomeValidityError(ValueError):
    """Raised when a genome violates the pipeline-shape rules."""


class PipelineGenome:
    """A mutable DAG of ML operations with a canonical, cached identity."""

    def __init__(self):
        self.nodes: Dict[str, GenomeNode] = {}
        #: ``node_id -> ordered parent ids`` (parents may include ``input``).
        self.parents: Dict[str, List[str]] = {}
        self._counter = 0
        self._descriptive_id: Optional[str] = None

    # ------------------------------------------------------------- construction
    @_resets_descriptive_id
    def add_node(
        self,
        operation: str,
        params: Optional[Dict[str, Any]] = None,
        parents: Optional[Sequence[str]] = None,
    ) -> str:
        """Add one operation node; returns its id.

        ``parents`` defaults to the input pseudo-node.  Edges to children are
        wired separately via :meth:`connect`.
        """
        if operation not in OPERATION_REGISTRY:
            raise GenomeValidityError(f"unknown operation {operation!r}")
        node_id = f"n{self._counter}"
        self._counter += 1
        spec = OPERATION_REGISTRY[operation]
        merged = spec.default_params()
        merged.update(params or {})
        self.nodes[node_id] = GenomeNode(node_id, operation, merged)
        self.parents[node_id] = list(parents) if parents else [INPUT_NODE]
        return node_id

    @_resets_descriptive_id
    def connect(self, parent_id: str, child_id: str) -> None:
        """Add an edge; no-op when it already exists."""
        if parent_id not in self.parents and parent_id != INPUT_NODE:
            raise GenomeValidityError(f"unknown parent {parent_id!r}")
        if child_id not in self.parents:
            raise GenomeValidityError(f"unknown child {child_id!r}")
        if parent_id not in self.parents[child_id]:
            self.parents[child_id].append(parent_id)

    @_resets_descriptive_id
    def remove_node(self, node_id: str) -> None:
        """Remove a node, splicing its parents into its children.

        The single-reconnect rule of GOLEM's ``delete_node``: children inherit
        the removed node's parents so no branch is orphaned.
        """
        if node_id not in self.nodes:
            raise GenomeValidityError(f"unknown node {node_id!r}")
        removed_parents = self.parents.pop(node_id)
        self.nodes.pop(node_id)
        for child_id, child_parents in self.parents.items():
            if node_id in child_parents:
                child_parents.remove(node_id)
                for parent in removed_parents:
                    if parent not in child_parents:
                        child_parents.append(parent)

    @_resets_descriptive_id
    def replace_operation(
        self, node_id: str, operation: str, params: Optional[Dict[str, Any]] = None
    ) -> None:
        """Swap a node's operation for another of the *same* stage."""
        node = self.nodes[node_id]
        new_spec = OPERATION_REGISTRY[operation]
        if new_spec.stage != node.stage:
            raise GenomeValidityError(
                f"cannot replace {node.operation} ({node.stage}) with "
                f"{operation} ({new_spec.stage})"
            )
        merged = new_spec.default_params()
        merged.update(params or {})
        self.nodes[node_id] = GenomeNode(node_id, operation, merged)

    @_resets_descriptive_id
    def set_param(self, node_id: str, param: str, value: Any) -> None:
        """Set one typed hyperparameter of a node."""
        node = self.nodes[node_id]
        if param not in node.spec.params:
            raise GenomeValidityError(f"{node.operation} has no parameter {param!r}")
        node.params[param] = value

    # ------------------------------------------------------------------ queries
    @property
    def estimator_node(self) -> Optional[GenomeNode]:
        for node in self.nodes.values():
            if node.stage == "estimator":
                return node
        return None

    def children(self, node_id: str) -> List[str]:
        return [child for child, parents in self.parents.items() if node_id in parents]

    def nodes_of_stage(self, stage: str) -> List[GenomeNode]:
        return [node for node in self.nodes.values() if node.stage == stage]

    def topological_order(self) -> List[str]:
        """Node ids in dependency order (raises on cycles)."""
        order: List[str] = []
        state: Dict[str, int] = {}

        def visit(node_id: str) -> None:
            if node_id == INPUT_NODE or state.get(node_id) == 2:
                return
            if state.get(node_id) == 1:
                raise GenomeValidityError("genome contains a cycle")
            state[node_id] = 1
            for parent in self.parents[node_id]:
                visit(parent)
            state[node_id] = 2
            order.append(node_id)

        for node_id in sorted(self.nodes):
            visit(node_id)
        return order

    # ----------------------------------------------------------------- validity
    def validity_errors(self) -> List[str]:
        """Every rule the genome currently violates (empty = valid)."""
        errors: List[str] = []
        estimators = self.nodes_of_stage("estimator")
        if len(estimators) != 1:
            errors.append(f"expected exactly one estimator, found {len(estimators)}")
        if len(self.nodes) > MAX_NODES:
            errors.append(f"genome carries {len(self.nodes)} nodes (max {MAX_NODES})")
        for stage, capacity in STAGE_CAPACITY.items():
            count = len(self.nodes_of_stage(stage))
            if count > capacity:
                errors.append(f"stage {stage} carries {count} nodes (max {capacity})")
        try:
            self.topological_order()
        except GenomeValidityError as error:
            errors.append(str(error))
            return errors
        # Stage order must be monotone along every edge.
        for child_id, parent_ids in self.parents.items():
            child_stage = STAGE_ORDER[self.nodes[child_id].stage]
            for parent_id in parent_ids:
                if parent_id == INPUT_NODE:
                    continue
                if STAGE_ORDER[self.nodes[parent_id].stage] >= child_stage:
                    errors.append(
                        f"edge {parent_id}->{child_id} goes backwards in stage order"
                    )
        # The estimator is the unique sink; every other node must reach it.
        if estimators:
            sink = estimators[0].node_id
            if self.children(sink):
                errors.append("estimator must be the sink (it has children)")
            reaches_sink = {sink}
            changed = True
            while changed:
                changed = False
                for node_id in self.nodes:
                    if node_id in reaches_sink:
                        continue
                    if any(child in reaches_sink for child in self.children(node_id)):
                        reaches_sink.add(node_id)
                        changed = True
            for node_id in self.nodes:
                if node_id not in reaches_sink:
                    errors.append(f"node {node_id} never reaches the estimator")
        return errors

    def is_valid(self) -> bool:
        return not self.validity_errors()

    def validate(self) -> None:
        errors = self.validity_errors()
        if errors:
            raise GenomeValidityError("; ".join(errors))

    # ----------------------------------------------------------------- identity
    @property
    def descriptive_id(self) -> str:
        """Canonical, insertion-order-independent identity (GOLEM-style).

        Cached until the next structural mutation; node ids never appear in
        it, so structurally identical genomes built differently agree.
        """
        if self._descriptive_id is None:
            estimator = self.estimator_node
            if estimator is None:
                raise GenomeValidityError("genome has no estimator to root its id")
            memo: Dict[str, str] = {}
            self._descriptive_id = self._describe(estimator.node_id, memo)
        return self._descriptive_id

    def _describe(self, node_id: str, memo: Dict[str, str]) -> str:
        if node_id == INPUT_NODE:
            return INPUT_NODE
        if node_id in memo:
            return memo[node_id]
        node = self.nodes[node_id]
        parent_ids = sorted(self._describe(parent, memo) for parent in self.parents[node_id])
        params = ",".join(f"{key}={node.params[key]!r}" for key in sorted(node.params))
        description = f"({'|'.join(parent_ids)})->{node.operation}[{params}]"
        memo[node_id] = description
        return description

    @property
    def genome_hash(self) -> str:
        """sha256 of the descriptive id — the fitness-cache key."""
        return hashlib.sha256(self.descriptive_id.encode("utf-8")).hexdigest()

    # --------------------------------------------------------------- conversion
    def copy(self) -> "PipelineGenome":
        clone = PipelineGenome()
        clone.nodes = {
            node_id: GenomeNode(node_id, node.operation, copy.deepcopy(node.params))
            for node_id, node in self.nodes.items()
        }
        clone.parents = {node_id: list(parents) for node_id, parents in self.parents.items()}
        clone._counter = self._counter
        clone._descriptive_id = self._descriptive_id
        return clone

    def to_plan(self) -> Dict[str, Any]:
        """A plain-dict, picklable rendering executed by the fitness worker."""
        return {
            "nodes": {
                node_id: {"operation": node.operation, "params": dict(node.params)}
                for node_id, node in self.nodes.items()
            },
            "parents": {node_id: list(parents) for node_id, parents in self.parents.items()},
            "order": self.topological_order(),
        }

    @classmethod
    def from_plan(cls, plan: Dict[str, Any]) -> "PipelineGenome":
        genome = cls()
        for node_id, payload in plan["nodes"].items():
            genome.nodes[node_id] = GenomeNode(
                node_id, payload["operation"], dict(payload["params"])
            )
            genome.parents[node_id] = list(plan["parents"][node_id])
        numbers = [int(node_id[1:]) for node_id in genome.nodes if node_id[1:].isdigit()]
        genome._counter = max(numbers) + 1 if numbers else 0
        return genome

    @classmethod
    def single_estimator(
        cls, estimator_name: str, params: Optional[Dict[str, Any]] = None
    ) -> "PipelineGenome":
        """The degenerate genome the budgeted random search evaluates.

        Routing random-search samples through this constructor makes both
        strategies share one fitness cache: a random sample and an evolved
        bare-estimator genome with the same configuration hash identically.
        """
        genome = cls()
        genome.add_node(estimator_name, params=params, parents=[INPUT_NODE])
        return genome

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return f"PipelineGenome({self.descriptive_id})"
