"""Memoized, multi-fidelity, parallel fitness evaluation for pipeline genomes.

Fitness of a genome is the cross-validated F1 of its materialized pipeline.
Three mechanisms keep the evaluation budget honest at scale:

* **Memoization** — :class:`FitnessCache` keys scores by genome hash and
  fidelity, so structurally identical genomes (reached by different mutation
  paths, or re-sampled by the budgeted random search) are evaluated once.
* **Multi-fidelity screening** — new genomes are first scored on a
  deterministic stratified row subsample (the *screen* fidelity); only the
  top-k of each generation are promoted to the *full* fidelity
  ``cross_val_f1``.  Budget accounting charges a screen at the subsample
  fraction of a full evaluation.
* **Parallel fan-out** — per-genome evaluations are independent jobs mapped
  over a :class:`~repro.parallel.JobExecutor`; the feature matrix ships once
  per worker via the executor's initializer, and every job carries a seed
  derived from the genome hash so results are byte-identical across the
  ``serial`` / ``threads`` / ``processes`` backends.
"""

from __future__ import annotations

import hashlib
import warnings
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.automl.evolution.genome import INPUT_NODE, PipelineGenome
from repro.automl.search_space import instantiate_estimator
from repro.ml.impute import IterativeImputer, KNNImputer, SimpleImputer
from repro.ml.model_selection import DegenerateFoldWarning, cross_val_f1
from repro.ml.preprocessing import (
    MinMaxScaler,
    RobustScaler,
    StandardScaler,
    log_transform,
    sqrt_transform,
)
from repro.parallel import JobExecutor

#: Fidelity levels a score may have been computed at.
SCREEN, FULL = "screen", "full"

_TRANSFORMER_CLASSES = {
    "sklearn.impute.SimpleImputer": SimpleImputer,
    "sklearn.impute.KNNImputer": KNNImputer,
    "sklearn.impute.IterativeImputer": IterativeImputer,
    "sklearn.preprocessing.StandardScaler": StandardScaler,
    "sklearn.preprocessing.MinMaxScaler": MinMaxScaler,
    "sklearn.preprocessing.RobustScaler": RobustScaler,
}

_FEATURE_FUNCTIONS = {
    "numpy.log1p": log_transform,
    "numpy.sqrt": sqrt_transform,
}


def genome_seed(base_seed: int, genome_hash: str) -> int:
    """A per-genome RNG seed stable across processes and backends."""
    digest = hashlib.sha256(f"{base_seed}:{genome_hash}".encode("utf-8")).hexdigest()
    return int(digest[:8], 16) % (2**31 - 1)


def execute_plan(
    plan: Dict[str, Any], X: np.ndarray, y: Sequence, cv: int, seed: int
) -> float:
    """Train/score one genome plan with cross-validated F1.

    Transformer nodes run as a feature program: each consumes the column-wise
    concatenation of its parents' outputs (the raw matrix for ``input``) and
    emits a transformed matrix; the estimator trains on the concatenation of
    *its* parents.  Transformers here are stateless-enough (scalers/imputers
    fit on the fold's train split implicitly via cross_val's estimator clone)
    — the whole program is wrapped in one estimator-shaped object so
    ``cross_val_f1`` clones and refits it per fold without leakage.
    """
    pipeline = GenomePipeline(plan=plan, random_state=seed)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DegenerateFoldWarning)
        try:
            return float(cross_val_f1(pipeline, X, y, cv=cv, random_state=seed))
        except Exception:
            return 0.0


class GenomePipeline:
    """An estimator-shaped wrapper executing a genome plan.

    Implements the ``fit`` / ``predict`` / ``get_params`` surface that
    :func:`~repro.ml.model_selection.cross_val_score` needs (including
    ``clone`` via the kwargs-mirror convention of ``repro.ml.base``), so the
    whole DAG refits inside each fold.
    """

    def __init__(self, plan: Optional[Dict[str, Any]] = None, random_state: int = 0):
        self.plan = plan
        self.random_state = random_state
        self._fitted: Dict[str, Any] = {}
        self._estimator = None

    @classmethod
    def _param_names(cls) -> List[str]:
        return ["plan", "random_state"]

    def get_params(self) -> Dict[str, Any]:
        return {"plan": self.plan, "random_state": self.random_state}

    def set_params(self, **params: Any) -> "GenomePipeline":
        for key, value in params.items():
            setattr(self, key, value)
        return self

    def _node_input(self, node_id: str, outputs: Dict[str, np.ndarray], X: np.ndarray) -> np.ndarray:
        parts = [
            X if parent == INPUT_NODE else outputs[parent]
            for parent in self.plan["parents"][node_id]
        ]
        return parts[0] if len(parts) == 1 else np.hstack(parts)

    def fit(self, X, y) -> "GenomePipeline":
        X = np.asarray(X, dtype=float)
        self._fitted = {}
        self._estimator = None
        outputs: Dict[str, np.ndarray] = {}
        for node_id in self.plan["order"]:
            payload = self.plan["nodes"][node_id]
            operation, params = payload["operation"], payload["params"]
            matrix = self._node_input(node_id, outputs, X)
            if operation in _TRANSFORMER_CLASSES:
                transformer = _TRANSFORMER_CLASSES[operation](**params)
                outputs[node_id] = np.asarray(transformer.fit_transform(matrix), dtype=float)
                self._fitted[node_id] = transformer
            elif operation in _FEATURE_FUNCTIONS:
                outputs[node_id] = np.asarray(_FEATURE_FUNCTIONS[operation](matrix), dtype=float)
            else:
                configuration = dict(params)
                configuration.setdefault("random_state", self.random_state)
                self._estimator = instantiate_estimator(operation, configuration)
                self._estimator.fit(matrix, y)
        if self._estimator is None:
            raise ValueError("plan has no estimator node")
        return self

    def predict(self, X) -> np.ndarray:
        X = np.asarray(X, dtype=float)
        outputs: Dict[str, np.ndarray] = {}
        for node_id in self.plan["order"]:
            payload = self.plan["nodes"][node_id]
            operation = payload["operation"]
            matrix = self._node_input(node_id, outputs, X)
            if operation in _TRANSFORMER_CLASSES:
                outputs[node_id] = np.asarray(self._fitted[node_id].transform(matrix), dtype=float)
            elif operation in _FEATURE_FUNCTIONS:
                outputs[node_id] = np.asarray(_FEATURE_FUNCTIONS[operation](matrix), dtype=float)
            else:
                return self._estimator.predict(matrix)
        raise ValueError("plan has no estimator node")  # pragma: no cover


# ----------------------------------------------------------- worker machinery
#: Per-worker dataset state installed once by the executor's initializer
#: (loaded per process on the ``processes`` backend, once in-process on
#: ``serial`` / ``threads``) instead of shipping X/y with every job.
_WORKER_DATA: Dict[str, Any] = {}


def _install_worker_data(
    X: np.ndarray, y: np.ndarray, screen_rows: np.ndarray, cv: int, screen_cv: int
) -> None:
    _WORKER_DATA["X"] = X
    _WORKER_DATA["y"] = y
    _WORKER_DATA["screen_rows"] = screen_rows
    _WORKER_DATA["cv"] = cv
    _WORKER_DATA["screen_cv"] = screen_cv


def _evaluate_job(job: Tuple[Dict[str, Any], str, int]) -> float:
    """One fitness evaluation: ``(plan, fidelity, seed) -> score``."""
    plan, fidelity, seed = job
    X, y = _WORKER_DATA["X"], _WORKER_DATA["y"]
    if fidelity == SCREEN:
        rows = _WORKER_DATA["screen_rows"]
        return execute_plan(plan, X[rows], y[rows], cv=_WORKER_DATA["screen_cv"], seed=seed)
    return execute_plan(plan, X, y, cv=_WORKER_DATA["cv"], seed=seed)


# -------------------------------------------------------------------- caching
@dataclass
class FitnessCache:
    """Genome-hash-keyed score memo shared by every search strategy.

    ``hits``/``misses`` make cache effectiveness a first-class benchmark
    metric; the budgeted random search and the evolutionary loop both write
    through this cache, so a configuration either strategy has already paid
    for is never evaluated twice.
    """

    scores: Dict[Tuple[str, str], float] = field(default_factory=dict)
    hits: int = 0
    misses: int = 0

    def get(self, genome_hash: str, fidelity: str) -> Optional[float]:
        key = (genome_hash, fidelity)
        if key in self.scores:
            self.hits += 1
            return self.scores[key]
        return None

    def put(self, genome_hash: str, fidelity: str, score: float) -> None:
        self.scores[(genome_hash, fidelity)] = score
        self.misses += 1

    def best_full(self) -> Optional[Tuple[str, float]]:
        """``(genome_hash, score)`` of the best full-fidelity entry."""
        full = [
            (score, genome_hash)
            for (genome_hash, fidelity), score in self.scores.items()
            if fidelity == FULL
        ]
        if not full:
            return None
        score, genome_hash = max(full, key=lambda item: (item[0], item[1]))
        return genome_hash, score

    def stats(self) -> Dict[str, int]:
        return {"hits": self.hits, "misses": self.misses, "entries": len(self.scores)}


@dataclass
class FidelityStats:
    """Multi-fidelity accounting reported by the benchmark."""

    screen_evaluations: int = 0
    full_evaluations: int = 0
    promotions: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "screen_evaluations": self.screen_evaluations,
            "full_evaluations": self.full_evaluations,
            "promotions": self.promotions,
        }


class FitnessEvaluator:
    """Evaluates genome populations with screening, memoization and fan-out."""

    def __init__(
        self,
        X: np.ndarray,
        y: Sequence,
        cv: int = 3,
        random_state: int = 0,
        executor: Optional[JobExecutor] = None,
        cache: Optional[FitnessCache] = None,
        subsample: float = 0.4,
        min_screen_rows: int = 48,
        promote_top_k: int = 3,
        max_spend: Optional[float] = None,
    ):
        self.X = np.asarray(X, dtype=float)
        self.y = np.asarray(list(y))
        self.cv = cv
        self.screen_cv = min(cv, 2)
        self.random_state = random_state
        self.executor = executor or JobExecutor()
        self.cache = cache or FitnessCache()
        self.promote_top_k = promote_top_k
        self.stats = FidelityStats()
        self.screen_rows = self._screen_rows(subsample, min_screen_rows)
        #: Cost (in full-evaluation units) charged per screen evaluation.
        self.screen_cost = (
            len(self.screen_rows) / len(self.y) if len(self.y) else 1.0
        )
        self.spent = 0.0
        #: Hard spend ceiling in cost units: job fan-out is truncated so
        #: ``spent`` never exceeds it (the equal-budget guarantee against the
        #: random baseline).  ``None`` = unbounded.
        self.max_spend = max_spend

    def _screen_rows(self, subsample: float, min_rows: int) -> np.ndarray:
        """A deterministic stratified subsample shared by every screen eval."""
        n = len(self.y)
        take_total = min(n, max(min_rows, int(round(subsample * n))))
        rng = np.random.RandomState(self.random_state)
        selected: List[int] = []
        for label in np.unique(self.y):
            label_rows = np.where(self.y == label)[0]
            rng.shuffle(label_rows)
            take = max(2, int(round(take_total * len(label_rows) / n)))
            selected.extend(label_rows[:take].tolist())
        return np.sort(np.asarray(selected[:take_total], dtype=int))

    # ------------------------------------------------------------------ mapping
    def _map(self, jobs: List[Tuple[Dict[str, Any], str, int]]) -> List[float]:
        return self.executor.map(
            _evaluate_job,
            jobs,
            initializer=_install_worker_data,
            initargs=(self.X, self.y, self.screen_rows, self.cv, self.screen_cv),
            chunksize=1,
        )

    def _evaluate_at(self, genomes: List[PipelineGenome], fidelity: str) -> Dict[str, float]:
        """Evaluate the *uncached* genomes at one fidelity; returns hash->score."""
        scores: Dict[str, float] = {}
        pending: List[PipelineGenome] = []
        seen: set = set()
        for genome in genomes:
            genome_hash = genome.genome_hash
            if genome_hash in scores or genome_hash in seen:
                continue
            cached = self.cache.get(genome_hash, fidelity)
            if cached is not None:
                scores[genome_hash] = cached
            else:
                seen.add(genome_hash)
                pending.append(genome)
        if pending and self.max_spend is not None:
            # Truncate the fan-out so the spend ceiling is never overdrawn;
            # truncated genomes simply stay unscored this round.
            cost = self.screen_cost if fidelity == SCREEN else 1.0
            allowed = int(max(0.0, np.floor((self.max_spend - self.spent) / cost + 1e-9)))
            pending = pending[:allowed]
        if pending:
            jobs = [
                (
                    genome.to_plan(),
                    fidelity,
                    genome_seed(self.random_state, genome.genome_hash),
                )
                for genome in pending
            ]
            results = self._map(jobs)
            for genome, score in zip(pending, results):
                self.cache.put(genome.genome_hash, fidelity, float(score))
                scores[genome.genome_hash] = float(score)
                if fidelity == SCREEN:
                    self.stats.screen_evaluations += 1
                    self.spent += self.screen_cost
                else:
                    self.stats.full_evaluations += 1
                    self.spent += 1.0
        return scores

    def evaluate_population(self, genomes: List[PipelineGenome]) -> Dict[str, float]:
        """Screen every genome, promote the top-k to full fidelity.

        Returns ``genome_hash -> fitness`` where fitness is the full-fidelity
        score for promoted genomes and the screen score otherwise (successive
        -halving-style rung scores: comparable enough for selection, while
        the *best* genome is always tracked on full fidelity only).
        """
        screen_scores = self._evaluate_at(genomes, SCREEN)
        by_hash: Dict[str, PipelineGenome] = {g.genome_hash: g for g in genomes}
        ranked = sorted(
            screen_scores.items(), key=lambda item: (-item[1], item[0])
        )
        promoted_hashes = [genome_hash for genome_hash, _ in ranked[: self.promote_top_k]]
        promote = [by_hash[h] for h in promoted_hashes if h in by_hash]
        fresh = {
            g.genome_hash for g in promote if self.cache.get(g.genome_hash, FULL) is None
        }
        # get() above counts a hit per already-promoted genome; that is fair —
        # the memo really did save a full evaluation.
        full_scores = self._evaluate_at(promote, FULL)
        # Only promotions that actually ran count (the spend ceiling may have
        # truncated the tail of the promote list).
        self.stats.promotions += len(fresh & set(full_scores))
        fitness = dict(screen_scores)
        fitness.update(full_scores)
        return fitness

    def promote_screened(self, genomes: List[PipelineGenome]) -> Dict[str, float]:
        """Full-fidelity evaluation of already-screened genomes (budget mop-up).

        Counts as promotions only the genomes that actually ran (the spend
        ceiling may truncate the tail of the batch).
        """
        fresh = {
            g.genome_hash
            for g in genomes
            if (g.genome_hash, FULL) not in self.cache.scores
        }
        full_scores = self._evaluate_at(genomes, FULL)
        self.stats.promotions += len(fresh & set(full_scores))
        return full_scores

    def evaluate_full(self, genome: PipelineGenome) -> float:
        """One full-fidelity evaluation through the cache (random search path)."""
        return self._evaluate_at([genome], FULL).get(genome.genome_hash, 0.0)
