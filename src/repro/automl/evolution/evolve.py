"""The generational loop: tournament selection, elitism, budgets, stopping.

:class:`EvolutionarySearch` ties the subsystem together: a prior-seeded
initial population, offspring bred by the adaptive operator pool (mutation)
and stage-splice crossover, fitness from the memoized multi-fidelity
evaluator, and three stopping conditions — generation count, an evaluation
budget in *full-evaluation cost units* (so it is directly comparable with
the budgeted random search), and an optional wall-clock budget.

Determinism: the only RNG lives in this loop's thread and is seeded from
``EvolutionConfig.seed``; per-genome evaluation seeds are derived from
genome hashes (see :func:`~repro.automl.evolution.fitness.genome_seed`), so
the same seed yields byte-identical results on every executor backend.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.automl.evolution.fitness import FULL, SCREEN, FitnessEvaluator
from repro.automl.evolution.genome import PipelineGenome
from repro.automl.evolution.operators import (
    OperatorPool,
    apply_mutation,
    crossover_stage_splice,
)
from repro.automl.evolution.priors import PriorBook


@dataclass
class EvolutionConfig:
    """Knobs of the generational loop (defaults sized for small lakes)."""

    population_size: int = 12
    generations: int = 8
    tournament_size: int = 3
    elitism: int = 2
    crossover_rate: float = 0.3
    #: Budget in full-evaluation cost units (a screen costs its subsample
    #: fraction).  ``None`` = bounded by ``generations`` only.
    max_evaluations: Optional[float] = None
    time_budget_seconds: Optional[float] = None
    #: Stop after this many generations without a new best full-fidelity score.
    early_stopping_rounds: int = 4
    seed: int = 0


@dataclass
class EvolutionResult:
    """Outcome of one evolutionary run, with full search telemetry."""

    best_genome: Optional[PipelineGenome]
    best_score: float
    best_hash: Optional[str]
    generations_run: int
    stopped_because: str
    evaluations_spent: float
    history: List[Dict[str, Any]] = field(default_factory=list)
    cache_stats: Dict[str, int] = field(default_factory=dict)
    fidelity_stats: Dict[str, int] = field(default_factory=dict)
    operator_stats: Dict[str, Dict[str, float]] = field(default_factory=dict)


class EvolutionarySearch:
    """GOLEM-style evolutionary optimisation of pipeline genomes."""

    def __init__(
        self,
        evaluator: FitnessEvaluator,
        priors: Optional[PriorBook] = None,
        config: Optional[EvolutionConfig] = None,
        pool: Optional[OperatorPool] = None,
    ):
        self.evaluator = evaluator
        self.priors = priors or PriorBook.uniform()
        self.config = config or EvolutionConfig()
        self.pool = pool or OperatorPool()
        self.crossover_attempts = 0
        self.crossover_successes = 0
        #: Every genome ever seen, by hash — lets the result map the winning
        #: cache entry back to its genome.
        self.seen: Dict[str, PipelineGenome] = {}

    # ------------------------------------------------------------------- pieces
    def _fitness_of(self, fitness: Dict[str, float], genome: PipelineGenome) -> float:
        return fitness.get(genome.genome_hash, 0.0)

    def _tournament(
        self,
        population: List[PipelineGenome],
        fitness: Dict[str, float],
        rng: np.random.RandomState,
    ) -> PipelineGenome:
        picks = rng.randint(len(population), size=self.config.tournament_size)
        return max(
            (population[int(i)] for i in picks),
            key=lambda g: (self._fitness_of(fitness, g), g.genome_hash),
        )

    def _best(self) -> Tuple[Optional[str], float]:
        entry = self.evaluator.cache.best_full()
        if entry is None:
            return None, float("-inf")
        return entry

    def _record(self, genomes: List[PipelineGenome]) -> None:
        for genome in genomes:
            self.seen.setdefault(genome.genome_hash, genome)

    def _make_offspring(
        self,
        population: List[PipelineGenome],
        fitness: Dict[str, float],
        rng: np.random.RandomState,
    ) -> Tuple[List[PipelineGenome], List[Tuple[str, str, float]]]:
        """Breed the next population; returns it plus credit-assignment notes.

        Each note is ``(child_hash, operator_name, parent_fitness)`` — after
        the offspring are evaluated, an operator is rewarded when its child
        beat the parent it came from.
        """
        ranked = sorted(
            population,
            key=lambda g: (-self._fitness_of(fitness, g), g.genome_hash),
        )
        offspring: List[PipelineGenome] = []
        elite_hashes: set = set()
        for genome in ranked:
            if genome.genome_hash in elite_hashes:
                continue
            offspring.append(genome.copy())
            elite_hashes.add(genome.genome_hash)
            if len(offspring) >= self.config.elitism:
                break
        credits: List[Tuple[str, str, float]] = []
        while len(offspring) < self.config.population_size:
            if rng.rand() < self.config.crossover_rate:
                first = self._tournament(population, fitness, rng)
                second = self._tournament(population, fitness, rng)
                child = crossover_stage_splice(first, second, rng)
                if child is not None:
                    self.crossover_attempts += 1
                    parent_fitness = max(
                        self._fitness_of(fitness, first),
                        self._fitness_of(fitness, second),
                    )
                    credits.append((child.genome_hash, "crossover", parent_fitness))
                    offspring.append(child)
                    continue
            parent = self._tournament(population, fitness, rng)
            child, operator_name = apply_mutation(parent, rng, self.priors, self.pool)
            if child is None:
                # No operator applied — inject a fresh prior-sampled immigrant
                # instead of wasting the slot on a clone.
                child = self.priors.sample_genome(rng)
            else:
                credits.append(
                    (child.genome_hash, operator_name, self._fitness_of(fitness, parent))
                )
            offspring.append(child)
        return offspring, credits

    def _assign_credit(
        self, credits: List[Tuple[str, str, float]], fitness: Dict[str, float]
    ) -> None:
        for child_hash, operator_name, parent_fitness in credits:
            improved = fitness.get(child_hash, 0.0) > parent_fitness
            if operator_name == "crossover":
                self.crossover_successes += int(improved)
            else:
                self.pool.reward(operator_name, improved)

    def _spend_leftover_budget(self) -> None:
        """Promote best screened-only genomes with whatever budget remains.

        Fan-out truncation can strand a sub-generation remainder of the
        evaluation budget; spending it on full evaluations of the
        best-screened unpromoted genomes keeps the comparison with the
        random baseline honest — both strategies use the whole ceiling.
        """
        evaluator, config = self.evaluator, self.config
        remaining = config.max_evaluations - evaluator.spent
        if remaining < 1.0:
            return
        scores = evaluator.cache.scores
        candidates = sorted(
            (
                (score, genome_hash)
                for (genome_hash, fidelity), score in scores.items()
                if fidelity == SCREEN and (genome_hash, FULL) not in scores
            ),
            key=lambda item: (-item[0], item[1]),
        )
        promote = [
            self.seen[genome_hash]
            for _, genome_hash in candidates[: int(remaining + 1e-9)]
            if genome_hash in self.seen
        ]
        if promote:
            evaluator.promote_screened(promote)

    def _budget_left_for_generation(self, started: float) -> Optional[str]:
        """``None`` when another generation fits the budgets, else the reason.

        The hard no-overdraw guarantee lives in the evaluator
        (``max_spend`` truncates job fan-out); this check only skips
        generations that could not afford even a single screen evaluation.
        """
        config, evaluator = self.config, self.evaluator
        if config.max_evaluations is not None:
            if evaluator.spent + evaluator.screen_cost > config.max_evaluations:
                return "evaluation budget"
        if config.time_budget_seconds is not None:
            if time.monotonic() - started > config.time_budget_seconds:
                return "time budget"
        return None

    # --------------------------------------------------------------------- run
    def run(self) -> EvolutionResult:
        config = self.config
        rng = np.random.RandomState(config.seed)
        started = time.monotonic()
        stopped_because = "generations"
        if config.max_evaluations is not None:
            self.evaluator.max_spend = config.max_evaluations
        population = self.priors.sample_population(rng, config.population_size)
        self._record(population)
        fitness_now = self.evaluator.evaluate_population(population)
        history = [self._history_entry(0, population, fitness_now)]
        best_hash, best_score = self._best()
        stale = 0
        generations_run = 0
        for generation in range(1, config.generations + 1):
            reason = self._budget_left_for_generation(started)
            if reason is not None:
                stopped_because = reason
                break
            if stale >= config.early_stopping_rounds:
                stopped_because = "early stopping"
                break
            population, credits = self._make_offspring(population, fitness_now, rng)
            self._record(population)
            fitness_now = self.evaluator.evaluate_population(population)
            self._assign_credit(credits, fitness_now)
            generations_run = generation
            history.append(self._history_entry(generation, population, fitness_now))
            new_best_hash, new_best_score = self._best()
            if new_best_score > best_score:
                best_hash, best_score = new_best_hash, new_best_score
                stale = 0
            else:
                stale += 1
        if config.max_evaluations is not None:
            self._spend_leftover_budget()
        best_hash, best_score = self._best()
        best_genome = self.seen.get(best_hash) if best_hash else None
        operator_stats = self.pool.stats()
        operator_stats["crossover"] = {
            "attempts": self.crossover_attempts,
            "successes": self.crossover_successes,
            "rate": round(
                self.crossover_successes / self.crossover_attempts, 4
            )
            if self.crossover_attempts
            else 0.0,
            "probability": self.config.crossover_rate,
        }
        return EvolutionResult(
            best_genome=best_genome,
            best_score=best_score if best_hash else 0.0,
            best_hash=best_hash,
            generations_run=generations_run,
            stopped_because=stopped_because,
            evaluations_spent=round(self.evaluator.spent, 4),
            history=history,
            cache_stats=self.evaluator.cache.stats(),
            fidelity_stats=self.evaluator.stats.as_dict(),
            operator_stats=operator_stats,
        )

    def _history_entry(
        self,
        generation: int,
        population: List[PipelineGenome],
        fitness: Dict[str, float],
    ) -> Dict[str, Any]:
        scores = [self._fitness_of(fitness, genome) for genome in population]
        _, best_full_score = self._best()
        return {
            "generation": generation,
            "best_fitness": round(max(scores), 6) if scores else 0.0,
            "mean_fitness": round(float(np.mean(scores)), 6) if scores else 0.0,
            "best_full_score": round(best_full_score, 6)
            if best_full_score > float("-inf")
            else None,
            "unique_genomes": len({g.genome_hash for g in population}),
            "spent": round(self.evaluator.spent, 4),
        }
