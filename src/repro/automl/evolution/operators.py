"""Seeded variation operators over pipeline genomes, with adaptive selection.

Four mutations (add / remove / replace a node, perturb one hyperparameter)
and a stage-splice crossover.  Every operator is a pure function
``(genome, rng, priors) -> Optional[PipelineGenome]``: it works on a copy,
consults the :class:`~repro.automl.evolution.priors.PriorBook` for any
operation or hyperparameter draw, and returns ``None`` when it is not
applicable to the given genome (e.g. removing from a bare-estimator genome).
Returned offspring are always valid — operators validate before handing back.

Operator *selection* is adaptive, mirroring GOLEM's agent-driven mutation
choice: :class:`OperatorPool` keeps an exponentially smoothed success rate
per operator (success = the offspring improved on its parent) and draws the
next operator proportionally to ``floor + rate``, so productive operators
are favoured while unproductive ones keep a nonzero exploration floor.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.automl.evolution.genome import (
    INPUT_NODE,
    MAX_NODES,
    STAGE_CAPACITY,
    STAGE_ORDER,
    STAGES,
    GenomeValidityError,
    PipelineGenome,
    operations_for_stage,
)
from repro.automl.evolution.priors import PriorBook

MutationFn = Callable[[PipelineGenome, np.random.RandomState, PriorBook], Optional[PipelineGenome]]


def _stage_rank(genome: PipelineGenome, node_id: str) -> int:
    if node_id == INPUT_NODE:
        return -1
    return STAGE_ORDER[genome.nodes[node_id].stage]


def _edges(genome: PipelineGenome) -> List[Tuple[str, str]]:
    """Every ``(parent, child)`` edge, input pseudo-edges included."""
    return [
        (parent, child)
        for child, parents in sorted(genome.parents.items())
        for parent in parents
    ]


def mutate_add_node(
    genome: PipelineGenome, rng: np.random.RandomState, priors: PriorBook
) -> Optional[PipelineGenome]:
    """Insert one transformer node onto an existing edge.

    Picks a transformer stage with spare capacity, an edge the stage legally
    fits on, then either *splices* (the new node replaces the edge) or
    *branches* (the edge stays and the child additionally concatenates the
    new node's output).
    """
    open_stages = [
        stage
        for stage in STAGES[:-1]
        if len(genome.nodes_of_stage(stage)) < STAGE_CAPACITY[stage]
    ]
    if not open_stages or len(genome.nodes) >= MAX_NODES:
        return None
    rng.shuffle(open_stages)
    for stage in open_stages:
        rank = STAGE_ORDER[stage]
        slots = [
            (parent, child)
            for parent, child in _edges(genome)
            if _stage_rank(genome, parent) < rank < _stage_rank(genome, child)
        ]
        if not slots:
            continue
        parent, child = slots[rng.randint(len(slots))]
        operation = priors.choose_operation(rng, stage)
        offspring = genome.copy()
        node_id = offspring.add_node(
            operation, params=priors.sample_params(rng, operation), parents=[parent]
        )
        if rng.rand() < 0.5:  # splice: the new node takes over the edge
            offspring.parents[child].remove(parent)
            offspring._descriptive_id = None
        offspring.connect(node_id, child)
        if offspring.is_valid():
            return offspring
    return None


def mutate_remove_node(
    genome: PipelineGenome, rng: np.random.RandomState, priors: PriorBook
) -> Optional[PipelineGenome]:
    """Drop one transformer node, splicing its parents into its children."""
    candidates = sorted(
        node_id for node_id, node in genome.nodes.items() if node.stage != "estimator"
    )
    if not candidates:
        return None
    offspring = genome.copy()
    offspring.remove_node(candidates[rng.randint(len(candidates))])
    return offspring if offspring.is_valid() else None


def mutate_replace_node(
    genome: PipelineGenome, rng: np.random.RandomState, priors: PriorBook
) -> Optional[PipelineGenome]:
    """Swap one node's operation for a prior-weighted same-stage alternative."""
    candidates = sorted(
        node_id
        for node_id, node in genome.nodes.items()
        if len(operations_for_stage(node.stage)) > 1
    )
    if not candidates:
        return None
    node_id = candidates[rng.randint(len(candidates))]
    stage = genome.nodes[node_id].stage
    current = genome.nodes[node_id].operation
    for _ in range(8):
        operation = priors.choose_operation(rng, stage)
        if operation != current:
            break
    else:
        options = [name for name in operations_for_stage(stage) if name != current]
        operation = options[rng.randint(len(options))]
    offspring = genome.copy()
    offspring.replace_operation(
        node_id, operation, params=priors.sample_params(rng, operation)
    )
    return offspring if offspring.is_valid() else None


def mutate_perturb_param(
    genome: PipelineGenome, rng: np.random.RandomState, priors: PriorBook
) -> Optional[PipelineGenome]:
    """Step one typed hyperparameter to a neighbouring candidate value.

    Candidate lists are ordered (numerics ascending), so a ±1 step is a local
    move in hyperparameter space; values off the recorded grid snap to a
    uniform draw.
    """
    slots = [
        (node_id, param)
        for node_id, node in sorted(genome.nodes.items())
        for param, candidates in node.spec.params.items()
        if len(candidates) > 1
    ]
    if not slots:
        return None
    node_id, param = slots[rng.randint(len(slots))]
    node = genome.nodes[node_id]
    candidates = list(node.spec.params[param])
    current = node.params.get(param)
    if current in candidates:
        index = candidates.index(current)
        step = -1 if (index == len(candidates) - 1 or (index > 0 and rng.rand() < 0.5)) else 1
        value = candidates[index + step]
    else:
        value = priors.choose_param_value(rng, node.operation, param)
        if value == current:
            value = candidates[rng.randint(len(candidates))]
    if value == current:
        return None
    offspring = genome.copy()
    offspring.set_param(node_id, param, value)
    return offspring if offspring.is_valid() else None


def _stage_layers(genome: PipelineGenome) -> Dict[str, List[Tuple[str, Dict[str, Any]]]]:
    """The genome flattened to ``stage -> [(operation, params), ...]``."""
    layers: Dict[str, List[Tuple[str, Dict[str, Any]]]] = {stage: [] for stage in STAGES}
    for node_id in sorted(genome.nodes):
        node = genome.nodes[node_id]
        layers[node.stage].append((node.operation, dict(node.params)))
    return layers


def _rebuild_layered(layers: Dict[str, List[Tuple[str, Dict[str, Any]]]]) -> PipelineGenome:
    """A valid genome from stage layers: each layer feeds the next non-empty one."""
    genome = PipelineGenome()
    previous = [INPUT_NODE]
    for stage in STAGES:
        entries = layers.get(stage, [])
        if not entries:
            continue
        current = [
            genome.add_node(operation, params=params, parents=list(previous))
            for operation, params in entries
        ]
        previous = current
    return genome


def crossover_stage_splice(
    first: PipelineGenome,
    second: PipelineGenome,
    rng: np.random.RandomState,
) -> Optional[PipelineGenome]:
    """One-point crossover over the stage axis.

    Flattens both parents into stage layers, cuts at a random stage boundary,
    and rebuilds the offspring layered (each stage concatenating into the
    next), so the child is valid by construction: transformer prefix from one
    parent, estimator suffix from the other.
    """
    layers_a, layers_b = _stage_layers(first), _stage_layers(second)
    cut = 1 + rng.randint(len(STAGES) - 1)  # boundary in {1, 2, 3}
    child_layers = {
        stage: (layers_a if STAGE_ORDER[stage] < cut else layers_b)[stage]
        for stage in STAGES
    }
    offspring = _rebuild_layered(child_layers)
    try:
        offspring.validate()
    except GenomeValidityError:  # pragma: no cover - layered rebuild is valid
        return None
    return offspring


#: The mutation repertoire, in the order the pool reports it.
MUTATION_OPERATORS: List[Tuple[str, MutationFn]] = [
    ("add_node", mutate_add_node),
    ("remove_node", mutate_remove_node),
    ("replace_node", mutate_replace_node),
    ("perturb_param", mutate_perturb_param),
]


class OperatorPool:
    """Adaptive operator selection: smoothed success rates with a floor.

    ``reward(name, improved)`` folds each application's outcome into an
    exponentially smoothed success rate; ``select`` draws proportionally to
    ``floor + rate``.  The floor keeps every operator alive (a cold operator
    may become productive once the population shifts), the smoothing makes
    the pool track the *current* search phase rather than all of history.
    """

    def __init__(
        self,
        operators: Optional[List[Tuple[str, MutationFn]]] = None,
        smoothing: float = 0.25,
        floor: float = 0.1,
    ):
        self.operators = list(operators or MUTATION_OPERATORS)
        self.smoothing = smoothing
        self.floor = floor
        self.rates: Dict[str, float] = {name: 0.5 for name, _ in self.operators}
        self.attempts: Dict[str, int] = {name: 0 for name, _ in self.operators}
        self.successes: Dict[str, int] = {name: 0 for name, _ in self.operators}

    def selection_probabilities(self) -> Dict[str, float]:
        raw = {name: self.floor + self.rates[name] for name, _ in self.operators}
        total = sum(raw.values())
        return {name: weight / total for name, weight in raw.items()}

    def select(self, rng: np.random.RandomState) -> Tuple[str, MutationFn]:
        probabilities = self.selection_probabilities()
        names = [name for name, _ in self.operators]
        weights = np.array([probabilities[name] for name in names], dtype=float)
        index = int(rng.choice(len(names), p=weights))
        return self.operators[index]

    def reward(self, name: str, improved: bool) -> None:
        self.attempts[name] += 1
        if improved:
            self.successes[name] += 1
        self.rates[name] = (1 - self.smoothing) * self.rates[name] + self.smoothing * (
            1.0 if improved else 0.0
        )

    def stats(self) -> Dict[str, Dict[str, float]]:
        probabilities = self.selection_probabilities()
        return {
            name: {
                "attempts": self.attempts[name],
                "successes": self.successes[name],
                "rate": round(self.rates[name], 4),
                "probability": round(probabilities[name], 4),
            }
            for name, _ in self.operators
        }


def apply_mutation(
    genome: PipelineGenome,
    rng: np.random.RandomState,
    priors: PriorBook,
    pool: OperatorPool,
) -> Tuple[Optional[PipelineGenome], Optional[str]]:
    """Draw operators from the pool until one applies (bounded retries)."""
    for _ in range(4):
        name, operator = pool.select(rng)
        offspring = operator(genome, rng, priors)
        if offspring is not None:
            return offspring, name
    return None, None
