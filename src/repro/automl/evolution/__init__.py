"""Evolutionary pipeline-graph optimizer: GOLEM-style search with KG priors.

The subsystem decomposes into:

* :mod:`~repro.automl.evolution.genome` — DAG-shaped pipeline genomes with a
  canonical cached identity (``genome_hash``);
* :mod:`~repro.automl.evolution.operators` — seeded mutations and stage-splice
  crossover under an adaptive :class:`OperatorPool`;
* :mod:`~repro.automl.evolution.priors` — :class:`PriorBook` mined from the
  governed pipeline graph by SPARQL, seeding populations and biasing draws;
* :mod:`~repro.automl.evolution.fitness` — memoized, multi-fidelity, parallel
  fitness evaluation over :class:`~repro.parallel.JobExecutor`;
* :mod:`~repro.automl.evolution.evolve` — the generational loop with
  tournament selection, elitism, budgets and early stopping.
"""

from repro.automl.evolution.evolve import (
    EvolutionConfig,
    EvolutionResult,
    EvolutionarySearch,
)
from repro.automl.evolution.fitness import (
    FULL,
    SCREEN,
    FidelityStats,
    FitnessCache,
    FitnessEvaluator,
    GenomePipeline,
    genome_seed,
)
from repro.automl.evolution.genome import (
    INPUT_NODE,
    MAX_NODES,
    OPERATION_REGISTRY,
    STAGES,
    GenomeValidityError,
    OperationSpec,
    PipelineGenome,
    operations_for_stage,
)
from repro.automl.evolution.operators import (
    MUTATION_OPERATORS,
    OperatorPool,
    apply_mutation,
    crossover_stage_splice,
    mutate_add_node,
    mutate_perturb_param,
    mutate_remove_node,
    mutate_replace_node,
)
from repro.automl.evolution.priors import PriorBook

__all__ = [
    "EvolutionConfig",
    "EvolutionResult",
    "EvolutionarySearch",
    "FULL",
    "SCREEN",
    "FidelityStats",
    "FitnessCache",
    "FitnessEvaluator",
    "GenomePipeline",
    "genome_seed",
    "INPUT_NODE",
    "MAX_NODES",
    "OPERATION_REGISTRY",
    "STAGES",
    "GenomeValidityError",
    "OperationSpec",
    "PipelineGenome",
    "operations_for_stage",
    "MUTATION_OPERATORS",
    "OperatorPool",
    "apply_mutation",
    "crossover_stage_splice",
    "mutate_add_node",
    "mutate_perturb_param",
    "mutate_remove_node",
    "mutate_replace_node",
    "PriorBook",
]
