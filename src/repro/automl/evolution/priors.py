"""KG priors: seeding and biasing the evolutionary search from the LiDS graph.

The governed pipeline graph records, for every abstracted pipeline, which
functions its statements call (imputers, scalers, ``numpy`` feature ops,
estimators) and which hyperparameter name/value pairs those calls passed —
weighted by the pipeline's votes.  :class:`PriorBook` distils that into

* per-stage **operation weights** (how often experienced users reached for
  each imputer / scaler / transform / estimator),
* per-operation **hyperparameter value weights** (which concrete values they
  passed),

and uses them to sample the initial population and to bias the add / replace
/ perturb mutation operators.  Harvesting runs plain SPARQL through whatever
``.query(...)`` surface it is handed — a live :class:`~repro.interfaces.api.
LiDSClient`, a read-only client over a saved governor directory, a remote
replica client, or raw :class:`~repro.kg.storage.KGLiDSStorage` — so priors
work wherever the graph is served from.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.automl.evolution.genome import (
    INPUT_NODE,
    OPERATION_REGISTRY,
    STAGES,
    PipelineGenome,
    operations_for_stage,
)
from repro.kg.ontology import library_uri

#: Per-stage probability that a sampled genome includes that transformer
#: stage at all (the estimator stage is always present).
STAGE_INCLUSION = {"imputation": 0.5, "preprocessing": 0.7, "feature": 0.4}

#: Probability that a second, branching feature node is added when the
#: feature stage is present (this is what makes sampled genomes DAGs rather
#: than chains).
BRANCH_PROBABILITY = 0.25

_USAGE_QUERY = """
SELECT ?call (COUNT(?s) AS ?uses) WHERE {
  GRAPH ?g {
    ?s kglids:callsFunction ?call .
  }
}
GROUP BY ?call
"""

_VOTES_QUERY = """
SELECT ?call (SUM(?votes) AS ?votes) WHERE {
  GRAPH ?g {
    ?s kglids:callsFunction ?call .
    ?s kglids:isPartOf ?pipeline .
    ?pipeline kglids:hasVotes ?votes .
  }
}
GROUP BY ?call
"""

_PARAMETER_QUERY = """
SELECT ?call ?pname ?pvalue (COUNT(?s) AS ?uses) WHERE {
  GRAPH ?g {
    ?s kglids:callsFunction ?call .
    ?s kglids:hasParameter ?param .
    ?param kglids:hasName ?pname .
    ?param kglids:hasParameterValue ?pvalue .
  }
}
GROUP BY ?call ?pname ?pvalue
"""


def _result_rows(result: Any) -> List[Dict[str, Any]]:
    """Normalize a query result to ``list[dict]`` across client surfaces.

    ``KGLiDSStorage.query`` returns a ``SelectResult`` (``.rows``);
    ``LiDSClient.query`` returns a :class:`~repro.tabular.Table`.
    """
    if hasattr(result, "rows"):
        return list(result.rows)
    if hasattr(result, "row") and hasattr(result, "num_rows"):
        return [result.row(i) for i in range(result.num_rows)]
    return list(result)


def _plain(value: Any) -> Any:
    """A python value from a SPARQL binding (Literal / URIRef / plain)."""
    to_python = getattr(value, "to_python", None)
    if callable(to_python):
        return to_python()
    return value


def _parse_recorded_value(recorded: str) -> Any:
    try:
        return ast.literal_eval(recorded)
    except (ValueError, SyntaxError):
        return recorded


@dataclass
class PriorBook:
    """Operation and hyperparameter weights mined from the pipeline graph."""

    #: ``stage -> {operation name -> weight}`` (all registered operations
    #: present; unobserved operations keep a uniform floor weight).
    operation_weights: Dict[str, Dict[str, float]] = field(default_factory=dict)
    #: ``(operation, parameter) -> {recorded value -> weight}``.
    value_weights: Dict[Tuple[str, str], Dict[Any, float]] = field(default_factory=dict)
    #: Probability that a prior-guided draw consults the weights at all
    #: (the remainder stays uniform, preserving exploration).
    prior_probability: float = 0.6
    #: Whether any usage evidence was actually found in the graph.
    informed: bool = False

    # ------------------------------------------------------------ construction
    @classmethod
    def uniform(cls) -> "PriorBook":
        """The uninformed book: every registered operation equally likely."""
        book = cls()
        for stage in STAGES:
            names = operations_for_stage(stage)
            book.operation_weights[stage] = {name: 1.0 for name in names}
        return book

    @classmethod
    def from_client(
        cls, client: Any, prior_probability: float = 0.6
    ) -> "PriorBook":
        """Harvest priors by SPARQL from any ``.query(...)`` surface.

        Falls back to the uniform book when the graph holds no pipelines (or
        the queries fail — e.g. an empty storage without graphs).
        """
        book = cls.uniform()
        book.prior_probability = prior_probability
        uri_to_operation = {
            str(library_uri(name)): name for name in OPERATION_REGISTRY
        }
        try:
            usage_rows = _result_rows(client.query(_USAGE_QUERY))
            votes_rows = _result_rows(client.query(_VOTES_QUERY))
            parameter_rows = _result_rows(client.query(_PARAMETER_QUERY))
        except Exception:
            return book
        votes_by_call: Dict[str, float] = {}
        for row in votes_rows:
            call = str(row.get("call"))
            votes = _plain(row.get("votes"))
            if call in uri_to_operation and votes is not None:
                votes_by_call[call] = float(votes)
        observed = False
        for row in usage_rows:
            call = str(row.get("call"))
            operation = uri_to_operation.get(call)
            if operation is None:
                continue
            uses = float(_plain(row.get("uses")) or 0.0)
            if uses <= 0:
                continue
            observed = True
            stage = OPERATION_REGISTRY[operation].stage
            # Usage count plus vote mass: a rarely-used but highly-voted
            # estimator still earns prior weight, mirroring the KGpip
            # "top-voted pipelines" recommendation signal.
            weight = uses + 0.01 * votes_by_call.get(call, 0.0)
            book.operation_weights[stage][operation] = (
                book.operation_weights[stage].get(operation, 1.0) + weight
            )
        for row in parameter_rows:
            call = str(row.get("call"))
            operation = uri_to_operation.get(call)
            if operation is None:
                continue
            name = str(_plain(row.get("pname")))
            spec = OPERATION_REGISTRY[operation]
            if name not in spec.params:
                continue
            value = _parse_recorded_value(str(_plain(row.get("pvalue"))))
            uses = float(_plain(row.get("uses")) or 0.0)
            bucket = book.value_weights.setdefault((operation, name), {})
            try:
                bucket[value] = bucket.get(value, 0.0) + uses
            except TypeError:  # unhashable recorded value
                continue
        book.informed = observed
        return book

    # ----------------------------------------------------------------- drawing
    def choose_operation(self, rng: np.random.RandomState, stage: str) -> str:
        """A weighted operation draw for one stage (uniform floor retained)."""
        names = operations_for_stage(stage)
        if rng.rand() >= self.prior_probability:
            return names[rng.randint(len(names))]
        weights = np.array(
            [self.operation_weights.get(stage, {}).get(name, 1.0) for name in names],
            dtype=float,
        )
        weights /= weights.sum()
        return names[int(rng.choice(len(names), p=weights))]

    def choose_param_value(
        self, rng: np.random.RandomState, operation: str, param: str
    ) -> Any:
        """A hyperparameter value draw: recorded values first, space otherwise.

        Recorded values outside the typed candidate list are snapped to the
        nearest in-space candidate (numerics) or dropped (categoricals), so
        mined Kaggle values never produce an out-of-space genome.
        """
        spec = OPERATION_REGISTRY[operation]
        candidates = list(spec.params[param])
        recorded = self.value_weights.get((operation, param))
        if recorded and rng.rand() < self.prior_probability:
            values = list(recorded)
            weights = np.array([recorded[value] for value in values], dtype=float)
            weights /= weights.sum()
            drawn = values[int(rng.choice(len(values), p=weights))]
            snapped = _snap_to_candidates(drawn, candidates)
            if snapped is not None:
                return snapped
        return candidates[rng.randint(len(candidates))]

    def estimator_ranking(self) -> List[str]:
        """Estimator names by descending prior weight (benchmark telemetry)."""
        weights = self.operation_weights.get("estimator", {})
        return sorted(weights, key=lambda name: (-weights[name], name))

    # ---------------------------------------------------------------- sampling
    def sample_params(
        self, rng: np.random.RandomState, operation: str
    ) -> Dict[str, Any]:
        spec = OPERATION_REGISTRY[operation]
        return {
            param: self.choose_param_value(rng, operation, param)
            for param in spec.params
        }

    def sample_genome(self, rng: np.random.RandomState) -> PipelineGenome:
        """One prior-guided pipeline genome (chain, occasionally branched)."""
        genome = PipelineGenome()
        tail = INPUT_NODE
        feature_parent = None
        for stage in ("imputation", "preprocessing", "feature"):
            if rng.rand() >= STAGE_INCLUSION[stage]:
                continue
            operation = self.choose_operation(rng, stage)
            node_id = genome.add_node(
                operation, params=self.sample_params(rng, operation), parents=[tail]
            )
            if stage == "feature":
                feature_parent = tail
            tail = node_id
        estimator = self.choose_operation(rng, "estimator")
        sink = genome.add_node(
            estimator, params=self.sample_params(rng, estimator), parents=[tail]
        )
        # Occasionally branch: a second feature transform off the same parent,
        # concatenated into the estimator alongside the main chain.
        if feature_parent is not None and rng.rand() < BRANCH_PROBABILITY:
            options = operations_for_stage("feature")
            branch_op = options[rng.randint(len(options))]
            branch = genome.add_node(branch_op, parents=[feature_parent])
            genome.connect(branch, sink)
        genome.validate()
        return genome

    def sample_population(
        self, rng: np.random.RandomState, size: int
    ) -> List[PipelineGenome]:
        """``size`` genomes: prior-top bare estimators first, pipelines after.

        The first slots hold single-estimator genomes over the prior-ranked
        estimators — the very candidates KGpip recommends — so the search
        starts from the random baseline's strongest configurations and
        explores pipeline structure *around* them rather than from scratch.
        Duplicates collapse in the fitness cache.
        """
        ranking = self.estimator_ranking()
        seeds = min(len(ranking), max(1, size // 3))
        population: List[PipelineGenome] = [
            PipelineGenome.single_estimator(name, self.sample_params(rng, name))
            for name in ranking[:seeds]
        ]
        population.extend(self.sample_genome(rng) for _ in range(size - seeds))
        return population


def _snap_to_candidates(value: Any, candidates: Sequence[Any]) -> Optional[Any]:
    """Snap a mined value into the typed candidate list, or ``None``."""
    if value in candidates:
        return value
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        numeric = [c for c in candidates if isinstance(c, (int, float)) and not isinstance(c, bool)]
        if numeric:
            return min(numeric, key=lambda c: (abs(float(c) - float(value)), float(c)))
    return None
