"""AutoML support: the revised KGpip pipeline (Sections 4.4 and 6.3.3).

KGpip recommends an ML estimator for an unseen dataset by graph similarity
against datasets seen in the knowledge graph, then spends a budget searching
pipeline space.  KGLiDS improves it in two ways that this package
reproduces: the LiDS graph is already restricted to data-science semantics
(no graph filtration needed), and it records the hyperparameter name/value
pairs used by real pipelines, which seed and prune the search space.  The
default search is the GOLEM-style evolutionary pipeline-graph optimizer in
:mod:`repro.automl.evolution`; the budgeted random baseline survives as
``strategy="random"``.
"""

from repro.automl.kgpip import (
    SEARCH_STRATEGIES,
    AutoMLResult,
    EstimatorRecommendation,
    KGpipAutoML,
)
from repro.automl.search_space import (
    ESTIMATOR_REGISTRY,
    HYPERPARAMETER_SPACES,
    instantiate_estimator,
    sample_configuration,
)

__all__ = [
    "KGpipAutoML",
    "AutoMLResult",
    "EstimatorRecommendation",
    "SEARCH_STRATEGIES",
    "ESTIMATOR_REGISTRY",
    "HYPERPARAMETER_SPACES",
    "instantiate_estimator",
    "sample_configuration",
]
