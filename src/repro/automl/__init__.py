"""AutoML support: the revised KGpip pipeline (Sections 4.4 and 6.3.3).

KGpip recommends an ML estimator for an unseen dataset by graph similarity
against datasets seen in the knowledge graph, then runs a budgeted
hyperparameter search.  KGLiDS improves it in two ways that this package
reproduces: the LiDS graph is already restricted to data-science semantics
(no graph filtration needed), and it records the hyperparameter name/value
pairs used by real pipelines, which seed and prune the search space.
"""

from repro.automl.kgpip import AutoMLResult, KGpipAutoML
from repro.automl.search_space import (
    ESTIMATOR_REGISTRY,
    HYPERPARAMETER_SPACES,
    instantiate_estimator,
    sample_configuration,
)

__all__ = [
    "KGpipAutoML",
    "AutoMLResult",
    "ESTIMATOR_REGISTRY",
    "HYPERPARAMETER_SPACES",
    "instantiate_estimator",
    "sample_configuration",
]
