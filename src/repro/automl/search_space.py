"""Estimator registry and hyperparameter search spaces for AutoML.

Estimators are named by the scikit-learn / XGBoost callables that abstracted
pipelines invoke, so the names recorded in the LiDS graph line up with the
search space keys.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

import numpy as np

from repro.ml import (
    DecisionTreeClassifier,
    GaussianNB,
    GradientBoostingClassifier,
    KNeighborsClassifier,
    LogisticRegression,
    RandomForestClassifier,
)
from repro.ml.base import BaseEstimator

#: Map from the fully-qualified callable name (as recorded in the LiDS graph)
#: to the local estimator class reproducing it.
ESTIMATOR_REGISTRY: Dict[str, type] = {
    "sklearn.ensemble.RandomForestClassifier": RandomForestClassifier,
    "sklearn.ensemble.GradientBoostingClassifier": GradientBoostingClassifier,
    "xgboost.XGBClassifier": GradientBoostingClassifier,
    "sklearn.linear_model.LogisticRegression": LogisticRegression,
    "sklearn.tree.DecisionTreeClassifier": DecisionTreeClassifier,
    "sklearn.neighbors.KNeighborsClassifier": KNeighborsClassifier,
    "sklearn.naive_bayes.GaussianNB": GaussianNB,
}

#: Candidate values per hyperparameter per estimator.  These are the spaces
#: the budgeted search samples from; the LiDS-informed variant restricts them
#: to values observed in the knowledge graph.
HYPERPARAMETER_SPACES: Dict[str, Dict[str, List[Any]]] = {
    "sklearn.ensemble.RandomForestClassifier": {
        "n_estimators": [5, 10, 20, 40, 80],
        "max_depth": [3, 5, 8, 12, 16],
        "min_samples_split": [2, 4, 8],
    },
    "sklearn.ensemble.GradientBoostingClassifier": {
        "n_estimators": [10, 20, 40],
        "learning_rate": [0.01, 0.05, 0.1, 0.3],
        "max_depth": [2, 3, 4],
    },
    "xgboost.XGBClassifier": {
        "n_estimators": [10, 20, 40],
        "learning_rate": [0.01, 0.05, 0.1, 0.3],
        "max_depth": [2, 3, 4, 6],
    },
    "sklearn.linear_model.LogisticRegression": {
        "C": [0.01, 0.1, 1.0, 10.0, 100.0],
        "max_iter": [100, 200, 400],
    },
    "sklearn.tree.DecisionTreeClassifier": {
        "max_depth": [3, 5, 8, 12, 16],
        "min_samples_split": [2, 4, 8, 16],
    },
    "sklearn.neighbors.KNeighborsClassifier": {
        "n_neighbors": [1, 3, 5, 9, 15],
    },
    "sklearn.naive_bayes.GaussianNB": {
        "var_smoothing": [1e-9, 1e-7, 1e-5],
    },
}


def default_estimator_names() -> List[str]:
    """The estimator names considered when the KG offers no recommendation."""
    return [
        "sklearn.ensemble.RandomForestClassifier",
        "sklearn.linear_model.LogisticRegression",
        "sklearn.ensemble.GradientBoostingClassifier",
        "sklearn.neighbors.KNeighborsClassifier",
    ]


def instantiate_estimator(name: str, configuration: Optional[Dict[str, Any]] = None) -> BaseEstimator:
    """Build an estimator instance from its recorded name and configuration.

    Unknown hyperparameters (recorded from real pipelines but not supported by
    the local implementation) are ignored rather than failing the search.
    """
    if name not in ESTIMATOR_REGISTRY:
        raise ValueError(f"unknown estimator {name!r}; known: {sorted(ESTIMATOR_REGISTRY)}")
    estimator_class = ESTIMATOR_REGISTRY[name]
    estimator = estimator_class()
    if configuration:
        valid = set(estimator._param_names())
        filtered = {key: value for key, value in configuration.items() if key in valid}
        estimator.set_params(**filtered)
    return estimator


def sample_configuration(
    name: str,
    rng: np.random.RandomState,
    priors: Optional[Dict[str, Any]] = None,
    prior_probability: float = 0.6,
) -> Dict[str, Any]:
    """Sample one hyperparameter configuration for an estimator.

    When ``priors`` (hyperparameter values recommended from the LiDS graph)
    are given, each parameter takes the prior value with probability
    ``prior_probability`` and a random in-space value otherwise — that is the
    pruning/seeding effect of the revised KGpip pipeline.
    """
    space = HYPERPARAMETER_SPACES.get(name, {})
    configuration: Dict[str, Any] = {}
    for parameter, candidates in space.items():
        if priors and parameter in priors and rng.rand() < prior_probability:
            configuration[parameter] = priors[parameter]
        else:
            configuration[parameter] = candidates[rng.randint(len(candidates))]
    return configuration
