"""Extracting GNN training data from the LiDS graph.

Section 4.1: "KGLiDS could be queried to fetch the cleaning or transformation
operations and dataset nodes of type columns or tables used as input."  This
module issues those queries: it finds pipelines that call a given family of
operations, follows their verified ``reads`` edges to tables, and pairs the
table's CoLR embedding with the operation label.  The result is a
:class:`repro.gnn.FeatureGraph` ready for GraphSAINT training.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.gnn import FeatureGraph
from repro.kg.ontology import LiDSOntology, library_uri
from repro.kg.storage import KGLiDSStorage
from repro.rdf import RDF

#: Map from fully-qualified library calls to cleaning operation labels.
CLEANING_CALL_TO_OPERATION: Dict[str, str] = {
    "pandas.DataFrame.fillna": "Fillna",
    "pandas.DataFrame.interpolate": "Interpolate",
    "sklearn.impute.SimpleImputer": "SimpleImputer",
    "sklearn.impute.KNNImputer": "KNNImputer",
    "sklearn.impute.IterativeImputer": "IterativeImputer",
}

#: Map from fully-qualified library calls to scaling operation labels.
SCALING_CALL_TO_OPERATION: Dict[str, str] = {
    "sklearn.preprocessing.StandardScaler": "StandardScaler",
    "sklearn.preprocessing.MinMaxScaler": "MinMaxScaler",
    "sklearn.preprocessing.RobustScaler": "RobustScaler",
}

#: Map from fully-qualified library calls to unary transformation labels.
UNARY_CALL_TO_OPERATION: Dict[str, str] = {
    "numpy.log": "log",
    "numpy.log1p": "log",
    "numpy.sqrt": "sqrt",
}


@dataclass
class TrainingExample:
    """One supervised example: a node id, its embedding and operation label."""

    node_id: str
    embedding: np.ndarray
    operation: str


def extract_operation_examples(
    storage: KGLiDSStorage,
    call_to_operation: Dict[str, str],
    embedding_namespace: str = "table",
) -> List[TrainingExample]:
    """Pair tables read by pipelines with the operations those pipelines call.

    For every pipeline named graph, the query finds statements calling one of
    the mapped functions and the tables the pipeline reads; each (table,
    operation) pair becomes a training example whose features are the table's
    stored CoLR embedding.
    """
    ontology = LiDSOntology
    examples: List[TrainingExample] = []
    store = storage.graph
    for call_name, operation in call_to_operation.items():
        call_node = library_uri(call_name)
        for triple, graph in store.match(None, ontology.callsFunction, call_node):
            statement_node = triple.subject
            pipeline_nodes = store.objects(statement_node, ontology.isPartOf, graph=graph)
            for pipeline_node in pipeline_nodes:
                for table_node in store.objects(pipeline_node, ontology.reads, graph=graph):
                    if not store.contains(table_node, RDF.type, ontology.Table):
                        # ``reads`` may point at a dataset node; skip those here.
                        embedding = storage.embeddings.get(embedding_namespace, str(table_node))
                    else:
                        embedding = storage.embeddings.get(embedding_namespace, str(table_node))
                    if embedding is None:
                        continue
                    examples.append(
                        TrainingExample(
                            node_id=str(table_node), embedding=embedding, operation=operation
                        )
                    )
    return examples


def build_training_graph(
    examples: Sequence[TrainingExample],
    operations: Sequence[str],
    feature_dimensions: Optional[int] = None,
) -> FeatureGraph:
    """Build the node-classification graph from training examples.

    Table nodes carry their embedding and are labeled with the operation
    class; one node per operation is added (featured with the mean embedding
    of its member tables) and connected to its tables — that single
    table-operation edge per example is why the paper's cleaning GNN needs
    only one layer.
    """
    examples = list(examples)
    if not examples:
        raise ValueError("cannot build a training graph from zero examples")
    if feature_dimensions is None:
        feature_dimensions = int(examples[0].embedding.shape[0])
    graph = FeatureGraph(feature_dimensions)
    operation_index = {operation: i for i, operation in enumerate(operations)}
    members: Dict[str, List[np.ndarray]] = {operation: [] for operation in operations}
    for i, example in enumerate(examples):
        if example.operation not in operation_index:
            continue
        node_id = f"{example.node_id}#{i}"
        graph.add_node(node_id, example.embedding, label=operation_index[example.operation])
        members[example.operation].append(example.embedding)
    for operation, vectors in members.items():
        if not vectors:
            continue
        graph.add_node(f"operation:{operation}", np.mean(vectors, axis=0))
    for i, example in enumerate(examples):
        if example.operation not in operation_index:
            continue
        graph.add_edge(f"{example.node_id}#{i}", f"operation:{example.operation}")
    return graph
