"""On-demand data-science automation (Section 4 of the paper).

Data cleaning and data transformation are formalized as GNN node
classification over (sub)graphs of the LiDS graph whose node features are
CoLR table / column embeddings:

* :mod:`repro.automation.operations` — the cleaning and transformation
  operation registries and their table-level application logic.
* :mod:`repro.automation.training_data` — extraction of (embedding, operation)
  training examples from the LiDS graph.
* :mod:`repro.automation.cleaning` — the data-cleaning recommender
  (5 operations: Fillna, Interpolate, SimpleImputer, KNNImputer,
  IterativeImputer).
* :mod:`repro.automation.transformation` — the scaling recommender
  (Standard / MinMax / Robust scaler) and the unary column-transformation
  recommender (log / sqrt).
"""

from repro.automation.cleaning import CleaningRecommender
from repro.automation.operations import (
    CLEANING_OPERATIONS,
    SCALING_OPERATIONS,
    UNARY_OPERATIONS,
    apply_cleaning_operation,
    apply_scaling_operation,
    apply_unary_transformation,
)
from repro.automation.transformation import TransformationRecommendation, TransformationRecommender

__all__ = [
    "CLEANING_OPERATIONS",
    "SCALING_OPERATIONS",
    "UNARY_OPERATIONS",
    "apply_cleaning_operation",
    "apply_scaling_operation",
    "apply_unary_transformation",
    "CleaningRecommender",
    "TransformationRecommender",
    "TransformationRecommendation",
]
