"""The on-demand data-transformation recommender (Section 4.3).

Transformation recommendation is split into two models, as in the paper:

* a **table transformation** model choosing a scaling operation
  (StandardScaler / MinMaxScaler / RobustScaler) from the 1800-dimensional
  concatenated table embedding, and
* a **column transformation** model choosing a unary transformation
  (log / sqrt / none) per column from its 300-dimensional CoLR embedding.

Scaling is applied before unary transformations to neutralize magnitude
differences between features.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.automation.operations import (
    SCALING_OPERATIONS,
    UNARY_OPERATIONS,
    apply_scaling_operation,
    apply_unary_transformation,
)
from repro.automation.training_data import (
    SCALING_CALL_TO_OPERATION,
    UNARY_CALL_TO_OPERATION,
    TrainingExample,
    build_training_graph,
    extract_operation_examples,
)
from repro.embeddings.colr import ColRModelSet
from repro.gnn import GNNNodeClassifier
from repro.kg.storage import KGLiDSStorage
from repro.profiler.profile import DataProfiler
from repro.tabular import Table
from repro.types import COLR_TYPES, TYPE_FLOAT, TYPE_INT


@dataclass
class TransformationRecommendation:
    """The recommendation returned for a table."""

    scaler: str
    scaler_confidence: float
    column_transforms: Dict[str, str] = field(default_factory=dict)

    def as_list(self) -> List[Tuple[str, str]]:
        """Flat view: ``[("table", scaler), (column, op), ...]``."""
        entries = [("table", self.scaler)]
        entries.extend(
            (column, operation)
            for column, operation in self.column_transforms.items()
            if operation != "none"
        )
        return entries


class TransformationRecommender:
    """Recommends and applies scaling plus unary feature transformations."""

    SCALER_MODEL_NAME = "transformation_scaler_gnn"
    UNARY_MODEL_NAME = "transformation_unary_gnn"

    def __init__(
        self,
        profiler: Optional[DataProfiler] = None,
        colr_models: Optional[ColRModelSet] = None,
        epochs: int = 80,
        random_state: int = 0,
    ):
        self.colr_models = colr_models or ColRModelSet.pretrained()
        self.profiler = profiler or DataProfiler(colr_models=self.colr_models)
        self.epochs = epochs
        self.random_state = random_state
        self.table_feature_dimensions = self.colr_models.dimensions * len(COLR_TYPES)
        self.column_feature_dimensions = self.colr_models.dimensions
        self.scaler_model: Optional[GNNNodeClassifier] = None
        self.unary_model: Optional[GNNNodeClassifier] = None

    # -------------------------------------------------------------- training
    def train_from_kg(self, storage: KGLiDSStorage) -> Tuple[int, int]:
        """Train both models from the LiDS graph; returns the example counts."""
        scaling_examples = extract_operation_examples(storage, SCALING_CALL_TO_OPERATION, "table")
        unary_examples = extract_operation_examples(storage, UNARY_CALL_TO_OPERATION, "column")
        if scaling_examples:
            self.train_scaler_from_examples(scaling_examples)
            storage.register_model(self.SCALER_MODEL_NAME, self.scaler_model)
        if unary_examples:
            self.train_unary_from_examples(unary_examples)
            storage.register_model(self.UNARY_MODEL_NAME, self.unary_model)
        return len(scaling_examples), len(unary_examples)

    def train_scaler_from_examples(
        self, examples: Sequence[TrainingExample]
    ) -> "TransformationRecommender":
        graph = build_training_graph(examples, SCALING_OPERATIONS, self.table_feature_dimensions)
        self.scaler_model = GNNNodeClassifier(
            feature_dimensions=self.table_feature_dimensions,
            num_classes=len(SCALING_OPERATIONS),
            epochs=self.epochs,
            random_state=self.random_state,
        )
        self.scaler_model.fit(graph)
        return self

    def train_unary_from_examples(
        self, examples: Sequence[TrainingExample]
    ) -> "TransformationRecommender":
        graph = build_training_graph(examples, UNARY_OPERATIONS, self.column_feature_dimensions)
        self.unary_model = GNNNodeClassifier(
            feature_dimensions=self.column_feature_dimensions,
            num_classes=len(UNARY_OPERATIONS),
            epochs=self.epochs,
            random_state=self.random_state,
        )
        self.unary_model.fit(graph)
        return self

    # ------------------------------------------------------------- inference
    def recommend_transformations(
        self, table: Table, target: Optional[str] = None
    ) -> TransformationRecommendation:
        """Recommend a scaler for the table and a unary transform per numeric column."""
        if self.scaler_model is None:
            raise RuntimeError("the transformation recommender has not been trained")
        table_profile = self.profiler.profile_table(table)
        feature_profiles = [
            profile
            for profile in table_profile.column_profiles
            if target is None or profile.column_name != target
        ]
        table_embedding = self.colr_models.table_embedding(
            [profile.embedding for profile in feature_profiles],
            [profile.fine_grained_type for profile in feature_profiles],
        )
        scaler_probabilities = self.scaler_model.predict_proba_features(table_embedding)
        scaler_index = int(np.argmax(scaler_probabilities))
        recommendation = TransformationRecommendation(
            scaler=SCALING_OPERATIONS[scaler_index],
            scaler_confidence=float(scaler_probabilities[scaler_index]),
        )
        for profile in feature_profiles:
            if profile.fine_grained_type not in (TYPE_INT, TYPE_FLOAT):
                continue
            if self.unary_model is None:
                recommendation.column_transforms[profile.column_name] = "none"
                continue
            unary_probabilities = self.unary_model.predict_proba_features(profile.embedding)
            unary_index = int(np.argmax(unary_probabilities))
            recommendation.column_transforms[profile.column_name] = UNARY_OPERATIONS[unary_index]
        return recommendation

    @staticmethod
    def apply_transformations(
        recommendation: TransformationRecommendation,
        table: Table,
        target: Optional[str] = None,
    ) -> Table:
        """Apply a recommendation: scaling first, then per-column unary transforms."""
        exclude = [target] if target else []
        transformed = apply_scaling_operation(table, recommendation.scaler, exclude=exclude)
        for column_name, operation in recommendation.column_transforms.items():
            if operation == "none" or column_name == target:
                continue
            if transformed.has_column(column_name):
                transformed = apply_unary_transformation(transformed, column_name, operation)
        return transformed
