"""The on-demand data-cleaning recommender (Section 4.2).

A GNN node classifier is trained on (table embedding, cleaning operation)
examples extracted from the LiDS graph; at inference time an unseen DataFrame
(Table) is profiled, its 1800-dimensional embedding computed, and the model
predicts which of the five cleaning operations to apply.  The goal is not to
recover the original missing values but to maximize the performance of the
downstream modelling task, which is exactly how the Table 5 evaluation scores
the recommendation.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.automation.operations import CLEANING_OPERATIONS, apply_cleaning_operation
from repro.automation.training_data import (
    CLEANING_CALL_TO_OPERATION,
    TrainingExample,
    build_training_graph,
    extract_operation_examples,
)
from repro.embeddings.colr import ColRModelSet
from repro.gnn import GNNNodeClassifier
from repro.kg.storage import KGLiDSStorage
from repro.profiler.profile import DataProfiler
from repro.tabular import Table
from repro.types import COLR_TYPES


class CleaningRecommender:
    """Recommends and applies missing-value cleaning operations."""

    #: Name under which the trained model is registered in the Model Manager.
    MODEL_NAME = "cleaning_gnn"

    def __init__(
        self,
        profiler: Optional[DataProfiler] = None,
        colr_models: Optional[ColRModelSet] = None,
        epochs: int = 80,
        random_state: int = 0,
    ):
        self.colr_models = colr_models or ColRModelSet.pretrained()
        self.profiler = profiler or DataProfiler(colr_models=self.colr_models)
        self.epochs = epochs
        self.random_state = random_state
        self.model: Optional[GNNNodeClassifier] = None
        self.feature_dimensions = self.colr_models.dimensions * len(COLR_TYPES)

    # -------------------------------------------------------------- training
    def train_from_kg(self, storage: KGLiDSStorage) -> int:
        """Train from operation usage recorded in the LiDS graph.

        Returns the number of training examples found.  The trained model is
        registered with the storage's Model Manager.
        """
        examples = extract_operation_examples(storage, CLEANING_CALL_TO_OPERATION)
        if examples:
            self.train_from_examples(examples)
            storage.register_model(self.MODEL_NAME, self.model)
        return len(examples)

    def train_from_examples(self, examples: Sequence[TrainingExample]) -> "CleaningRecommender":
        """Train directly from (embedding, operation) examples."""
        graph = build_training_graph(examples, CLEANING_OPERATIONS, self.feature_dimensions)
        self.model = GNNNodeClassifier(
            feature_dimensions=self.feature_dimensions,
            num_classes=len(CLEANING_OPERATIONS),
            epochs=self.epochs,
            random_state=self.random_state,
        )
        self.model.fit(graph)
        return self

    # ------------------------------------------------------------- inference
    def table_embedding(self, table: Table) -> np.ndarray:
        """The 1800-dimensional embedding of an unseen table.

        Following Section 4.2, the embedding averages the CoLR embeddings of
        the columns that contain missing values (falling back to all columns
        when none are missing), separately per fine-grained type, and
        concatenates the per-type averages.
        """
        table_profile = self.profiler.profile_table(table)
        with_missing = [
            profile
            for profile in table_profile.column_profiles
            if profile.statistics.missing_count > 0
        ]
        profiles = with_missing or table_profile.column_profiles
        return self.colr_models.table_embedding(
            [profile.embedding for profile in profiles],
            [profile.fine_grained_type for profile in profiles],
        )

    def recommend(self, table: Table, k: int = 1) -> List[Tuple[str, float]]:
        """Top-k recommended cleaning operations with confidence scores."""
        if self.model is None:
            raise RuntimeError("the cleaning recommender has not been trained")
        probabilities = self.model.predict_proba_features(self.table_embedding(table))
        order = np.argsort(-probabilities)[:k]
        return [(CLEANING_OPERATIONS[i], float(probabilities[i])) for i in order]

    def recommend_cleaning_operations(self, table: Table) -> List[Tuple[str, float]]:
        """Paper-named API: all operations ranked by confidence."""
        return self.recommend(table, k=len(CLEANING_OPERATIONS))

    @staticmethod
    def apply_cleaning_operations(
        operations: Sequence[Tuple[str, float]], table: Table
    ) -> Table:
        """Apply the top recommended operation to the table and return the result."""
        if not operations:
            return table.copy()
        top_operation = operations[0][0] if isinstance(operations[0], tuple) else operations[0]
        return apply_cleaning_operation(table, top_operation)
