"""Cleaning / transformation operation registries and their application logic.

These are the concrete operations the GNN recommenders choose among, and the
``apply_*`` helpers that the KGLiDS interfaces expose so users can execute a
recommendation without writing code (Section 4.1).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.ml.impute import InterpolateImputer, IterativeImputer, KNNImputer, SimpleImputer
from repro.ml.preprocessing import MinMaxScaler, RobustScaler, StandardScaler
from repro.tabular import Column, Table
from repro.tabular.values import coerce_float, is_missing

#: The five cleaning operations of Section 4.2, in label order.
CLEANING_OPERATIONS = (
    "Fillna",
    "Interpolate",
    "SimpleImputer",
    "KNNImputer",
    "IterativeImputer",
)

#: The three table-level scaling transformations of Section 4.3.
SCALING_OPERATIONS = ("StandardScaler", "MinMaxScaler", "RobustScaler")

#: The column-level unary transformations of Section 4.3 (plus "none").
UNARY_OPERATIONS = ("none", "log", "sqrt")


# --------------------------------------------------------------------------
# Cleaning
# --------------------------------------------------------------------------
def _numeric_matrix(table: Table, column_names: Sequence[str]) -> np.ndarray:
    matrix = np.full((table.num_rows, len(column_names)), np.nan)
    for j, name in enumerate(column_names):
        matrix[:, j] = table.column(name).to_float_array()
    return matrix


def apply_cleaning_operation(
    table: Table, operation: str, fill_value: float = 0.0
) -> Table:
    """Return a copy of ``table`` with missing values handled by ``operation``.

    Numeric columns are imputed with the chosen matrix-level imputer;
    categorical columns are always filled with their most frequent value
    (which is what the abstracted Kaggle pipelines overwhelmingly do for
    string columns regardless of the numeric strategy).
    """
    if operation not in CLEANING_OPERATIONS:
        raise ValueError(
            f"unknown cleaning operation {operation!r}; expected one of {CLEANING_OPERATIONS}"
        )
    cleaned = table.copy()
    numeric_names = [
        column.name
        for column in cleaned.columns
        if column.dtype in ("int", "float", "bool")
    ]
    if numeric_names:
        matrix = _numeric_matrix(cleaned, numeric_names)
        if operation == "Fillna":
            imputer = SimpleImputer(strategy="constant", fill_value=fill_value)
        elif operation == "Interpolate":
            imputer = InterpolateImputer()
        elif operation == "SimpleImputer":
            imputer = SimpleImputer(strategy="mean")
        elif operation == "KNNImputer":
            imputer = KNNImputer(n_neighbors=5)
        else:
            imputer = IterativeImputer(max_iter=3)
        filled = imputer.fit_transform(matrix)
        for j, name in enumerate(numeric_names):
            original = cleaned.column(name)
            new_values = [
                original[i] if not is_missing(original[i]) else float(filled[i, j])
                for i in range(cleaned.num_rows)
            ]
            cleaned.set_column(Column(name, new_values))
    for column in cleaned.columns:
        if column.name in numeric_names or not column.has_missing():
            continue
        most_frequent = column.most_frequent()
        cleaned.set_column(column.fill_missing(most_frequent if most_frequent is not None else ""))
    return cleaned


# --------------------------------------------------------------------------
# Transformation
# --------------------------------------------------------------------------
def apply_scaling_operation(
    table: Table, operation: str, exclude: Optional[Sequence[str]] = None
) -> Table:
    """Scale all numeric columns of the table with the chosen scaler."""
    if operation not in SCALING_OPERATIONS:
        raise ValueError(
            f"unknown scaling operation {operation!r}; expected one of {SCALING_OPERATIONS}"
        )
    exclude = set(exclude or [])
    scaled = table.copy()
    numeric_names = [
        column.name
        for column in scaled.columns
        if column.dtype in ("int", "float") and column.name not in exclude
    ]
    if not numeric_names:
        return scaled
    matrix = _numeric_matrix(scaled, numeric_names)
    finite_fill = np.nanmean(matrix, axis=0)
    finite_fill = np.where(np.isfinite(finite_fill), finite_fill, 0.0)
    matrix = np.where(np.isfinite(matrix), matrix, finite_fill)
    scaler = {"StandardScaler": StandardScaler, "MinMaxScaler": MinMaxScaler, "RobustScaler": RobustScaler}[
        operation
    ]()
    transformed = scaler.fit_transform(matrix)
    for j, name in enumerate(numeric_names):
        original = table.column(name)
        values = [
            None if is_missing(original[i]) else float(transformed[i, j])
            for i in range(table.num_rows)
        ]
        scaled.set_column(Column(name, values))
    return scaled


def apply_unary_transformation(table: Table, column_name: str, operation: str) -> Table:
    """Apply ``log`` / ``sqrt`` to one numeric column (``none`` is a no-op)."""
    if operation not in UNARY_OPERATIONS:
        raise ValueError(
            f"unknown unary transformation {operation!r}; expected one of {UNARY_OPERATIONS}"
        )
    transformed = table.copy()
    if operation == "none":
        return transformed
    column = transformed.column(column_name)
    numeric = column.to_float_array()
    finite = numeric[np.isfinite(numeric)]
    shift = min(0.0, float(finite.min())) if finite.size else 0.0
    new_values = []
    for value in column.values:
        as_float = coerce_float(value)
        if as_float is None:
            new_values.append(None)
        elif operation == "log":
            new_values.append(float(np.log1p(as_float - shift)))
        else:
            new_values.append(float(np.sqrt(max(0.0, as_float - shift))))
    transformed.set_column(Column(column_name, new_values))
    return transformed


def cleaning_operation_index(operation: str) -> int:
    """Class index of a cleaning operation (label encoding for the GNN)."""
    return CLEANING_OPERATIONS.index(operation)


def scaling_operation_index(operation: str) -> int:
    """Class index of a scaling operation."""
    return SCALING_OPERATIONS.index(operation)


def unary_operation_index(operation: str) -> int:
    """Class index of a unary transformation."""
    return UNARY_OPERATIONS.index(operation)
