"""The Pipeline Abstraction component (Algorithm 1).

:class:`PipelineAbstractor` combines static code analysis, documentation
analysis and dataset-usage analysis into an :class:`AbstractedPipeline` per
script, plus the shared library hierarchy contributed by all scripts.  The
output feeds KG construction (:mod:`repro.kg.pipeline_graph`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.parallel import JobExecutor
from repro.pipelines.dataset_usage import annotate_statement, split_dataset_and_table
from repro.pipelines.docs import LibraryDocumentation
from repro.pipelines.static_analysis import Statement, StaticCodeAnalyzer


@dataclass
class PipelineScript:
    """A pipeline script plus its portal metadata (``MD`` in Algorithm 1)."""

    pipeline_id: str
    source_code: str
    dataset_name: Optional[str] = None
    author: str = "unknown"
    votes: int = 0
    score: Optional[float] = None
    task: Optional[str] = None  # e.g. "classification" / "regression"
    date: Optional[str] = None

    def to_dict(self) -> Dict:
        return {
            "pipeline_id": self.pipeline_id,
            "source_code": self.source_code,
            "dataset_name": self.dataset_name,
            "author": self.author,
            "votes": self.votes,
            "score": self.score,
            "task": self.task,
            "date": self.date,
        }

    @classmethod
    def from_dict(cls, payload: Dict) -> "PipelineScript":
        return cls(**payload)


@dataclass
class AbstractedPipeline:
    """The abstraction of one pipeline script (one named graph's worth)."""

    script: PipelineScript
    statements: List[Statement] = field(default_factory=list)
    #: Libraries called anywhere in the pipeline (root library names).
    libraries_used: Set[str] = field(default_factory=set)
    #: Fully-qualified callables invoked by the pipeline.
    calls_used: Set[str] = field(default_factory=set)
    #: Predicted table reads as ``(dataset or None, table name)``.
    predicted_table_reads: List[Tuple[Optional[str], str]] = field(default_factory=list)
    #: Predicted column reads (unverified; the Graph Linker prunes them).
    predicted_column_reads: List[str] = field(default_factory=list)

    @property
    def pipeline_id(self) -> str:
        return self.script.pipeline_id

    def to_dict(self) -> Dict:
        """JSON-serializable form; ``KGGovernor.save`` persists these so
        pipeline re-adds after reopen stay incremental."""
        return {
            "script": self.script.to_dict(),
            "statements": [statement.to_dict() for statement in self.statements],
            "libraries_used": sorted(self.libraries_used),
            "calls_used": sorted(self.calls_used),
            "predicted_table_reads": [list(read) for read in self.predicted_table_reads],
            "predicted_column_reads": list(self.predicted_column_reads),
        }

    @classmethod
    def from_dict(cls, payload: Dict) -> "AbstractedPipeline":
        return cls(
            script=PipelineScript.from_dict(payload["script"]),
            statements=[Statement.from_dict(s) for s in payload["statements"]],
            libraries_used=set(payload["libraries_used"]),
            calls_used=set(payload["calls_used"]),
            predicted_table_reads=[
                (dataset, table) for dataset, table in payload["predicted_table_reads"]
            ],
            predicted_column_reads=list(payload["predicted_column_reads"]),
        )


class PipelineAbstractor:
    """Runs Algorithm 1 over a collection of pipeline scripts."""

    def __init__(
        self,
        documentation: Optional[LibraryDocumentation] = None,
        executor: Optional[JobExecutor] = None,
    ):
        self.documentation = documentation or LibraryDocumentation()
        self.analyzer = StaticCodeAnalyzer()
        self.executor = executor or JobExecutor()
        #: ``(child, parent)`` edges of the library hierarchy accumulated so far.
        self.library_hierarchy: Set[Tuple[str, str]] = set()

    # ------------------------------------------------------------------- API
    def abstract_script(self, script: PipelineScript) -> AbstractedPipeline:
        """Abstract a single pipeline script (the parallel worker of Algorithm 1)."""
        statements, aliases = self.analyzer.analyze_with_aliases(script.source_code)
        imported_roots = {target.split(".")[0] for target in aliases.values()}
        abstraction = AbstractedPipeline(script=script)
        for statement in statements:
            statement = self.documentation.enrich_statement(statement)
            statement = annotate_statement(statement)
            abstraction.statements.append(statement)
            for call in statement.calls:
                is_library_call = call.library in imported_roots or call.full_name in self.documentation.docs
                if "." in call.full_name and is_library_call:
                    abstraction.libraries_used.add(call.full_name.split(".")[0])
                    abstraction.calls_used.add(call.full_name)
                    for edge in self.documentation.hierarchy_edges(call.full_name):
                        self.library_hierarchy.add(edge)
            for path in statement.dataset_reads:
                dataset, table = split_dataset_and_table(path)
                abstraction.predicted_table_reads.append((dataset or script.dataset_name, table))
            abstraction.predicted_column_reads.extend(statement.column_reads)
        return abstraction

    def abstract_scripts(self, scripts: Sequence[PipelineScript]) -> List[AbstractedPipeline]:
        """Abstract a collection of scripts as independent jobs."""
        return self.executor.map(self.abstract_script, list(scripts))

    # --------------------------------------------------------------- reports
    def library_hierarchy_edges(self) -> List[Tuple[str, str]]:
        """All accumulated ``(child, parent)`` library hierarchy edges."""
        return sorted(self.library_hierarchy)

    @staticmethod
    def library_usage_counts(abstractions: Sequence[AbstractedPipeline]) -> Dict[str, int]:
        """Number of distinct pipelines calling each root library (Figure 4)."""
        counts: Dict[str, int] = {}
        for abstraction in abstractions:
            for library in abstraction.libraries_used:
                counts[library] = counts.get(library, 0) + 1
        return dict(sorted(counts.items(), key=lambda item: -item[1]))
