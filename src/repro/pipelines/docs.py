"""Programming-library documentation analysis.

The paper enriches statically-analyzed calls with information mined from
library documentation: the names and default values of parameters (including
implicit positional and unspecified default parameters) and the return data
type of each call.  A by-product is the library hierarchy graph (packages,
modules, classes, functions).

Offline, the documentation knowledge base is embedded as a structured Python
dictionary covering the data-science libraries the pipeline corpus uses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.pipelines.static_analysis import CallInfo, Statement


@dataclass
class CallableDoc:
    """Documentation entry for one class constructor or function."""

    full_name: str
    parameters: List[Tuple[str, Optional[object]]] = field(default_factory=list)
    return_type: Optional[str] = None


def _doc(full_name: str, parameters: List[Tuple[str, Optional[object]]], return_type: str) -> CallableDoc:
    return CallableDoc(full_name=full_name, parameters=parameters, return_type=return_type)


#: The embedded documentation knowledge base (``LD`` in Algorithm 1).
LIBRARY_DOCS: Dict[str, CallableDoc] = {
    doc.full_name: doc
    for doc in [
        # ------------------------------------------------------------ pandas
        _doc("pandas.read_csv", [("filepath_or_buffer", None), ("sep", ","), ("header", "infer")], "pandas.DataFrame"),
        _doc("pandas.read_json", [("path_or_buf", None)], "pandas.DataFrame"),
        _doc("pandas.DataFrame", [("data", None), ("columns", None)], "pandas.DataFrame"),
        _doc("pandas.DataFrame.drop", [("labels", None), ("axis", 0), ("inplace", False)], "pandas.DataFrame"),
        _doc("pandas.DataFrame.fillna", [("value", None), ("method", None)], "pandas.DataFrame"),
        _doc("pandas.DataFrame.dropna", [("axis", 0), ("how", "any")], "pandas.DataFrame"),
        _doc("pandas.DataFrame.interpolate", [("method", "linear")], "pandas.DataFrame"),
        _doc("pandas.DataFrame.merge", [("right", None), ("how", "inner"), ("on", None)], "pandas.DataFrame"),
        _doc("pandas.DataFrame.groupby", [("by", None)], "pandas.core.groupby.DataFrameGroupBy"),
        _doc("pandas.DataFrame.apply", [("func", None), ("axis", 0)], "pandas.DataFrame"),
        _doc("pandas.concat", [("objs", None), ("axis", 0)], "pandas.DataFrame"),
        _doc("pandas.get_dummies", [("data", None), ("columns", None)], "pandas.DataFrame"),
        # ----------------------------------------------------------- sklearn
        _doc("sklearn.impute.SimpleImputer", [("missing_values", float("nan")), ("strategy", "mean"), ("fill_value", None)], "sklearn.impute.SimpleImputer"),
        _doc("sklearn.impute.KNNImputer", [("n_neighbors", 5), ("weights", "uniform")], "sklearn.impute.KNNImputer"),
        _doc("sklearn.impute.IterativeImputer", [("estimator", None), ("max_iter", 10)], "sklearn.impute.IterativeImputer"),
        _doc("sklearn.preprocessing.StandardScaler", [("copy", True), ("with_mean", True), ("with_std", True)], "sklearn.preprocessing.StandardScaler"),
        _doc("sklearn.preprocessing.MinMaxScaler", [("feature_range", (0, 1))], "sklearn.preprocessing.MinMaxScaler"),
        _doc("sklearn.preprocessing.RobustScaler", [("quantile_range", (25.0, 75.0))], "sklearn.preprocessing.RobustScaler"),
        _doc("sklearn.preprocessing.OneHotEncoder", [("categories", "auto"), ("handle_unknown", "error")], "sklearn.preprocessing.OneHotEncoder"),
        _doc("sklearn.preprocessing.LabelEncoder", [], "sklearn.preprocessing.LabelEncoder"),
        _doc("sklearn.preprocessing.FunctionTransformer", [("func", None)], "sklearn.preprocessing.FunctionTransformer"),
        _doc("sklearn.model_selection.train_test_split", [("test_size", 0.25), ("random_state", None), ("stratify", None)], "tuple"),
        _doc("sklearn.model_selection.cross_val_score", [("estimator", None), ("cv", 5), ("scoring", None)], "numpy.ndarray"),
        _doc("sklearn.model_selection.GridSearchCV", [("estimator", None), ("param_grid", None), ("cv", 5)], "sklearn.model_selection.GridSearchCV"),
        _doc("sklearn.linear_model.LogisticRegression", [("C", 1.0), ("penalty", "l2"), ("max_iter", 100), ("solver", "lbfgs")], "sklearn.linear_model.LogisticRegression"),
        _doc("sklearn.linear_model.LinearRegression", [("fit_intercept", True)], "sklearn.linear_model.LinearRegression"),
        _doc("sklearn.ensemble.RandomForestClassifier", [("n_estimators", 100), ("max_depth", None), ("min_samples_split", 2), ("random_state", None)], "sklearn.ensemble.RandomForestClassifier"),
        _doc("sklearn.ensemble.RandomForestRegressor", [("n_estimators", 100), ("max_depth", None)], "sklearn.ensemble.RandomForestRegressor"),
        _doc("sklearn.ensemble.GradientBoostingClassifier", [("n_estimators", 100), ("learning_rate", 0.1), ("max_depth", 3)], "sklearn.ensemble.GradientBoostingClassifier"),
        _doc("sklearn.tree.DecisionTreeClassifier", [("max_depth", None), ("criterion", "gini"), ("min_samples_split", 2)], "sklearn.tree.DecisionTreeClassifier"),
        _doc("sklearn.neighbors.KNeighborsClassifier", [("n_neighbors", 5), ("weights", "uniform")], "sklearn.neighbors.KNeighborsClassifier"),
        _doc("sklearn.naive_bayes.GaussianNB", [("var_smoothing", 1e-9)], "sklearn.naive_bayes.GaussianNB"),
        _doc("sklearn.svm.SVC", [("C", 1.0), ("kernel", "rbf"), ("gamma", "scale")], "sklearn.svm.SVC"),
        _doc("sklearn.cluster.KMeans", [("n_clusters", 8), ("n_init", 10)], "sklearn.cluster.KMeans"),
        _doc("sklearn.metrics.accuracy_score", [("y_true", None), ("y_pred", None)], "float"),
        _doc("sklearn.metrics.f1_score", [("y_true", None), ("y_pred", None), ("average", "binary")], "float"),
        _doc("sklearn.metrics.precision_score", [("y_true", None), ("y_pred", None)], "float"),
        _doc("sklearn.metrics.recall_score", [("y_true", None), ("y_pred", None)], "float"),
        _doc("sklearn.metrics.roc_auc_score", [("y_true", None), ("y_score", None)], "float"),
        _doc("sklearn.decomposition.PCA", [("n_components", None)], "sklearn.decomposition.PCA"),
        # ----------------------------------------------------------- xgboost
        _doc("xgboost.XGBClassifier", [("n_estimators", 100), ("learning_rate", 0.3), ("max_depth", 6)], "xgboost.XGBClassifier"),
        _doc("xgboost.XGBRegressor", [("n_estimators", 100), ("learning_rate", 0.3), ("max_depth", 6)], "xgboost.XGBRegressor"),
        # ------------------------------------------------------------- numpy
        _doc("numpy.log", [("x", None)], "numpy.ndarray"),
        _doc("numpy.log1p", [("x", None)], "numpy.ndarray"),
        _doc("numpy.sqrt", [("x", None)], "numpy.ndarray"),
        _doc("numpy.array", [("object", None)], "numpy.ndarray"),
        _doc("numpy.mean", [("a", None), ("axis", None)], "numpy.float64"),
        # ------------------------------------------------------ visualization
        _doc("matplotlib.pyplot.plot", [("x", None), ("y", None)], "list"),
        _doc("matplotlib.pyplot.hist", [("x", None), ("bins", 10)], "tuple"),
        _doc("matplotlib.pyplot.scatter", [("x", None), ("y", None)], "matplotlib.collections.PathCollection"),
        _doc("matplotlib.pyplot.show", [], "None"),
        _doc("seaborn.heatmap", [("data", None), ("annot", False)], "matplotlib.axes.Axes"),
        _doc("seaborn.pairplot", [("data", None)], "seaborn.axisgrid.PairGrid"),
        _doc("plotly.express.scatter", [("data_frame", None)], "plotly.graph_objects.Figure"),
        _doc("wordcloud.WordCloud", [("width", 400), ("height", 200)], "wordcloud.WordCloud"),
        # ------------------------------------------------------------- others
        _doc("scipy.stats.zscore", [("a", None)], "numpy.ndarray"),
        _doc("scipy.stats.pearsonr", [("x", None), ("y", None)], "tuple"),
        _doc("nltk.word_tokenize", [("text", None)], "list"),
        _doc("statsmodels.api.OLS", [("endog", None), ("exog", None)], "statsmodels.regression.linear_model.OLS"),
        _doc("IPython.display.display", [("obj", None)], "None"),
    ]
}


class LibraryDocumentation:
    """Lookup and enrichment over the embedded documentation knowledge base."""

    def __init__(self, docs: Optional[Dict[str, CallableDoc]] = None):
        self.docs = docs or LIBRARY_DOCS
        # Secondary index by unqualified callable name for partially-resolved calls.
        self._by_short_name: Dict[str, CallableDoc] = {}
        for doc in self.docs.values():
            self._by_short_name.setdefault(doc.full_name.split(".")[-1], doc)

    # ------------------------------------------------------------------- API
    def lookup(self, call_name: str) -> Optional[CallableDoc]:
        """Find the documentation entry for a (possibly unqualified) call name."""
        if call_name in self.docs:
            return self.docs[call_name]
        short = call_name.split(".")[-1]
        return self._by_short_name.get(short)

    def enrich_call(self, call: CallInfo) -> CallInfo:
        """Documentation analysis of one call (lines 9-13 of Algorithm 1).

        Positional arguments are given their documented parameter names;
        parameters the caller did not set are recorded with their defaults;
        the return type is attached.  The call's ``full_name`` is upgraded to
        the fully-qualified documented name when the static analysis could
        only resolve a method name.
        """
        doc = self.lookup(call.full_name)
        if doc is None:
            return call
        if "." not in call.full_name or not call.full_name.startswith(doc.full_name.split(".")[0]):
            call.full_name = doc.full_name
            call.library = doc.full_name.split(".")[0]
        parameter_names = [name for name, _ in doc.parameters]
        for position, value in enumerate(call.positional_arguments):
            if position < len(parameter_names):
                call.parameter_names[parameter_names[position]] = value
        explicitly_set = set(call.parameter_names) | set(call.keyword_arguments)
        for name, default in doc.parameters:
            if name not in explicitly_set:
                call.default_parameters[name] = default
        call.return_type = doc.return_type
        return call

    def enrich_statement(self, statement: Statement) -> Statement:
        """Enrich every call of a statement."""
        statement.calls = [self.enrich_call(call) for call in statement.calls]
        return statement

    # --------------------------------------------------------- library graph
    def hierarchy_edges(self, call_name: str) -> List[Tuple[str, str]]:
        """``(child, parent)`` edges of the library hierarchy for one call.

        ``sklearn.linear_model.LogisticRegression`` yields
        ``[(sklearn.linear_model.LogisticRegression, sklearn.linear_model),
        (sklearn.linear_model, sklearn)]``.
        """
        doc = self.lookup(call_name)
        qualified = doc.full_name if doc else call_name
        parts = qualified.split(".")
        edges = []
        for i in range(len(parts) - 1, 0, -1):
            child = ".".join(parts[: i + 1])
            parent = ".".join(parts[:i])
            edges.append((child, parent))
        return edges

    def known_callables(self) -> List[str]:
        """All fully-qualified callables in the knowledge base."""
        return sorted(self.docs.keys())
