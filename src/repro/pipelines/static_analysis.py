"""Lightweight static code analysis of Python pipeline scripts.

Each significant statement of a script becomes a :class:`Statement` carrying
the four aspects the paper stores: code flow (execution order), data flow
(next statements touching the same variables), control-flow type (loop /
conditional / import / user function / module level) and the raw statement
text.  Library calls are resolved through the script's import aliases so that
``pd.read_csv`` becomes ``pandas.read_csv``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, Tuple

#: Calls with no semantic significance for pipeline abstraction (paper §3.1).
INSIGNIFICANT_CALLS = {
    "print",
    "display",
    "head",
    "tail",
    "info",
    "describe",
    "summary",
    "len",
}

#: Control-flow types recorded per statement.
CONTROL_FLOW_MODULE = "module"
CONTROL_FLOW_LOOP = "loop"
CONTROL_FLOW_CONDITIONAL = "conditional"
CONTROL_FLOW_IMPORT = "import"
CONTROL_FLOW_FUNCTION = "user_function"


def _encode_value(value: Any) -> str:
    """JSON-safe spelling of a call-argument value (inverse: :func:`_decode_value`)."""
    return repr(value)


#: ``repr`` spellings of floats that are not Python literals.
_SPECIAL_FLOATS = {"nan": float("nan"), "inf": float("inf")}


def _eval_literal_node(node: ast.AST) -> Any:
    """``ast.literal_eval`` semantics extended with the ``nan``/``inf`` names.

    ``repr`` spells non-finite floats as bare names (also *inside*
    containers, e.g. ``(nan, 1)`` for a documentation default), which
    ``literal_eval`` rejects; everything else stays restricted to literal
    nodes, so decoding a saved file can never execute code.
    """
    if isinstance(node, ast.Constant):
        return node.value
    if isinstance(node, ast.Name) and node.id in _SPECIAL_FLOATS:
        return _SPECIAL_FLOATS[node.id]
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.UAdd, ast.USub)):
        value = _eval_literal_node(node.operand)
        return -value if isinstance(node.op, ast.USub) else +value
    if isinstance(node, ast.Tuple):
        return tuple(_eval_literal_node(element) for element in node.elts)
    if isinstance(node, ast.List):
        return [_eval_literal_node(element) for element in node.elts]
    if isinstance(node, ast.Set):
        return {_eval_literal_node(element) for element in node.elts}
    if isinstance(node, ast.Dict):
        return {
            _eval_literal_node(key): _eval_literal_node(value)
            for key, value in zip(node.keys, node.values)
        }
    raise ValueError(f"not a literal: {ast.dump(node)}")


def _decode_value(text: str) -> Any:
    """Inverse of :func:`_encode_value`.

    Argument values are Python literals (or ``ast.unparse`` strings for
    non-literal expressions), so ``repr`` round-trips them exactly through
    :func:`_eval_literal_node` — including tuples, which a plain JSON
    encoding would flatten to lists and thereby change their ``repr`` in the
    pipeline graph, and NaN / infinities bare or inside containers.
    Anything that does not parse as a literal comes back as the string it
    was (the ``ast.unparse`` fallback for non-literal expressions).
    """
    try:
        return _eval_literal_node(ast.parse(text, mode="eval").body)
    except (ValueError, SyntaxError):
        return text


@dataclass
class CallInfo:
    """One resolved library call inside a statement."""

    full_name: str  # e.g. "pandas.read_csv" or "sklearn.linear_model.LogisticRegression"
    library: str  # root library, e.g. "pandas"
    positional_arguments: List[Any] = field(default_factory=list)
    keyword_arguments: Dict[str, Any] = field(default_factory=dict)
    #: Filled by documentation analysis: names of implicit positional parameters.
    parameter_names: Dict[str, Any] = field(default_factory=dict)
    #: Filled by documentation analysis: defaulted parameters not set by the caller.
    default_parameters: Dict[str, Any] = field(default_factory=dict)
    return_type: Optional[str] = None

    def all_parameters(self) -> Dict[str, Any]:
        """Explicit (named via docs), keyword and default parameters combined."""
        combined: Dict[str, Any] = {}
        combined.update(self.default_parameters)
        combined.update(self.parameter_names)
        combined.update(self.keyword_arguments)
        return combined

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable form (see ``KGGovernor.save``)."""
        return {
            "full_name": self.full_name,
            "library": self.library,
            "positional_arguments": [_encode_value(v) for v in self.positional_arguments],
            "keyword_arguments": {k: _encode_value(v) for k, v in self.keyword_arguments.items()},
            "parameter_names": {k: _encode_value(v) for k, v in self.parameter_names.items()},
            "default_parameters": {
                k: _encode_value(v) for k, v in self.default_parameters.items()
            },
            "return_type": self.return_type,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "CallInfo":
        return cls(
            full_name=payload["full_name"],
            library=payload["library"],
            positional_arguments=[_decode_value(v) for v in payload["positional_arguments"]],
            keyword_arguments={
                k: _decode_value(v) for k, v in payload["keyword_arguments"].items()
            },
            parameter_names={
                k: _decode_value(v) for k, v in payload["parameter_names"].items()
            },
            default_parameters={
                k: _decode_value(v) for k, v in payload["default_parameters"].items()
            },
            return_type=payload.get("return_type"),
        )


@dataclass
class Statement:
    """One abstracted code statement."""

    index: int
    text: str
    control_flow: str = CONTROL_FLOW_MODULE
    calls: List[CallInfo] = field(default_factory=list)
    defined_variables: Set[str] = field(default_factory=set)
    used_variables: Set[str] = field(default_factory=set)
    next_statement: Optional[int] = None  # code flow
    data_flow_next: List[int] = field(default_factory=list)  # data flow
    dataset_reads: List[str] = field(default_factory=list)
    column_reads: List[str] = field(default_factory=list)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable form (see ``KGGovernor.save``)."""
        return {
            "index": self.index,
            "text": self.text,
            "control_flow": self.control_flow,
            "calls": [call.to_dict() for call in self.calls],
            "defined_variables": sorted(self.defined_variables),
            "used_variables": sorted(self.used_variables),
            "next_statement": self.next_statement,
            "data_flow_next": list(self.data_flow_next),
            "dataset_reads": list(self.dataset_reads),
            "column_reads": list(self.column_reads),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "Statement":
        return cls(
            index=payload["index"],
            text=payload["text"],
            control_flow=payload["control_flow"],
            calls=[CallInfo.from_dict(call) for call in payload["calls"]],
            defined_variables=set(payload["defined_variables"]),
            used_variables=set(payload["used_variables"]),
            next_statement=payload.get("next_statement"),
            data_flow_next=list(payload["data_flow_next"]),
            dataset_reads=list(payload["dataset_reads"]),
            column_reads=list(payload["column_reads"]),
        )


def _literal(node: ast.AST) -> Any:
    """Best-effort literal extraction for call arguments."""
    try:
        return ast.literal_eval(node)
    except (ValueError, SyntaxError):
        return ast.unparse(node) if hasattr(ast, "unparse") else None


class StaticCodeAnalyzer:
    """Parses a pipeline script into a list of abstracted statements."""

    def analyze(self, source: str) -> List[Statement]:
        """Analyze Python source code; syntax errors yield an empty abstraction."""
        statements, _ = self.analyze_with_aliases(source)
        return statements

    def analyze_with_aliases(self, source: str) -> Tuple[List[Statement], Dict[str, str]]:
        """Analyze source code and also return the import alias map.

        The alias map records what each imported name resolves to
        (``pd -> pandas``, ``StandardScaler -> sklearn.preprocessing.StandardScaler``)
        and is used by the abstractor to distinguish real library roots from
        method calls on local variables.
        """
        try:
            tree = ast.parse(source)
        except SyntaxError:
            return [], {}
        aliases: Dict[str, str] = {}
        statements: List[Statement] = []
        self._walk_body(tree.body, CONTROL_FLOW_MODULE, aliases, statements)
        self._link_code_flow(statements)
        self._link_data_flow(statements)
        return statements, aliases

    # ----------------------------------------------------------------- walk
    def _walk_body(
        self,
        body: List[ast.stmt],
        control_flow: str,
        aliases: Dict[str, str],
        statements: List[Statement],
    ) -> None:
        for node in body:
            if isinstance(node, (ast.Import, ast.ImportFrom)):
                self._register_imports(node, aliases)
                statements.append(
                    self._make_statement(node, CONTROL_FLOW_IMPORT, aliases, len(statements))
                )
            elif isinstance(node, (ast.For, ast.While)):
                self._walk_body(node.body, CONTROL_FLOW_LOOP, aliases, statements)
                self._walk_body(node.orelse, CONTROL_FLOW_LOOP, aliases, statements)
            elif isinstance(node, ast.If):
                self._walk_body(node.body, CONTROL_FLOW_CONDITIONAL, aliases, statements)
                self._walk_body(node.orelse, CONTROL_FLOW_CONDITIONAL, aliases, statements)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._walk_body(node.body, CONTROL_FLOW_FUNCTION, aliases, statements)
            elif isinstance(node, (ast.With,)):
                self._walk_body(node.body, control_flow, aliases, statements)
            elif isinstance(node, (ast.Try,)):
                self._walk_body(node.body, control_flow, aliases, statements)
                for handler in node.handlers:
                    self._walk_body(handler.body, control_flow, aliases, statements)
            elif isinstance(node, (ast.ClassDef,)):
                self._walk_body(node.body, CONTROL_FLOW_FUNCTION, aliases, statements)
            else:
                statement = self._make_statement(node, control_flow, aliases, len(statements))
                if statement.calls or statement.defined_variables or statement.used_variables:
                    statements.append(statement)

    @staticmethod
    def _register_imports(node: ast.stmt, aliases: Dict[str, str]) -> None:
        if isinstance(node, ast.Import):
            for alias in node.names:
                aliases[alias.asname or alias.name.split(".")[0]] = alias.name
        elif isinstance(node, ast.ImportFrom) and node.module:
            for alias in node.names:
                aliases[alias.asname or alias.name] = f"{node.module}.{alias.name}"

    # ------------------------------------------------------------ statements
    def _make_statement(
        self, node: ast.stmt, control_flow: str, aliases: Dict[str, str], index: int
    ) -> Statement:
        text = ast.unparse(node) if hasattr(ast, "unparse") else ""
        statement = Statement(index=index, text=text, control_flow=control_flow)
        statement.defined_variables = self._defined_variables(node)
        statement.used_variables = self._used_variables(node) - statement.defined_variables
        statement.calls = self._extract_calls(node, aliases)
        return statement

    @staticmethod
    def _defined_variables(node: ast.stmt) -> Set[str]:
        defined: Set[str] = set()
        targets: List[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)) and node.target is not None:
            targets = [node.target]
        for target in targets:
            for sub in ast.walk(target):
                if isinstance(sub, ast.Name):
                    defined.add(sub.id)
                elif isinstance(sub, ast.Subscript) and isinstance(sub.value, ast.Name):
                    defined.add(sub.value.id)
        return defined

    @staticmethod
    def _used_variables(node: ast.stmt) -> Set[str]:
        used: Set[str] = set()
        value_node: Optional[ast.AST] = None
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign, ast.Return, ast.Expr)):
            value_node = node.value
        if value_node is None:
            value_node = node
        for sub in ast.walk(value_node):
            if isinstance(sub, ast.Name) and isinstance(sub.ctx, ast.Load):
                used.add(sub.id)
        return used

    def _extract_calls(self, node: ast.stmt, aliases: Dict[str, str]) -> List[CallInfo]:
        calls: List[CallInfo] = []
        for sub in ast.walk(node):
            if not isinstance(sub, ast.Call):
                continue
            full_name = self._resolve_call_name(sub.func, aliases)
            if full_name is None:
                continue
            short_name = full_name.split(".")[-1]
            if short_name in INSIGNIFICANT_CALLS:
                continue
            call = CallInfo(
                full_name=full_name,
                library=full_name.split(".")[0],
                positional_arguments=[_literal(argument) for argument in sub.args],
                keyword_arguments={
                    keyword.arg: _literal(keyword.value)
                    for keyword in sub.keywords
                    if keyword.arg is not None
                },
            )
            calls.append(call)
        return calls

    def _resolve_call_name(self, func: ast.expr, aliases: Dict[str, str]) -> Optional[str]:
        parts: List[str] = []
        current: ast.expr = func
        while isinstance(current, ast.Attribute):
            parts.append(current.attr)
            current = current.value
        if isinstance(current, ast.Name):
            parts.append(aliases.get(current.id, current.id))
            return ".".join(reversed(parts))
        if isinstance(current, ast.Call):
            # Chained call like scaler.fit_transform(...) on a constructor result;
            # resolve the inner call and append the attribute chain.
            inner = self._resolve_call_name(current.func, aliases)
            if inner is None:
                return None
            return ".".join([inner] + list(reversed(parts)))
        if parts:
            # Method call on a local variable, e.g. df.drop(...) -> keep method name.
            return ".".join(reversed(parts))
        return None

    # ----------------------------------------------------------------- links
    @staticmethod
    def _link_code_flow(statements: List[Statement]) -> None:
        for i, statement in enumerate(statements[:-1]):
            statement.next_statement = statements[i + 1].index

    @staticmethod
    def _link_data_flow(statements: List[Statement]) -> None:
        for i, statement in enumerate(statements):
            relevant = statement.defined_variables | statement.used_variables
            if not relevant:
                continue
            for later in statements[i + 1 :]:
                if relevant & (later.used_variables | later.defined_variables):
                    statement.data_flow_next.append(later.index)
