"""Pipeline abstraction (Algorithm 1 of the paper).

Data-science pipeline scripts are abstracted into a language-independent
representation by combining three analyses:

* **static code analysis** (:mod:`repro.pipelines.static_analysis`) — code
  flow, data flow, control-flow type and statement text via the Python AST;
* **documentation analysis** (:mod:`repro.pipelines.docs`) — enriching each
  library call with parameter names (including implicit and default ones) and
  return types, and deriving the library hierarchy graph;
* **dataset usage analysis** (:mod:`repro.pipelines.dataset_usage`) —
  predicting which tables (``read_csv``) and columns (DataFrame subscripts)
  the pipeline reads.

:class:`repro.pipelines.abstraction.PipelineAbstractor` combines the three
into an :class:`AbstractedPipeline`, the input of KG construction.
"""

from repro.pipelines.abstraction import (
    AbstractedPipeline,
    PipelineAbstractor,
    PipelineScript,
)
from repro.pipelines.docs import LibraryDocumentation
from repro.pipelines.static_analysis import CallInfo, Statement, StaticCodeAnalyzer

__all__ = [
    "Statement",
    "CallInfo",
    "StaticCodeAnalyzer",
    "LibraryDocumentation",
    "PipelineScript",
    "AbstractedPipeline",
    "PipelineAbstractor",
]
