"""Dataset usage analysis: predicting table and column reads from code.

Lines 14-17 of Algorithm 1: if a statement reads a table via
``pandas.read_csv('dataset/table.csv')`` the table is predicted as a dataset
read; if a statement subscripts a DataFrame with a string
(``df['Survived']``) the column name is predicted as a column read.  The
Graph Linker later verifies these predictions against the dataset graph.
"""

from __future__ import annotations

import ast
import re
from typing import List, Optional, Tuple

from repro.pipelines.static_analysis import Statement

_READ_FUNCTIONS = ("read_csv", "read_json", "read_parquet", "read_excel")


def detect_dataset_read(statement: Statement) -> List[str]:
    """File paths read by pandas ``read_*`` calls in the statement."""
    reads: List[str] = []
    for call in statement.calls:
        short = call.full_name.split(".")[-1]
        if short not in _READ_FUNCTIONS:
            continue
        candidates = list(call.positional_arguments) + list(call.keyword_arguments.values())
        for candidate in candidates:
            if isinstance(candidate, str) and _looks_like_data_path(candidate):
                reads.append(candidate)
                break
    return reads


def _looks_like_data_path(text: str) -> bool:
    return bool(re.search(r"\.(csv|json|parquet|xlsx)$", text, re.IGNORECASE))


def split_dataset_and_table(path: str) -> Tuple[Optional[str], str]:
    """Split ``'titanic/train.csv'`` into ``('titanic', 'train')``.

    Paths without a directory component yield ``(None, stem)``; nested
    directories keep only the innermost one as the dataset name (Kaggle
    layout ``../input/<dataset>/<table>.csv``).
    """
    cleaned = path.replace("\\", "/").strip()
    parts = [part for part in cleaned.split("/") if part not in ("", ".", "..", "input")]
    stem = re.sub(r"\.(csv|json|parquet|xlsx)$", "", parts[-1], flags=re.IGNORECASE)
    if len(parts) >= 2:
        return parts[-2], stem
    return None, stem


def detect_column_reads(statement_source: str) -> List[str]:
    """Column names read through string subscripts over DataFrame variables.

    Operates on the statement text so it also catches subscripts that appear
    outside call arguments, e.g. ``X['Sex'] = imputer.fit_transform(X['Sex'])``.
    """
    columns: List[str] = []
    try:
        tree = ast.parse(statement_source)
    except SyntaxError:
        return columns
    for node in ast.walk(tree):
        if not isinstance(node, ast.Subscript):
            continue
        subscript_value = node.slice
        if isinstance(subscript_value, ast.Constant) and isinstance(subscript_value.value, str):
            columns.append(subscript_value.value)
        elif isinstance(subscript_value, (ast.List, ast.Tuple)):
            for element in subscript_value.elts:
                if isinstance(element, ast.Constant) and isinstance(element.value, str):
                    columns.append(element.value)
    # Also catch .drop('Survived', ...) style column references.
    for node in ast.walk(tree):
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            if node.func.attr == "drop":
                for argument in node.args:
                    if isinstance(argument, ast.Constant) and isinstance(argument.value, str):
                        columns.append(argument.value)
    seen = set()
    unique = []
    for column in columns:
        if column not in seen:
            seen.add(column)
            unique.append(column)
    return unique


def annotate_statement(statement: Statement) -> Statement:
    """Attach predicted dataset and column reads to a statement in place."""
    statement.dataset_reads = detect_dataset_read(statement)
    statement.column_reads = detect_column_reads(statement.text)
    return statement
