"""Data-lake abstraction: named datasets, each holding a set of tables.

KGLiDS bootstraps by pointing the KG Governor at one or more *data sources*
(data portals, lab shares, HDFS directories in Figure 1).  This module models
that layout: a :class:`DataLake` is a collection of :class:`DatasetSource`
objects, and each source owns the tables of one dataset.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Tuple, Union

from repro.tabular.io import read_csv, read_json_records
from repro.tabular.table import Table

PathLike = Union[str, Path]


class DatasetSource:
    """One dataset (e.g. a Kaggle dataset or a lab share) holding tables."""

    def __init__(self, name: str, tables: Optional[Iterable[Table]] = None):
        self.name = str(name)
        self._tables: Dict[str, Table] = {}
        for table in tables or []:
            self.add_table(table)

    def add_table(self, table: Table) -> None:
        """Register a table under this dataset (name must be unique)."""
        if table.name in self._tables:
            raise ValueError(
                f"dataset {self.name!r} already contains table {table.name!r}"
            )
        table.dataset = self.name
        self._tables[table.name] = table

    @property
    def tables(self) -> List[Table]:
        """The tables in insertion order."""
        return list(self._tables.values())

    @property
    def table_names(self) -> List[str]:
        return list(self._tables.keys())

    def table(self, name: str) -> Table:
        """Return the table named ``name``."""
        if name not in self._tables:
            raise KeyError(
                f"dataset {self.name!r} has no table {name!r}; "
                f"available: {self.table_names}"
            )
        return self._tables[name]

    def has_table(self, name: str) -> bool:
        return name in self._tables

    def __len__(self) -> int:
        return len(self._tables)

    def __repr__(self) -> str:
        return f"DatasetSource(name={self.name!r}, tables={len(self)})"


class DataLake:
    """A collection of datasets, the unit the KG Governor profiles."""

    def __init__(self, name: str = "data_lake", datasets: Optional[Iterable[DatasetSource]] = None):
        self.name = str(name)
        self._datasets: Dict[str, DatasetSource] = {}
        #: ``(path, error message)`` of files :meth:`from_directory` could
        #: not read — reported here and skipped, never raised: one vanished
        #: or unreadable file must not take the whole lake load down.
        self.load_errors: List[Tuple[str, str]] = []
        for dataset in datasets or []:
            self.add_dataset(dataset)

    # ------------------------------------------------------------ population
    def add_dataset(self, dataset: DatasetSource) -> None:
        if dataset.name in self._datasets:
            raise ValueError(f"data lake already contains dataset {dataset.name!r}")
        self._datasets[dataset.name] = dataset

    def add_table(self, dataset_name: str, table: Table) -> None:
        """Add a table, creating the dataset on demand."""
        if dataset_name not in self._datasets:
            self._datasets[dataset_name] = DatasetSource(dataset_name)
        self._datasets[dataset_name].add_table(table)

    @classmethod
    def from_directory(
        cls, root: PathLike, name: Optional[str] = None, *, on_error: str = "skip"
    ) -> "DataLake":
        """Load a lake from a directory tree ``root/<dataset>/<table>.{csv,json}``.

        Files placed directly under ``root`` are grouped into a dataset named
        after the root directory.

        A living lake always contains a few broken files; by default a table
        that cannot be read (vanished between listing and open, permission
        denied, malformed JSON, undecodable bytes) is recorded in
        ``lake.load_errors`` and skipped rather than failing the whole load.
        Pass ``on_error="raise"`` for the strict pre-crawler behaviour.
        """
        if on_error not in ("skip", "raise"):
            raise ValueError(f"on_error must be 'skip' or 'raise', got {on_error!r}")
        root = Path(root)
        lake = cls(name or root.name)
        for path in sorted(root.rglob("*")):
            try:
                if path.suffix.lower() not in (".csv", ".json") or not path.is_file():
                    continue
                relative = path.relative_to(root)
                dataset_name = relative.parts[0] if len(relative.parts) > 1 else root.name
                if path.suffix.lower() == ".csv":
                    table = read_csv(path, dataset=dataset_name)
                else:
                    table = read_json_records(path, dataset=dataset_name)
            except (OSError, ValueError, UnicodeError, csv.Error) as error:
                if on_error == "raise":
                    raise
                lake.load_errors.append((str(path), f"{type(error).__name__}: {error}"))
                continue
            lake.add_table(dataset_name, table)
        return lake

    # ---------------------------------------------------------------- access
    @property
    def datasets(self) -> List[DatasetSource]:
        return list(self._datasets.values())

    @property
    def dataset_names(self) -> List[str]:
        return list(self._datasets.keys())

    def dataset(self, name: str) -> DatasetSource:
        if name not in self._datasets:
            raise KeyError(
                f"data lake has no dataset {name!r}; available: {self.dataset_names}"
            )
        return self._datasets[name]

    def tables(self) -> List[Table]:
        """All tables across all datasets."""
        return [table for dataset in self.datasets for table in dataset.tables]

    def table(self, dataset_name: str, table_name: str) -> Table:
        return self.dataset(dataset_name).table(table_name)

    def find_table(self, table_name: str) -> Optional[Table]:
        """Find a table by name across datasets (first match)."""
        for dataset in self.datasets:
            if dataset.has_table(table_name):
                return dataset.table(table_name)
        return None

    def iter_columns(self) -> Iterator[Tuple[Table, str]]:
        """Iterate over ``(table, column name)`` pairs across the lake."""
        for table in self.tables():
            for column_name in table.column_names:
                yield table, column_name

    # ----------------------------------------------------------------- stats
    @property
    def num_tables(self) -> int:
        return sum(len(dataset) for dataset in self.datasets)

    @property
    def num_columns(self) -> int:
        return sum(table.num_columns for table in self.tables())

    @property
    def num_rows(self) -> int:
        return sum(table.num_rows for table in self.tables())

    def estimated_size_bytes(self) -> int:
        """Rough in-memory footprint of the lake (benchmark bookkeeping)."""
        return sum(table.estimated_size_bytes() for table in self.tables())

    def __len__(self) -> int:
        return len(self._datasets)

    def __repr__(self) -> str:
        return (
            f"DataLake(name={self.name!r}, datasets={len(self)}, "
            f"tables={self.num_tables})"
        )
