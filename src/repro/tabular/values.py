"""Value-level parsing and coercion helpers shared by the tabular layer.

The raw data KGLiDS ingests comes from CSV and JSON files, where every cell is
a string.  These helpers turn cell text into typed Python values (``int``,
``float``, ``bool``, ``str`` or ``None`` for missing) and provide the inverse
coercions used by the profiler and the ML layer.
"""

from __future__ import annotations

import math
import re
from typing import Any, Optional

#: Strings that are treated as missing values when parsing raw cells.
MISSING_TOKENS = frozenset(
    {"", "na", "n/a", "nan", "null", "none", "missing", "?", "-"}
)

_TRUE_TOKENS = frozenset({"true", "t", "yes", "y", "1"})
_FALSE_TOKENS = frozenset({"false", "f", "no", "n", "0"})

_INT_RE = re.compile(r"^[+-]?\d+$")
_FLOAT_RE = re.compile(r"^[+-]?(\d+\.\d*|\.\d+|\d+)([eE][+-]?\d+)?$")

_DATE_PATTERNS = (
    re.compile(r"^\d{4}-\d{1,2}-\d{1,2}([ T]\d{1,2}:\d{2}(:\d{2})?)?$"),
    re.compile(r"^\d{1,2}/\d{1,2}/\d{2,4}$"),
    re.compile(r"^\d{1,2}-\d{1,2}-\d{4}$"),
    re.compile(
        r"^\d{1,2}\s+(jan|feb|mar|apr|may|jun|jul|aug|sep|oct|nov|dec)[a-z]*\s+\d{4}$",
        re.IGNORECASE,
    ),
    re.compile(
        r"^(jan|feb|mar|apr|may|jun|jul|aug|sep|oct|nov|dec)[a-z]*\s+\d{1,2},?\s+\d{4}$",
        re.IGNORECASE,
    ),
)


def is_missing(value: Any) -> bool:
    """Return ``True`` when ``value`` represents a missing cell."""
    if value is None:
        return True
    if isinstance(value, float) and math.isnan(value):
        return True
    if isinstance(value, str) and value.strip().lower() in MISSING_TOKENS:
        return True
    return False


def looks_like_int(text: str) -> bool:
    """Return ``True`` when ``text`` is an integer literal."""
    return bool(_INT_RE.match(text.strip()))


def looks_like_float(text: str) -> bool:
    """Return ``True`` when ``text`` is a numeric literal (int or float)."""
    return bool(_FLOAT_RE.match(text.strip()))


def looks_like_bool(text: str) -> bool:
    """Return ``True`` when ``text`` is a boolean literal."""
    return text.strip().lower() in _TRUE_TOKENS or text.strip().lower() in _FALSE_TOKENS


def looks_like_date(text: str) -> bool:
    """Return ``True`` when ``text`` matches one of the supported date layouts."""
    stripped = text.strip()
    return any(pattern.match(stripped) for pattern in _DATE_PATTERNS)


def parse_value(raw: Any) -> Any:
    """Parse a raw cell into a typed Python value.

    Strings that look like integers, floats or booleans are converted; missing
    tokens become ``None``; anything else is returned as a stripped string.
    Values that are already typed (int/float/bool) pass through unchanged.
    """
    if raw is None:
        return None
    if isinstance(raw, bool):
        return raw
    if isinstance(raw, int):
        return raw
    if isinstance(raw, float):
        return None if math.isnan(raw) else raw
    text = str(raw).strip()
    if text.lower() in MISSING_TOKENS:
        return None
    if looks_like_int(text):
        try:
            return int(text)
        except ValueError:  # pragma: no cover - defensive, regex should prevent
            return text
    if looks_like_float(text):
        try:
            return float(text)
        except ValueError:  # pragma: no cover - defensive
            return text
    lowered = text.lower()
    if lowered in _TRUE_TOKENS and lowered in {"true", "t", "yes", "y"}:
        return True
    if lowered in _FALSE_TOKENS and lowered in {"false", "f", "no", "n"}:
        return False
    return text


def coerce_float(value: Any) -> Optional[float]:
    """Coerce ``value`` to ``float`` if possible, otherwise return ``None``."""
    if is_missing(value):
        return None
    if isinstance(value, bool):
        return 1.0 if value else 0.0
    if isinstance(value, (int, float)):
        return float(value)
    text = str(value).strip()
    if looks_like_float(text):
        try:
            return float(text)
        except ValueError:  # pragma: no cover - defensive
            return None
    return None


def coerce_bool(value: Any) -> Optional[bool]:
    """Coerce ``value`` to ``bool`` if possible, otherwise return ``None``."""
    if is_missing(value):
        return None
    if isinstance(value, bool):
        return value
    if isinstance(value, (int, float)):
        if value in (0, 1):
            return bool(value)
        return None
    text = str(value).strip().lower()
    if text in _TRUE_TOKENS:
        return True
    if text in _FALSE_TOKENS:
        return False
    return None
