"""CSV / JSON ingestion and export for :class:`~repro.tabular.Table`."""

from __future__ import annotations

import csv
import json
import os
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Union

from repro.tabular.table import Table
from repro.tabular.values import is_missing

PathLike = Union[str, Path]


def _record_source(table: Table, path: Path, before: os.stat_result) -> Table:
    """Attach file provenance to a loaded table (for streamed fingerprints).

    The file is stat'ed before the read and re-stat'ed after; provenance is
    recorded only when both agree, so a file mutated *mid-read* never gets a
    fingerprint claiming the parsed values match the on-disk bytes — the
    table simply falls back to value-based hashing.
    """
    try:
        after = os.stat(path)
    except OSError:
        return table
    if (
        after.st_mtime_ns == before.st_mtime_ns
        and after.st_size == before.st_size
    ):
        table.record_source(path, after.st_mtime_ns, after.st_size)
    return table


def read_csv(
    path: PathLike,
    name: Optional[str] = None,
    dataset: str = "",
    delimiter: str = ",",
    parse: bool = True,
) -> Table:
    """Read a CSV file into a :class:`Table`.

    The first row is the header.  Cell values are parsed into typed Python
    values unless ``parse`` is ``False``.
    """
    path = Path(path)
    stat_before = os.stat(path)
    with path.open(newline="", encoding="utf-8") as handle:
        reader = csv.reader(handle, delimiter=delimiter)
        rows = list(reader)
    if not rows:
        return _record_source(Table(name or path.stem, dataset=dataset), path, stat_before)
    header, data_rows = rows[0], rows[1:]
    table = Table.from_rows(
        name or path.stem, header, data_rows, dataset=dataset, parse=parse
    )
    return _record_source(table, path, stat_before)


def write_csv(table: Table, path: PathLike, delimiter: str = ",") -> Path:
    """Write a :class:`Table` to a CSV file and return the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle, delimiter=delimiter)
        writer.writerow(table.column_names)
        for row in table.iter_rows():
            writer.writerow(
                ["" if is_missing(value) else value for value in row.values()]
            )
    return path


def read_json_records(
    path: PathLike, name: Optional[str] = None, dataset: str = ""
) -> Table:
    """Read a JSON file containing a list of flat record objects into a Table.

    Keys missing from individual records become missing cells, which mirrors
    how semi-structured JSON data lands in a data lake.
    """
    path = Path(path)
    stat_before = os.stat(path)
    with path.open(encoding="utf-8") as handle:
        records = json.load(handle)
    if not isinstance(records, list):
        raise ValueError(f"{path} does not contain a JSON array of records")
    table = table_from_records(name or path.stem, records, dataset=dataset)
    return _record_source(table, path, stat_before)


def table_from_records(
    name: str, records: Iterable[Dict[str, Any]], dataset: str = ""
) -> Table:
    """Build a Table from an iterable of record dictionaries."""
    records = list(records)
    header: List[str] = []
    seen = set()
    for record in records:
        for key in record:
            if key not in seen:
                seen.add(key)
                header.append(key)
    rows = [[record.get(key) for key in header] for record in records]
    return Table.from_rows(name, header, rows, dataset=dataset, parse=True)
