"""The :class:`Column` container: a named, typed sequence of cell values."""

from __future__ import annotations

import random
from collections import Counter
from typing import Any, Iterable, Iterator, List, Optional, Sequence

import numpy as np

from repro.tabular.values import (
    coerce_bool,
    coerce_float,
    is_missing,
    looks_like_date,
    parse_value,
)

#: Coarse column dtypes used by the tabular layer (the profiler refines these
#: into the 7 fine-grained types of the paper).
DTYPE_INT = "int"
DTYPE_FLOAT = "float"
DTYPE_BOOL = "bool"
DTYPE_STRING = "string"
DTYPE_DATE = "date"
DTYPE_EMPTY = "empty"


class Column:
    """A named column of values.

    Values are plain Python objects (``int``, ``float``, ``bool``, ``str`` or
    ``None`` for missing cells).  The coarse dtype is inferred lazily from the
    non-missing values and cached.
    """

    def __init__(self, name: str, values: Iterable[Any], parse: bool = False):
        self.name = str(name)
        if parse:
            self._values: List[Any] = [parse_value(v) for v in values]
        else:
            self._values = list(values)
        self._dtype: Optional[str] = None

    # ------------------------------------------------------------------ basic
    @property
    def values(self) -> List[Any]:
        """The underlying list of values (shared, not copied)."""
        return self._values

    def __len__(self) -> int:
        return len(self._values)

    def __iter__(self) -> Iterator[Any]:
        return iter(self._values)

    def __getitem__(self, index: int) -> Any:
        return self._values[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Column):
            return NotImplemented
        return self.name == other.name and self._values == other._values

    def __repr__(self) -> str:
        return f"Column(name={self.name!r}, n={len(self)}, dtype={self.dtype})"

    def copy(self) -> "Column":
        """Return a deep-enough copy (values list is copied)."""
        return Column(self.name, list(self._values))

    # ------------------------------------------------------------------ dtype
    @property
    def dtype(self) -> str:
        """The inferred coarse dtype of the column."""
        if self._dtype is None:
            self._dtype = self._infer_dtype()
        return self._dtype

    def _infer_dtype(self) -> str:
        non_missing = [v for v in self._values if not is_missing(v)]
        if not non_missing:
            return DTYPE_EMPTY
        if all(isinstance(v, bool) for v in non_missing):
            return DTYPE_BOOL
        if all(isinstance(v, bool) or coerce_bool(v) is not None for v in non_missing):
            distinct = {str(v).strip().lower() for v in non_missing}
            if len(distinct) <= 2:
                return DTYPE_BOOL
        if all(isinstance(v, int) and not isinstance(v, bool) for v in non_missing):
            return DTYPE_INT
        if all(
            isinstance(v, (int, float)) and not isinstance(v, bool)
            for v in non_missing
        ):
            return DTYPE_FLOAT
        strings = [v for v in non_missing if isinstance(v, str)]
        if strings and all(looks_like_date(v) for v in strings):
            if len(strings) == len(non_missing):
                return DTYPE_DATE
        return DTYPE_STRING

    def invalidate_dtype(self) -> None:
        """Force dtype re-inference after in-place mutation of values."""
        self._dtype = None

    # ------------------------------------------------------------ missingness
    def missing_count(self) -> int:
        """Number of missing cells."""
        return sum(1 for v in self._values if is_missing(v))

    def missing_ratio(self) -> float:
        """Fraction of missing cells (0.0 for an empty column)."""
        if not self._values:
            return 0.0
        return self.missing_count() / len(self._values)

    def non_missing(self) -> List[Any]:
        """The list of non-missing values."""
        return [v for v in self._values if not is_missing(v)]

    def has_missing(self) -> bool:
        """``True`` when at least one cell is missing."""
        return any(is_missing(v) for v in self._values)

    # ------------------------------------------------------------- statistics
    def distinct_count(self) -> int:
        """Number of distinct non-missing values."""
        return len({self._hashable(v) for v in self.non_missing()})

    def value_counts(self) -> Counter:
        """Counter of non-missing values."""
        return Counter(self._hashable(v) for v in self.non_missing())

    def most_frequent(self) -> Any:
        """Most frequent non-missing value (``None`` for an all-missing column)."""
        counts = self.value_counts()
        if not counts:
            return None
        return counts.most_common(1)[0][0]

    @staticmethod
    def _hashable(value: Any) -> Any:
        return value if not isinstance(value, (list, dict)) else str(value)

    def to_float_array(self, fill: float = float("nan")) -> np.ndarray:
        """Return values as a float array; non-numeric or missing cells -> ``fill``."""
        out = np.full(len(self._values), fill, dtype=float)
        for i, value in enumerate(self._values):
            numeric = coerce_float(value)
            if numeric is not None:
                out[i] = numeric
        return out

    def numeric_values(self) -> List[float]:
        """The coercible numeric values (missing / non-numeric dropped)."""
        out = []
        for value in self._values:
            numeric = coerce_float(value)
            if numeric is not None:
                out.append(numeric)
        return out

    def true_ratio(self) -> float:
        """Fraction of non-missing values that coerce to ``True``.

        This is the statistic Algorithm 3 uses for boolean content similarity.
        """
        flags = [coerce_bool(v) for v in self.non_missing()]
        flags = [f for f in flags if f is not None]
        if not flags:
            return 0.0
        return sum(1 for f in flags if f) / len(flags)

    # --------------------------------------------------------------- sampling
    def sample(self, n: int, seed: int = 0) -> List[Any]:
        """Return up to ``n`` non-missing values sampled without replacement."""
        pool = self.non_missing()
        if len(pool) <= n:
            return list(pool)
        rng = random.Random(seed)
        return rng.sample(pool, n)

    # ------------------------------------------------------------- transforms
    def map(self, fn, name: Optional[str] = None) -> "Column":
        """Return a new column with ``fn`` applied to every value."""
        return Column(name or self.name, [fn(v) for v in self._values])

    def fill_missing(self, value: Any) -> "Column":
        """Return a copy with missing cells replaced by ``value``."""
        return Column(
            self.name, [value if is_missing(v) else v for v in self._values]
        )

    def take(self, indices: Sequence[int]) -> "Column":
        """Return a new column with the rows at ``indices`` (in that order)."""
        return Column(self.name, [self._values[i] for i in indices])
