"""The :class:`Table` container: a named collection of equally-long columns."""

from __future__ import annotations

import hashlib
import os
import random
import threading
from collections import OrderedDict
from pathlib import Path
from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.tabular.column import Column
from repro.tabular.values import coerce_float, is_missing

#: Process-wide cache of file-content digests keyed by
#: ``(resolved path, mtime_ns, size)`` — a changed file gets a new key, so
#: stale entries can never be returned; they just age out of the LRU.
_FINGERPRINT_CACHE: "OrderedDict[Tuple[str, int, int], str]" = OrderedDict()
_FINGERPRINT_CACHE_LOCK = threading.Lock()
_FINGERPRINT_CACHE_MAX = 4096
#: Chunk size for streaming file fingerprints (bounded memory on any table).
_FINGERPRINT_CHUNK = 1 << 16


class Table:
    """A column-oriented table.

    The table plays the role Pandas DataFrames play in the original KGLiDS
    implementation: it is what pipelines read, what the profiler inspects and
    what the automation APIs take as input and return as output.
    """

    def __init__(
        self,
        name: str,
        columns: Optional[Iterable[Column]] = None,
        dataset: str = "",
    ):
        self.name = str(name)
        #: Name of the dataset (data-lake folder) this table belongs to.
        self.dataset = dataset
        #: When the table was parsed from a file, the loaders record where
        #: it came from and the file's ``(mtime_ns, size)`` at load time.
        #: :meth:`content_fingerprint` then streams the file (bounded
        #: memory) instead of hashing every parsed value, as long as the
        #: file still matches this snapshot.
        self.source_path: Optional[Path] = None
        self.source_mtime_ns: Optional[int] = None
        self.source_size: Optional[int] = None
        self._columns: Dict[str, Column] = {}
        for column in columns or []:
            self.add_column(column)

    # ----------------------------------------------------------- constructors
    @classmethod
    def from_dict(
        cls, name: str, data: Dict[str, Sequence[Any]], dataset: str = ""
    ) -> "Table":
        """Build a table from ``{column name: values}``."""
        table = cls(name, dataset=dataset)
        for column_name, values in data.items():
            table.add_column(Column(column_name, values))
        return table

    @classmethod
    def from_rows(
        cls,
        name: str,
        header: Sequence[str],
        rows: Iterable[Sequence[Any]],
        dataset: str = "",
        parse: bool = True,
    ) -> "Table":
        """Build a table from a header plus an iterable of row tuples."""
        buckets: List[List[Any]] = [[] for _ in header]
        for row in rows:
            for i, column_name in enumerate(header):
                buckets[i].append(row[i] if i < len(row) else None)
        table = cls(name, dataset=dataset)
        for column_name, values in zip(header, buckets):
            table.add_column(Column(column_name, values, parse=parse))
        return table

    # ----------------------------------------------------------------- basics
    @property
    def columns(self) -> List[Column]:
        """The columns, in insertion order."""
        return list(self._columns.values())

    @property
    def column_names(self) -> List[str]:
        """The column names, in insertion order."""
        return list(self._columns.keys())

    @property
    def num_rows(self) -> int:
        """Number of rows (0 for a table without columns)."""
        if not self._columns:
            return 0
        return len(next(iter(self._columns.values())))

    @property
    def num_columns(self) -> int:
        """Number of columns."""
        return len(self._columns)

    @property
    def shape(self) -> Tuple[int, int]:
        """``(num_rows, num_columns)``."""
        return self.num_rows, self.num_columns

    def __len__(self) -> int:
        return self.num_rows

    def __contains__(self, column_name: str) -> bool:
        return column_name in self._columns

    def __getitem__(self, column_name: str) -> Column:
        return self.column(column_name)

    def __repr__(self) -> str:
        return f"Table(name={self.name!r}, shape={self.shape})"

    def column(self, column_name: str) -> Column:
        """Return the column named ``column_name`` (raises ``KeyError`` if absent)."""
        if column_name not in self._columns:
            raise KeyError(
                f"table {self.name!r} has no column {column_name!r}; "
                f"available: {self.column_names}"
            )
        return self._columns[column_name]

    def has_column(self, column_name: str) -> bool:
        """``True`` when the table has a column with that name."""
        return column_name in self._columns

    # -------------------------------------------------------------- mutation
    def add_column(self, column: Column, overwrite: bool = False) -> None:
        """Add (or overwrite) a column; lengths must match existing columns."""
        if column.name in self._columns and not overwrite:
            raise ValueError(
                f"table {self.name!r} already has a column {column.name!r}"
            )
        if self._columns and column.name not in self._columns:
            if len(column) != self.num_rows:
                raise ValueError(
                    f"column {column.name!r} has {len(column)} rows, "
                    f"table {self.name!r} has {self.num_rows}"
                )
        self._columns[column.name] = column

    def set_column(self, column: Column) -> None:
        """Add or replace a column (length must still match)."""
        self.add_column(column, overwrite=True)

    def rename_column(self, old: str, new: str) -> None:
        """Rename a column in place, preserving order."""
        if old not in self._columns:
            raise KeyError(old)
        renamed: Dict[str, Column] = {}
        for name, column in self._columns.items():
            if name == old:
                renamed[new] = Column(new, column.values)
            else:
                renamed[name] = column
        self._columns = renamed

    # -------------------------------------------------------------- selection
    def select(self, column_names: Sequence[str], name: Optional[str] = None) -> "Table":
        """Return a new table with only the requested columns."""
        return Table(
            name or self.name,
            [self.column(c).copy() for c in column_names],
            dataset=self.dataset,
        )

    def drop_columns(self, column_names: Sequence[str], name: Optional[str] = None) -> "Table":
        """Return a new table without the requested columns."""
        keep = [c for c in self.column_names if c not in set(column_names)]
        return self.select(keep, name=name)

    def take_rows(self, indices: Sequence[int], name: Optional[str] = None) -> "Table":
        """Return a new table with the rows at ``indices`` (in that order)."""
        return Table(
            name or self.name,
            [column.take(indices) for column in self.columns],
            dataset=self.dataset,
        )

    def head(self, n: int = 5) -> "Table":
        """The first ``n`` rows."""
        return self.take_rows(range(min(n, self.num_rows)))

    def sample_rows(self, n: int, seed: int = 0) -> "Table":
        """A random sample of up to ``n`` rows (without replacement)."""
        if self.num_rows <= n:
            return self.take_rows(range(self.num_rows))
        rng = random.Random(seed)
        indices = rng.sample(range(self.num_rows), n)
        return self.take_rows(indices)

    def drop_rows_with_missing(self, name: Optional[str] = None) -> "Table":
        """Return a new table keeping only rows with no missing cell."""
        keep = [
            i
            for i in range(self.num_rows)
            if not any(is_missing(column[i]) for column in self.columns)
        ]
        return self.take_rows(keep, name=name)

    # ------------------------------------------------------------------- rows
    def row(self, index: int) -> Dict[str, Any]:
        """Return row ``index`` as ``{column name: value}``."""
        return {name: column[index] for name, column in self._columns.items()}

    def iter_rows(self) -> Iterator[Dict[str, Any]]:
        """Iterate over rows as dictionaries."""
        for i in range(self.num_rows):
            yield self.row(i)

    def to_dict(self) -> Dict[str, List[Any]]:
        """Return ``{column name: list of values}``."""
        return {name: list(column.values) for name, column in self._columns.items()}

    def copy(self, name: Optional[str] = None) -> "Table":
        """Deep-enough copy of the table."""
        copied = Table(
            name or self.name,
            [column.copy() for column in self.columns],
            dataset=self.dataset,
        )
        # A copy holds the same contents, so it was "parsed from" the same
        # file snapshot; derived tables (select/take_rows/...) do not
        # inherit the provenance because their contents differ.
        copied.source_path = self.source_path
        copied.source_mtime_ns = self.source_mtime_ns
        copied.source_size = self.source_size
        return copied

    def record_source(self, path: Path, mtime_ns: int, size: int) -> None:
        """Record the file snapshot this table was parsed from (see loaders)."""
        self.source_path = Path(path)
        self.source_mtime_ns = int(mtime_ns)
        self.source_size = int(size)

    def content_fingerprint(self) -> str:
        """Digest identifying the table contents, independent of identity.

        The KG Governor records this when it profiles a table so that
        re-adding the same ``(dataset, table)`` key can distinguish an
        unchanged re-add (idempotent skip) from changed contents (routed
        through the refresh path), and the lake crawler calls it on every
        scan to dedupe unchanged files.

        File-backed tables (loaded via :func:`~repro.tabular.io.read_csv` /
        ``read_json_records``) are fingerprinted by *streaming the source
        file in chunks* — bounded memory however large the table — as long
        as the file still matches the ``(mtime_ns, size)`` captured at load
        time; digests are cached process-wide keyed by ``(path, mtime_ns,
        size)``, so rescanning an unchanged lake costs one ``stat`` per
        file instead of a hash pass.  When the file has changed or vanished
        since the load (the in-memory values no longer describe it), the
        digest falls back to hashing the parsed values, which is also the
        path for tables built in memory.  The two schemes never collide in
        a way that *hides* a change: a key is always compared against
        digests produced from the same provenance, and a provenance switch
        at worst triggers one redundant (idempotent) refresh.
        """
        if self.source_path is not None:
            file_digest = self._file_fingerprint()
            if file_digest is not None:
                return file_digest
        digest = hashlib.sha1()
        for column in self.columns:
            digest.update(column.name.encode("utf-8", "replace"))
            digest.update(b"\x1f")
            for value in column.values:
                digest.update(repr(value).encode("utf-8", "replace"))
                digest.update(b"\x1e")
            digest.update(b"\x1d")
        return digest.hexdigest()

    def _file_fingerprint(self) -> Optional[str]:
        """Streamed digest of the source file, or ``None`` when stale/gone."""
        try:
            stat = os.stat(self.source_path)
        except OSError:
            return None
        if (
            stat.st_mtime_ns != self.source_mtime_ns
            or stat.st_size != self.source_size
        ):
            return None
        key = (str(self.source_path), stat.st_mtime_ns, stat.st_size)
        with _FINGERPRINT_CACHE_LOCK:
            cached = _FINGERPRINT_CACHE.get(key)
            if cached is not None:
                _FINGERPRINT_CACHE.move_to_end(key)
                return cached
        digest = hashlib.sha1(b"file-content\x00")
        try:
            with open(self.source_path, "rb") as handle:
                while True:
                    chunk = handle.read(_FINGERPRINT_CHUNK)
                    if not chunk:
                        break
                    digest.update(chunk)
        except OSError:
            return None
        value = digest.hexdigest()
        with _FINGERPRINT_CACHE_LOCK:
            _FINGERPRINT_CACHE[key] = value
            _FINGERPRINT_CACHE.move_to_end(key)
            while len(_FINGERPRINT_CACHE) > _FINGERPRINT_CACHE_MAX:
                _FINGERPRINT_CACHE.popitem(last=False)
        return value

    # ------------------------------------------------------------- numeric ML
    def numeric_column_names(self) -> List[str]:
        """Names of columns whose dtype is numeric or boolean."""
        return [
            column.name
            for column in self.columns
            if column.dtype in ("int", "float", "bool")
        ]

    def categorical_column_names(self) -> List[str]:
        """Names of columns with string/date dtype."""
        return [
            column.name
            for column in self.columns
            if column.dtype in ("string", "date")
        ]

    def to_feature_matrix(
        self,
        target: Optional[str] = None,
        max_onehot_cardinality: int = 12,
    ) -> Tuple[np.ndarray, List[str]]:
        """Encode the table into a dense float feature matrix.

        Numeric and boolean columns map to one feature each; low-cardinality
        string columns are one-hot encoded; high-cardinality strings are
        frequency encoded.  Missing numeric cells become the column mean
        (or 0 when the column has no numeric values at all).  This is the
        encoding used by the evaluation harness when training the downstream
        random-forest classifier.

        Returns the matrix and the list of generated feature names.
        """
        features: List[np.ndarray] = []
        names: List[str] = []
        for column in self.columns:
            if target is not None and column.name == target:
                continue
            if column.dtype in ("int", "float", "bool"):
                values = column.to_float_array()
                finite = values[np.isfinite(values)]
                fill = float(finite.mean()) if finite.size else 0.0
                values = np.where(np.isfinite(values), values, fill)
                features.append(values)
                names.append(column.name)
            else:
                non_missing = column.non_missing()
                distinct = sorted({str(v) for v in non_missing})
                if 0 < len(distinct) <= max_onehot_cardinality:
                    for category in distinct:
                        indicator = np.array(
                            [
                                1.0 if (not is_missing(v) and str(v) == category) else 0.0
                                for v in column.values
                            ]
                        )
                        features.append(indicator)
                        names.append(f"{column.name}={category}")
                else:
                    counts = column.value_counts()
                    total = max(1, len(non_missing))
                    encoded = np.array(
                        [
                            counts.get(Column._hashable(v), 0) / total
                            if not is_missing(v)
                            else 0.0
                            for v in column.values
                        ]
                    )
                    features.append(encoded)
                    names.append(f"{column.name}#freq")
        if not features:
            return np.zeros((self.num_rows, 0)), []
        return np.column_stack(features), names

    def target_vector(self, target: str) -> np.ndarray:
        """Encode the target column as an integer label vector.

        Numeric targets with few distinct values and all string/bool targets
        are label-encoded; missing labels become the most frequent class.
        """
        column = self.column(target)
        values = column.values
        labels = sorted(
            {str(v) for v in values if not is_missing(v)},
            key=lambda s: (len(s), s),
        )
        mapping = {label: i for i, label in enumerate(labels)}
        most_common = column.most_frequent()
        default = mapping.get(str(most_common), 0)
        return np.array(
            [
                mapping.get(str(v), default) if not is_missing(v) else default
                for v in values
            ],
            dtype=int,
        )

    # ------------------------------------------------------------------ stats
    def missing_cell_count(self) -> int:
        """Total number of missing cells in the table."""
        return sum(column.missing_count() for column in self.columns)

    def columns_with_missing(self) -> List[str]:
        """Names of columns containing at least one missing cell."""
        return [column.name for column in self.columns if column.has_missing()]

    def estimated_size_bytes(self) -> int:
        """A rough in-memory size estimate used for benchmark bookkeeping."""
        total = 0
        for column in self.columns:
            for value in column.values:
                if isinstance(value, str):
                    total += 50 + len(value)
                else:
                    total += 28
        return total
