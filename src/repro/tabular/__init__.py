"""A lightweight, column-oriented tabular data layer.

KGLiDS proper is built on top of Pandas DataFrames and Spark DataFrames.  This
package provides the subset of that functionality the platform actually needs:
typed columns, CSV/JSON ingestion, sampling, selection and missing-value
handling.  All higher layers (profiler, automation, interfaces) exchange
:class:`Table` objects where the paper exchanges DataFrames.
"""

from repro.tabular.column import Column
from repro.tabular.datalake import DataLake, DatasetSource
from repro.tabular.io import read_csv, read_json_records, write_csv
from repro.tabular.table import Table
from repro.tabular.values import (
    MISSING_TOKENS,
    coerce_bool,
    coerce_float,
    is_missing,
    parse_value,
)

__all__ = [
    "Column",
    "Table",
    "DataLake",
    "DatasetSource",
    "read_csv",
    "write_csv",
    "read_json_records",
    "parse_value",
    "is_missing",
    "coerce_float",
    "coerce_bool",
    "MISSING_TOKENS",
]
