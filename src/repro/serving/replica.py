"""Read replicas: a shipped snapshot kept fresh by delta pulls.

:class:`Replica` owns one snapshot directory (a file copy of the writer's
``KGGovernor.save`` output), opens it read-only, and converges on the
writer by pulling ``delta`` RPCs: the writer answers with new dictionary
rows plus either per-commit row ops or full dumps of the changed graphs,
and the replica applies them in one ``replication_batch`` — its commit
version *jumps* to the writer's, in-flight local readers finish on the old
snapshot first, and a failed apply rolls the whole pull back.

:class:`ReplicaServer` serves the replica over the wire protocol on a
deliberately **single-threaded** event loop (redis-style): one replica
process is one serving slot, and read throughput scales by adding
replicas, not threads.  The loop enforces a *freshness lease* — before
handling a request (and on idle ticks) it syncs if the last sync is older
than ``lease`` seconds.  With ``lease=0`` every request is served at the
writer's current version; the sync round-trip is the stall that other
replicas overlap, which is exactly where the serving benchmark's read
scaling comes from on a single core.
"""

from __future__ import annotations

import json
import selectors
import socket
import threading
import time
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Tuple, Union

from repro.interfaces.api import LiDSClient
from repro.kg.governor import _GRAPH_FILE, KGGovernor
from repro.rdf.store import QuadStore
from repro.rdf.terms import URIRef
from repro.serving.client import RemoteLiDSClient
from repro.serving.protocol import ProtocolError, recv_frame, send_frame, unpack_ids
from repro.serving.server import RequestDispatcher

Address = Tuple[str, int]


class Replica:
    """One read-only copy of the lake, refreshed by delta pulls."""

    def __init__(
        self,
        source_address: Address,
        directory: Union[str, Path],
        timeout: float = 30.0,
        max_retries: int = 5,
        durable_applies: bool = True,
    ):
        self.directory = Path(directory)
        self._store = QuadStore.sqlite(self.directory / _GRAPH_FILE)
        #: ``False`` turns on lazy-durability applies: delta ops patch the
        #: resident indexes and queue in the backend's write buffer, but the
        #: sqlite flush (and the durable version stamp) waits for an explicit
        #: :meth:`checkpoint`.  Sound because the durable version stays
        #: conservative and delta ops are idempotent — a crashed replica
        #: restarts at its last checkpoint and replays forward — and it moves
        #: per-commit durability work out of the serving window, which is the
        #: point: a serving slot's loss story is "re-pull", not "fsync".
        self._durable_applies = durable_applies or not getattr(
            self._store.backend, "supports_lazy_replication", False
        )
        if not self._durable_applies:
            # Threshold flushes mid-apply would make a torn apply partially
            # durable (still safe, but noisier); with checkpoints owning the
            # flush, the threshold only bounds memory.
            self._store.backend.flush_threshold = 1_000_000
        #: Dictionary-id watermark: every id below it matches the writer's
        #: dictionary byte-for-byte.  Ids above it are local strays (query
        #: constants interned between syncs) and are rolled back before
        #: each apply so shipped rows land at their authoritative ids.
        self._synced_terms = self._store.dictionary.next_id
        #: Replication telemetry, reported via the ``stats`` RPC.  The
        #: ``*_seconds`` entries split a sync's cost into the round-trip
        #: against the writer (gate waits show up there) and the local
        #: delta apply — the two knobs that bound a replica's freshness.
        self.stats: Dict[str, float] = {
            "syncs": 0,
            "noops": 0,
            "delta_pulls": 0,
            "full_pulls": 0,
            "rows_applied": 0,
            "terms_applied": 0,
            "sync_failures": 0,
            "source_version": 0,
            "pull_seconds": 0.0,
            "apply_seconds": 0.0,
        }
        self._source = RemoteLiDSClient(
            source_address,
            timeout=timeout,
            pool_size=1,
            max_retries=max_retries,
        )
        self._sync_lock = threading.Lock()
        # Converge on the writer *before* the governor constructs: the
        # governor's ontology bootstrap interns terms when the ontology
        # graph is missing, and any locally-minted id would collide with
        # the writer's id space.
        self.sync()
        governor = KGGovernor.open(self.directory, graph=self._store)
        governor.read_only = True
        #: The in-process read surface local queries are answered from.
        self.client = LiDSClient(governor)

    @property
    def store(self) -> QuadStore:
        return self._store

    @property
    def commit_version(self) -> int:
        """The writer commit version this replica's snapshot is pinned at."""
        return self._store.commit_version

    @property
    def replication_lag(self) -> int:
        """Versions behind the writer, as of the last sync round-trip."""
        return max(0, self.stats["source_version"] - self.commit_version)

    def sync(self) -> bool:
        """One freshness round-trip; returns whether anything was applied."""
        with self._sync_lock:
            started = time.perf_counter()
            payload = self._source.delta(self._store.commit_version, self._synced_terms)
            self.stats["pull_seconds"] += time.perf_counter() - started
            self.stats["syncs"] += 1
            self.stats["source_version"] = int(payload["version"])
            if not payload["changed"]:
                self.stats["noops"] += 1
                return False
            started = time.perf_counter()
            try:
                self._apply(payload)
            except BaseException:
                self.stats["sync_failures"] += 1
                raise
            finally:
                self.stats["apply_seconds"] += time.perf_counter() - started
            return True

    # ``refresh`` is the operator-facing spelling of one sync.
    refresh = sync

    def _apply(self, payload: Dict[str, Any]) -> None:
        store = self._store
        backend = store.backend
        version = int(payload["version"])
        touched: List[URIRef] = []
        # Lazy applies only for pure row-op deltas: full dumps and drops go
        # through ``drop_graph``, whose buffer purge invalidates the pending
        # mark the lazy failure path truncates to.
        durable = (
            self._durable_applies
            or payload["full"]
            or any(kind == "drop" for kind, _, _ in payload["ops"])
        )
        try:
            with store.replication_batch(version, durable=durable):
                # Local strays first (see ``_synced_terms``), then the
                # writer's rows — all inside the batch transaction, so a
                # failed apply restores the dictionary too.
                store.dictionary.rollback_to(self._synced_terms)
                raw_terms = payload["terms"]
                if isinstance(raw_terms, dict):
                    ids = unpack_ids(raw_terms["ids"])
                    terms = list(zip(ids, raw_terms["texts"].split("\n"))) if ids else []
                else:
                    terms = [(term_id, text) for term_id, text in raw_terms]
                backend.ingest_term_rows(terms, durable=durable)
                self.stats["terms_applied"] += len(terms)
                quoted = payload.get("quoted")
                if quoted:
                    # The writer's quoted-part table rides along so the
                    # apply never re-parses ``<< s p o >>`` spellings.
                    parts = iter(unpack_ids(quoted))
                    store.dictionary.register_quoted_rows(
                        zip(parts, parts, parts, parts)
                    )
                if payload["full"]:
                    self.stats["full_pulls"] += 1
                    keep = {URIRef(name) for name in payload["all_graphs"]}
                    for graph in list(store.graphs()):
                        if graph not in keep:
                            backend.drop_graph(graph)
                    for name, flat in payload["graphs"].items():
                        graph = URIRef(name)
                        touched.append(graph)
                        rows = _unflatten(flat)
                        backend.replace_shard(graph, rows)
                        self.stats["rows_applied"] += len(rows)
                else:
                    self.stats["delta_pulls"] += 1
                    for kind, name, flat in payload["ops"]:
                        graph = URIRef(name)
                        touched.append(graph)
                        if kind == "drop":
                            backend.drop_graph(graph)
                            continue
                        rows = _unflatten(flat)
                        if kind == "add":
                            backend.apply_row_delta(graph, rows, [])
                        else:
                            backend.apply_row_delta(graph, [], rows)
                        self.stats["rows_applied"] += len(rows)
                for graph in touched:
                    backend.graph_changed(graph, version)
        except BaseException:
            # Resident indexes were patched in place with no undo log;
            # durable state rolled back, so force lazy rebuilds from it.
            for graph in touched:
                backend.invalidate_resident(graph)
            raise
        self._synced_terms = store.dictionary.next_id

    def checkpoint(self) -> None:
        """Make every lazily-applied delta durable in one sqlite commit."""
        with self._sync_lock:
            self._store.checkpoint()

    def close(self) -> None:
        self._source.close()
        # Closing the store flushes the write buffer and stamps the current
        # commit version, so a graceful shutdown is itself a checkpoint.
        self.client.close()


def _unflatten(flat: Any) -> List[Tuple[int, int, int]]:
    # Packed runs decode at C speed (base64 + frombuffer + tolist gives
    # plain Python ints — sqlite bindings require them); the shared
    # iterator zipped three-wide then builds the row tuples in C.  This
    # runs over six-digit id runs on every delta apply.
    ids = iter(unpack_ids(flat))
    return list(zip(ids, ids, ids))


class ReplicaServer:
    """Serve one :class:`Replica` on a single-threaded event loop.

    One thread, one request at a time: the replica process is a serving
    *slot*, so scaling reads means adding replicas (the benchmark's whole
    premise), and no torn state is ever visible because queries and syncs
    interleave, never overlap.  ``lease`` is the freshness budget: a
    request is answered at a snapshot no older than ``lease`` seconds of
    writer history (0 = sync before every request).
    """

    def __init__(
        self,
        replica: Replica,
        host: str = "127.0.0.1",
        port: int = 0,
        lease: float = 0.05,
        idle_resync: float = 0.25,
        checkpoint_after: float = 1.0,
    ):
        self.replica = replica
        self.lease = lease
        #: Quiet period (seconds since the last request) after which idle
        #: ticks flush lazily-applied deltas to sqlite.  Durability work thus
        #: runs between request bursts instead of inside them; a crash before
        #: the checkpoint only costs a re-pull on restart.
        self.checkpoint_after = checkpoint_after
        #: Idle convergence cadence.  The request path syncs on ``lease``;
        #: idle ticks sync on this much slower clock — enough for a drained
        #: writer's final version to land here, without a ``lease=0``
        #: replica burning the writer with a sync per 10 ms tick when no
        #: client is asking for fresh answers.
        self.idle_resync = max(lease, idle_resync)
        self.dispatcher = RequestDispatcher(
            replica.client,
            role="replica",
            store=replica.store,
            extra_stats=self._replication_stats,
            on_shutdown=self._stop_async,
        )
        self._listener = socket.create_server((host, port))
        self._listener.setblocking(False)
        self._selector = selectors.DefaultSelector()
        self._selector.register(self._listener, selectors.EVENT_READ, "listener")
        self._connections: List[socket.socket] = []
        #: Serving-loop telemetry: requests handled and time spent inside
        #: dispatch (query execution + response encoding), excluding syncs.
        self._requests = 0
        self._dispatch_seconds = 0.0
        self._last_sync = time.monotonic()
        self._last_request = time.monotonic()
        self._stop_event = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name="replica-server", daemon=True
        )
        self._thread.start()
        self._closed = False

    @property
    def address(self) -> Address:
        return self._listener.getsockname()

    def _replication_stats(self) -> Dict[str, Any]:
        return {
            "replication_lag": self.replica.replication_lag,
            "pinned_version": self.replica.commit_version,
            "replication": dict(self.replica.stats),
            "requests": self._requests,
            "dispatch_seconds": round(self._dispatch_seconds, 4),
        }

    def _maybe_sync(self, threshold: Optional[float] = None) -> None:
        now = time.monotonic()
        if now - self._last_sync < (self.lease if threshold is None else threshold):
            return
        try:
            self.replica.sync()
        except Exception:
            # The writer is briefly unreachable or the apply failed and
            # rolled back: keep serving the pinned snapshot (the counters
            # record the failure) and retry on the next tick.
            pass
        self._last_sync = time.monotonic()

    def _run(self) -> None:
        idle_tick = max(0.01, min(self.lease, 0.05)) if self.lease else 0.01
        while not self._stop_event.is_set():
            events = self._selector.select(timeout=idle_tick)
            if not events:
                # Idle: keep converging so a drained writer's final version
                # lands here without any client traffic — on the slow
                # ``idle_resync`` clock, not the per-request lease.
                self._maybe_sync(self.idle_resync)
                if time.monotonic() - self._last_request > self.checkpoint_after:
                    try:
                        self.replica.checkpoint()
                    except Exception:
                        # Durability is best-effort between checkpoints by
                        # design; a failed flush retries on the next idle
                        # tick (and close() flushes unconditionally).
                        pass
                continue
            for key, _ in events:
                if key.data == "listener":
                    self._accept()
                else:
                    self._serve_one(key.fileobj)  # type: ignore[arg-type]

    def _accept(self) -> None:
        try:
            connection, _ = self._listener.accept()
        except OSError:
            return
        # Connection sockets stay *blocking* with a short timeout: a frame
        # is read in one piece once its first bytes arrive (the selector
        # only signals readability).  Simpler than a non-blocking reassembly
        # buffer, and a stalled peer costs at most one timeout tick.
        connection.settimeout(5.0)
        connection.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._selector.register(connection, selectors.EVENT_READ, "connection")
        self._connections.append(connection)

    def _serve_one(self, connection: socket.socket) -> None:
        try:
            request = recv_frame(connection)
        except (ConnectionError, OSError, ProtocolError):
            self._drop(connection)
            return
        # Freshness lease: the answer must come from a recent-enough
        # snapshot, so sync *before* dispatching.  This round-trip blocks
        # only this replica; sibling replicas keep the core busy — the
        # overlap the serving benchmark measures.
        self._maybe_sync()
        self._last_request = time.monotonic()
        started = time.perf_counter()
        response = self.dispatcher.dispatch(request)
        self._requests += 1
        self._dispatch_seconds += time.perf_counter() - started
        try:
            send_frame(connection, response)
        except (ConnectionError, OSError):
            self._drop(connection)

    def _drop(self, connection: socket.socket) -> None:
        try:
            self._selector.unregister(connection)
        except (KeyError, ValueError):
            pass
        try:
            connection.close()
        except OSError:
            pass
        if connection in self._connections:
            self._connections.remove(connection)

    def _stop_async(self) -> None:
        self._stop_event.set()

    def join(self, timeout: Optional[float] = None) -> None:
        """Block until the loop exits (a ``shutdown`` RPC stops it)."""
        self._thread.join(timeout)

    def stop(self) -> None:
        self._stop_event.set()
        self._thread.join(5.0)

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self.stop()
        for connection in list(self._connections):
            self._drop(connection)
        try:
            self._selector.unregister(self._listener)
        except (KeyError, ValueError):
            pass
        self._selector.close()
        self._listener.close()
        self.replica.close()


def serve_replica(
    source_host: str,
    source_port: int,
    directory: Union[str, Path],
    host: str = "127.0.0.1",
    port: int = 0,
    lease: float = 0.05,
    idle_resync: float = 0.25,
    ready_file: Optional[Union[str, Path]] = None,
    durable_applies: bool = False,
) -> None:
    """Process entry point: serve ``directory`` against a writer until shutdown.

    The serving benchmark spawns one process per replica through this
    function; ``ready_file`` receives the bound address as JSON once the
    replica has bootstrapped, and a ``shutdown`` RPC ends the process.
    Applies default to lazy durability (idle-checkpointed): a serving slot
    that crashes mid-window restarts from its last checkpoint and re-pulls.
    """
    replica = Replica(
        (source_host, source_port), directory, durable_applies=durable_applies
    )
    server = ReplicaServer(
        replica, host=host, port=port, lease=lease, idle_resync=idle_resync
    )
    try:
        if ready_file is not None:
            bound_host, bound_port = server.address
            Path(ready_file).write_text(
                json.dumps(
                    {
                        "host": bound_host,
                        "port": bound_port,
                        "commit_version": replica.commit_version,
                    }
                )
            )
        server.join()
    finally:
        server.close()
