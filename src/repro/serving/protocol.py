"""Length-prefixed JSON frames plus a codec for LiDS values.

The wire format is deliberately minimal: each message is a 4-byte
big-endian length followed by that many bytes of UTF-8 JSON.  Requests are
``{"method": ..., "params": {...}}`` objects; responses are
``{"ok": true, "result": ...}`` or ``{"ok": false, "error": {...}}``.

JSON cannot carry RDF terms or :class:`~repro.tabular.Table`s directly, so
:func:`encode_value` / :func:`decode_value` tag them:

* a term becomes ``{"~t": "<n3 text>"}`` — :func:`repro.rdf.terms.term_n3`
  and :func:`~repro.rdf.terms.parse_term` round-trip terms *byte-identically*,
  which is what makes "remote rows byte-identical to in-process rows" a
  checkable property rather than a hope;
* a table becomes ``{"~table": name, "dataset": ..., "columns":
  [[name, [values...]], ...]}`` with cell values encoded recursively
  (query results keep raw term objects in their cells).

:func:`canonical_json` renders any encodable value with sorted keys and no
whitespace — the byte-identity comparison currency used by the benchmark
and the tests.
"""

from __future__ import annotations

import base64
import json
import socket
import struct
from typing import Any, List

import numpy as np

from repro.rdf.terms import Literal, QuotedTriple, URIRef, parse_term, term_n3
from repro.tabular import Column, Table

#: Hard cap on one frame (256 MiB) — a corrupt length prefix must not turn
#: into an attempted multi-gigabyte allocation.
MAX_FRAME_BYTES = 1 << 28

_LENGTH = struct.Struct(">I")


class ProtocolError(RuntimeError):
    """The peer sent bytes that are not a valid frame."""


class PreparedFrame:
    """A response serialized to frame-body bytes ahead of time.

    :func:`send_frame` ships the bytes verbatim, skipping the per-send
    ``json.dumps``.  The writer's delta cache leans on this: one replication
    window is serialized once and the same bytes fan out to every replica
    pulling it — the dominant cost of a multi-megabyte delta response is the
    serialization, not the loopback transfer.
    """

    __slots__ = ("body",)

    def __init__(self, payload: Any):
        self.body = json.dumps(payload, separators=(",", ":")).encode("utf-8")


# ------------------------------------------------------------------- framing
def send_frame(sock: socket.socket, payload: Any) -> None:
    """Serialize ``payload`` (already codec-encoded) as one frame."""
    if isinstance(payload, PreparedFrame):
        body = payload.body
    else:
        body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame of {len(body)} bytes exceeds MAX_FRAME_BYTES")
    sock.sendall(_LENGTH.pack(len(body)) + body)


def recv_frame(sock: socket.socket) -> Any:
    """Read one frame; raises ``ConnectionError`` on EOF mid-frame."""
    header = _recv_exact(sock, _LENGTH.size)
    (length,) = _LENGTH.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(f"peer announced a {length}-byte frame")
    body = _recv_exact(sock, length)
    try:
        return json.loads(body.decode("utf-8"))
    except ValueError as error:
        raise ProtocolError(f"undecodable frame: {error}") from error


def _recv_exact(sock: socket.socket, count: int) -> bytes:
    parts = []
    remaining = count
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            raise ConnectionError("peer closed the connection mid-frame")
        parts.append(chunk)
        remaining -= len(chunk)
    return b"".join(parts) if len(parts) != 1 else parts[0]


# ----------------------------------------------------------------- id packing
def pack_ids(ids: Any) -> "dict[str, str]":
    """A run of term ids as a base64 little-endian int64 buffer.

    Delta responses carry six-digit counts of ids; as JSON numbers each
    costs a decimal parse on every replica pulling the window, which is
    the single biggest slice of pull CPU.  A packed run decodes with one
    ``b64decode`` + ``np.frombuffer`` — C speed on both ends (the writer
    serializes from the numpy ravel directly).  Accepts any int sequence
    or int64 array.
    """
    array = np.asarray(ids, dtype="<i8")
    return {"~i64": base64.b64encode(array.tobytes()).decode("ascii")}


def unpack_ids(value: Any) -> List[int]:
    """Invert :func:`pack_ids`; plain JSON int lists pass through."""
    if isinstance(value, dict):
        return np.frombuffer(base64.b64decode(value["~i64"]), dtype="<i8").tolist()
    return value


# --------------------------------------------------------------------- codec
def encode_value(value: Any) -> Any:
    """Lower a LiDS value into plain JSON-serializable structure."""
    if value is None or isinstance(value, (bool, int, float, str)):
        # URIRef subclasses str: its n3 spelling (not its raw text) is what
        # round-trips, so check terms before the plain-scalar fast path.
        if isinstance(value, URIRef):
            return {"~t": term_n3(value)}
        return value
    if isinstance(value, (Literal, QuotedTriple)):
        return {"~t": term_n3(value)}
    if isinstance(value, Table):
        return {
            "~table": value.name,
            "dataset": value.dataset,
            "columns": [
                [column.name, [encode_value(cell) for cell in column.values]]
                for column in value.columns
            ],
        }
    if isinstance(value, np.generic):
        return encode_value(value.item())
    if isinstance(value, np.ndarray):
        return [encode_value(item) for item in value.tolist()]
    if isinstance(value, (list, tuple)):
        return [encode_value(item) for item in value]
    if isinstance(value, dict):
        return {str(key): encode_value(item) for key, item in value.items()}
    raise ProtocolError(f"cannot encode {type(value).__name__} for the wire")


def decode_value(value: Any) -> Any:
    """Invert :func:`encode_value`."""
    if isinstance(value, dict):
        if "~t" in value and len(value) == 1:
            return parse_term(value["~t"])
        if "~table" in value:
            return Table(
                value["~table"],
                columns=[
                    Column(name, [decode_value(cell) for cell in cells])
                    for name, cells in value["columns"]
                ],
                dataset=value.get("dataset", ""),
            )
        return {key: decode_value(item) for key, item in value.items()}
    if isinstance(value, list):
        return [decode_value(item) for item in value]
    return value


def canonical_json(value: Any) -> str:
    """Deterministic rendering used for byte-identity comparisons."""
    return json.dumps(encode_value(value), sort_keys=True, separators=(",", ":"))
