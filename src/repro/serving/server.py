"""The writer-side server: query RPCs plus snapshot-delta fetches.

:class:`LiDSServer` wraps any in-process :class:`LiDSClient` (usually one
fronting a live :class:`~repro.kg.service.GovernorService`) in a threaded
TCP server speaking the :mod:`repro.serving.protocol` frames.  Two request
families share the connection:

* ``call`` — one read-only discovery method from :data:`READ_METHODS`,
  answered from the live graph under its read-view gate;
* ``delta`` — a replica's refresh pull: "everything committed after my
  pinned ``commit_version``", answered as new dictionary rows plus either
  per-commit row ops (when the store's delta log can bridge the gap) or
  full row dumps of just the changed graphs.

Mutations never cross this wire: replicas are read-only by construction
and the writer's ingestion arrives through the governor service / crawler,
not RPC.
"""

from __future__ import annotations

import socket
import socketserver
import sys
import threading
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.interfaces.api import LiDSClient
from repro.kg.errors import TransientError
from repro.rdf.store import QuadStore
from repro.serving.protocol import (
    PreparedFrame,
    ProtocolError,
    decode_value,
    encode_value,
    pack_ids,
    recv_frame,
    send_frame,
)

#: The read-only discovery surface exposed over the wire — exactly the
#: :class:`LiDSClient` methods a remote data scientist may call.
READ_METHODS = frozenset(
    {
        "query",
        "search_keywords",
        "get_unionable_tables",
        "get_joinable_tables",
        "find_unionable_columns",
        "get_path_to_table",
        "get_shortest_path_between_tables",
        "get_top_k_library_used",
        "get_top_used_libraries",
        "get_pipelines_calling_libraries",
        "recommend_hyperparameters",
        "statistics",
        "stats",
    }
)


def compute_delta(store: QuadStore, since_version: int, since_terms: int) -> Dict[str, Any]:
    """Everything a follower pinned at ``since_version`` is missing.

    Runs under one read view so the version, the dictionary rows and the
    row data describe a single committed state.  Three shapes:

    * ``{"changed": False}`` — the follower is current;
    * ``ops`` — the delta log bridged the gap: dictionary rows at ids >=
      ``since_terms`` (packed ids + newline-joined spellings, with a plain
      ``[id, text]`` list fallback) and the writer's quoted-part rows for
      them, plus per-row ops (``["add"|"remove", graph, flat s,p,o id
      runs]`` with consecutive same-graph ops coalesced, and ``["drop",
      graph, None]``), to be replayed in order — id runs ship packed
      (:func:`~repro.serving.protocol.pack_ids`);
    * ``full`` — the log could not bridge (truncated, reset, or the
      follower is from a plain file copy): complete row dumps of every
      graph changed since ``since_version`` plus the graph catalog
      (``all_graphs``) so the follower can drop vanished graphs.
    """
    with store.read_view():
        version = store.commit_version
        if since_version >= version:
            return {"version": version, "changed": False}
        term_rows = store.dictionary.export_rows(since_terms)
        quoted = store.dictionary.export_quoted_rows(since_terms) if term_rows else []
        if term_rows and all("\n" not in text for _, text in term_rows):
            # Packed shape: ids as one int64 buffer, spellings newline-joined
            # — decodes as one split instead of one JSON array per term.
            # N-Triples escapes newlines in literals; the guard covers the
            # pathological URI that could still smuggle one in.
            terms: Any = {
                "ids": pack_ids([term_id for term_id, _ in term_rows]),
                "texts": "\n".join(text for _, text in term_rows),
            }
        else:
            terms = term_rows
        entries = store.delta_log_since(since_version)
        if entries is not None:
            ops: List[List[Any]] = []
            for _, commit_ops in entries:
                for kind, graph, payload in commit_ops:
                    if kind == "drop":
                        ops.append(["drop", str(graph), None])
                        continue
                    if ops and ops[-1][0] == kind and ops[-1][1] == str(graph):
                        ops[-1][2].extend(payload)
                    else:
                        ops.append([kind, str(graph), list(payload)])
            for op in ops:
                if op[2] is not None:
                    op[2] = pack_ids(op[2])
            return {
                "version": version,
                "changed": True,
                "full": False,
                "terms": terms,
                "quoted": pack_ids(quoted),
                "ops": ops,
            }
        graphs: Dict[str, Any] = {}
        for graph in store.graphs_changed_since(since_version):
            s_col, p_col, o_col = store.match_id_arrays(graph=graph)
            rows = np.empty((len(s_col), 3), dtype=np.int64)
            rows[:, 0] = s_col
            rows[:, 1] = p_col
            rows[:, 2] = o_col
            graphs[str(graph)] = pack_ids(rows.ravel())
        return {
            "version": version,
            "changed": True,
            "full": True,
            "terms": terms,
            "quoted": pack_ids(quoted),
            "graphs": graphs,
            "all_graphs": [str(graph) for graph in store.graphs()],
        }


class RequestDispatcher:
    """Maps one decoded request frame to one response frame.

    Shared by the threaded writer server and the single-threaded replica
    loop — the serving semantics (method whitelist, error shaping, the
    transient flag the remote client keys its retry policy on) live here
    exactly once.
    """

    def __init__(
        self,
        client: LiDSClient,
        role: str = "writer",
        store: Optional[QuadStore] = None,
        extra_stats: Optional[Callable[[], Dict[str, Any]]] = None,
        on_shutdown: Optional[Callable[[], None]] = None,
    ):
        self.client = client
        self.role = role
        self.store = store if store is not None else client.storage.graph
        self.extra_stats = extra_stats
        self.on_shutdown = on_shutdown
        #: Delta responses already serialized to frame bytes, keyed by the
        #: follower's ``(since_version, since_terms)`` position and stamped
        #: with the writer version they describe.  N replicas syncing on the
        #: same cadence ask for the same window within one commit's
        #: lifetime; serializing that window once turns the writer's delta
        #: fan-out cost from O(replicas) into O(1) per commit.
        self._delta_cache: Dict[Tuple[int, int], Tuple[int, PreparedFrame]] = {}
        self._delta_lock = threading.Lock()
        self.delta_cache_hits = 0
        self.delta_cache_misses = 0

    def dispatch(self, request: Any) -> Any:
        """One decoded request frame in, one response in.

        Usually a response *object* for :func:`send_frame` to serialize; a
        hot delta pull returns a :class:`PreparedFrame` of cached bytes.
        """
        try:
            if not isinstance(request, dict):
                raise ProtocolError("request frame must be an object")
            method = request.get("method")
            params = request.get("params") or {}
            if method == "ping":
                result: Any = {
                    "role": self.role,
                    "commit_version": self.client.commit_version,
                }
            elif method == "stats":
                result = self._stats()
            elif method == "delta":
                return self._delta_response(params)
            elif method == "call":
                result = self._call(params)
            elif method == "shutdown":
                if self.on_shutdown is not None:
                    self.on_shutdown()
                result = True
            else:
                raise ProtocolError(f"unknown method {method!r}")
            return {"ok": True, "result": encode_value(result)}
        except BaseException as error:  # noqa: BLE001 — becomes the error frame
            return {
                "ok": False,
                "error": {
                    "type": type(error).__name__,
                    "message": str(error),
                    "transient": isinstance(error, TransientError),
                },
            }

    def _delta_response(self, params: Dict[str, Any]) -> PreparedFrame:
        """One delta pull, answered from the serialized-frame cache when hot.

        A cached frame is served only while the writer still sits at the
        version the frame describes, so a follower can never observe a
        rolled-forward writer through stale bytes — at worst it re-pulls on
        its next lease tick.
        """
        since = (int(params.get("since_version", 0)), int(params.get("since_terms", 1)))
        with self._delta_lock:
            cached = self._delta_cache.get(since)
            if cached is not None and cached[0] == self.store.commit_version:
                self.delta_cache_hits += 1
                return cached[1]
        payload = compute_delta(self.store, *since)
        frame = PreparedFrame({"ok": True, "result": payload})
        with self._delta_lock:
            self.delta_cache_misses += 1
            if payload["changed"]:
                # Noop responses are cheaper to recompute than to track.
                if len(self._delta_cache) >= 8:
                    self._delta_cache.pop(next(iter(self._delta_cache)))
                self._delta_cache[since] = (int(payload["version"]), frame)
        return frame

    def _stats(self) -> Dict[str, Any]:
        payload = self.client.stats()
        payload["role"] = self.role
        payload["delta_cache"] = {
            "hits": self.delta_cache_hits,
            "misses": self.delta_cache_misses,
        }
        if self.extra_stats is not None:
            payload.update(self.extra_stats())
        return payload

    def _call(self, params: Dict[str, Any]) -> Any:
        name = params.get("name")
        if name == "stats":
            return self._stats()
        if name not in READ_METHODS:
            raise ProtocolError(f"method {name!r} is not servable")
        args = decode_value(params.get("args") or [])
        kwargs = decode_value(params.get("kwargs") or {})
        return getattr(self.client, name)(*args, **kwargs)


class _FrameHandler(socketserver.BaseRequestHandler):
    def handle(self) -> None:
        self.request.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        dispatcher: RequestDispatcher = self.server.dispatcher  # type: ignore[attr-defined]
        while True:
            try:
                request = recv_frame(self.request)
            except (ConnectionError, OSError):
                return
            except ProtocolError:
                return
            response = dispatcher.dispatch(request)
            try:
                send_frame(self.request, response)
            except (ConnectionError, OSError):
                return


class _Server(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True


class LiDSServer:
    """Serve one in-process :class:`LiDSClient` over TCP (threaded).

    The writer endpoint of the serving tier: each connection gets its own
    handler thread, so slow replica delta pulls never block interactive
    queries (each call still serializes on the store's read-view gate,
    which is the consistency boundary).  Enables the store's delta log by
    default so replicas refresh via row ops rather than shard re-ships;
    pass ``delta_log_capacity=None`` to serve full-dump deltas only.
    """

    def __init__(
        self,
        client: LiDSClient,
        host: str = "127.0.0.1",
        port: int = 0,
        role: str = "writer",
        delta_log_capacity: Optional[int] = 1024,
    ):
        self.client = client
        # The writer hosts CPU-heavy governance threads next to IO-bound RPC
        # handlers; at the default 5 ms GIL switch interval a long-running
        # profiling pass starves every handler (and with it every replica's
        # freshness sync) into convoy latency.  A sub-millisecond interval
        # is the standard tuning for this mixed workload.
        if sys.getswitchinterval() > 0.001:
            sys.setswitchinterval(0.001)
        if delta_log_capacity is not None:
            client.storage.graph.enable_delta_log(delta_log_capacity)
        self.dispatcher = RequestDispatcher(
            client, role=role, on_shutdown=self._shutdown_async
        )
        self._server = _Server((host, port), _FrameHandler)
        self._server.dispatcher = self.dispatcher  # type: ignore[attr-defined]
        self._thread = threading.Thread(
            target=self._server.serve_forever, name="lids-server", daemon=True
        )
        self._thread.start()
        self._closed = False

    @property
    def address(self) -> Tuple[str, int]:
        return self._server.server_address  # type: ignore[return-value]

    def _shutdown_async(self) -> None:
        # ``shutdown()`` joins the serve_forever loop; fired from a handler
        # thread that loop is still pumping, so hop to a fresh thread.
        threading.Thread(target=self.close, daemon=True).start()

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._server.shutdown()
        self._server.server_close()
