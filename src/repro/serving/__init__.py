"""The networked serving tier: one writer, N snapshot-shipped read replicas.

Topology (see the README's "Serving tier" section):

* :class:`LiDSServer` hosts the single *writer* — a live
  :class:`~repro.kg.service.GovernorService` — and serves both discovery
  query RPCs and snapshot-delta fetches over a length-prefixed JSON-RPC
  wire protocol (:mod:`repro.serving.protocol`).
* :class:`Replica` opens a shipped snapshot read-only and refreshes by
  pulling only what changed since its pinned ``commit_version`` — a row
  delta when the writer's op log can bridge, full changed shards
  otherwise — applied atomically under the store's read-view gate.
  :class:`ReplicaServer` serves it over the same protocol on a
  deliberately single-threaded event loop.
* :class:`RemoteLiDSClient` speaks the in-process
  :class:`~repro.interfaces.api.LiDSClient` read surface over a pooled
  socket connection with retry/backoff on transient failures.

Consistency model: replicas are snapshot-consistent — every query answers
from one committed writer state, pinned at the replica's current
``commit_version``; staleness is bounded by the replica's freshness lease
and reported in *versions* via ``stats()``, never guessed from clocks.
"""

from repro.serving.client import RemoteError, RemoteLiDSClient
from repro.serving.protocol import (
    MAX_FRAME_BYTES,
    ProtocolError,
    canonical_json,
    decode_value,
    encode_value,
    recv_frame,
    send_frame,
)
from repro.serving.replica import Replica, ReplicaServer, serve_replica
from repro.serving.server import READ_METHODS, LiDSServer, RequestDispatcher, compute_delta

__all__ = [
    "LiDSServer",
    "MAX_FRAME_BYTES",
    "ProtocolError",
    "READ_METHODS",
    "RemoteError",
    "RemoteLiDSClient",
    "Replica",
    "ReplicaServer",
    "RequestDispatcher",
    "canonical_json",
    "compute_delta",
    "decode_value",
    "encode_value",
    "recv_frame",
    "send_frame",
    "serve_replica",
]
