"""The remote client: the ``LiDSClient`` read surface over a socket pool.

:class:`RemoteLiDSClient` exposes the same discovery methods as the
in-process :class:`~repro.interfaces.api.LiDSClient`, proxied over the
frame protocol.  Connections come from a small pool (checked out per call,
discarded on any error), and every call retries with capped jittered
exponential backoff on *transient* failures: connection drops, torn
frames, and server errors flagged ``transient`` (the server marks
:class:`~repro.kg.errors.TransientError` subclasses).  Non-transient
server errors raise :class:`RemoteError` immediately; exhausting the
retry budget raises :class:`~repro.kg.errors.TransientError` so callers
sit behind one failure taxonomy whether the lake is local or remote.
"""

from __future__ import annotations

import random
import socket
import threading
import time
from typing import Any, Dict, List, Optional, Tuple

from repro.kg.errors import TransientError
from repro.serving.protocol import (
    ProtocolError,
    decode_value,
    encode_value,
    recv_frame,
    send_frame,
)
from repro.tabular import Table

Address = Tuple[str, int]


class RemoteError(RuntimeError):
    """The server reported a non-retryable failure."""


class RemoteLiDSClient:
    """Speak the :class:`LiDSClient` read surface to a serving endpoint."""

    def __init__(
        self,
        address: Address,
        timeout: float = 30.0,
        pool_size: int = 2,
        max_retries: int = 5,
        backoff_base: float = 0.02,
        backoff_cap: float = 0.5,
        backoff_seed: Optional[int] = None,
    ):
        self.address = (str(address[0]), int(address[1]))
        self.timeout = timeout
        self.pool_size = pool_size
        self.max_retries = max_retries
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self._rng = random.Random(backoff_seed)
        self._pool: List[socket.socket] = []
        self._pool_lock = threading.Lock()
        self._closed = False
        #: Call telemetry: completed RPCs, retry attempts, fresh connects.
        self.stats: Dict[str, int] = {"calls": 0, "retries": 0, "reconnects": 0}

    # ------------------------------------------------------------- transport
    def _checkout(self) -> socket.socket:
        with self._pool_lock:
            if self._pool:
                return self._pool.pop()
        connection = socket.create_connection(self.address, timeout=self.timeout)
        connection.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        with self._pool_lock:
            self.stats["reconnects"] += 1
        return connection

    def _checkin(self, connection: socket.socket) -> None:
        with self._pool_lock:
            if not self._closed and len(self._pool) < self.pool_size:
                self._pool.append(connection)
                return
        try:
            connection.close()
        except OSError:
            pass

    def _call(self, method: str, params: Dict[str, Any]) -> Any:
        if self._closed:
            raise RuntimeError("client is closed")
        request = {"method": method, "params": params}
        last_error: Optional[BaseException] = None
        for attempt in range(self.max_retries + 1):
            if attempt:
                with self._pool_lock:
                    self.stats["retries"] += 1
                delay = min(self.backoff_cap, self.backoff_base * (2 ** (attempt - 1)))
                time.sleep(delay * (0.5 + self._rng.random() * 0.5))
            connection: Optional[socket.socket] = None
            try:
                connection = self._checkout()
                send_frame(connection, request)
                response = recv_frame(connection)
            except (ConnectionError, ProtocolError, OSError) as error:
                # The connection is in an unknown state (possibly mid-frame):
                # discard it and retry on a fresh one.
                if connection is not None:
                    try:
                        connection.close()
                    except OSError:
                        pass
                last_error = error
                continue
            self._checkin(connection)
            with self._pool_lock:
                self.stats["calls"] += 1
            if not isinstance(response, dict):
                last_error = ProtocolError("response frame must be an object")
                continue
            if response.get("ok"):
                return response.get("result")
            error_info = response.get("error") or {}
            message = f"{error_info.get('type')}: {error_info.get('message')}"
            if error_info.get("transient"):
                last_error = TransientError(message)
                continue
            raise RemoteError(message)
        raise TransientError(
            f"{method} against {self.address[0]}:{self.address[1]} failed after "
            f"{self.max_retries + 1} attempts: {last_error}"
        )

    def _remote(self, name: str, *args: Any, **kwargs: Any) -> Any:
        return decode_value(
            self._call(
                "call",
                {
                    "name": name,
                    "args": encode_value(list(args)),
                    "kwargs": encode_value(kwargs),
                },
            )
        )

    # -------------------------------------------------------- discovery API
    def query(self, sparql: str) -> Table:
        return self._remote("query", sparql)

    def search_keywords(self, conditions: Any) -> Table:
        return self._remote("search_keywords", conditions)

    def get_unionable_tables(self, dataset: str, table: str, k: int = 10) -> Table:
        return self._remote("get_unionable_tables", dataset, table, k)

    def get_joinable_tables(self, dataset: str, table: str, k: int = 10) -> Table:
        return self._remote("get_joinable_tables", dataset, table, k)

    def find_unionable_columns(self, *args: Any, **kwargs: Any) -> Table:
        return self._remote("find_unionable_columns", *args, **kwargs)

    def get_path_to_table(self, dataset: str, table: str, hops: int = 2) -> Table:
        return self._remote("get_path_to_table", dataset, table, hops)

    def get_shortest_path_between_tables(self, *args: Any, **kwargs: Any) -> Table:
        return self._remote("get_shortest_path_between_tables", *args, **kwargs)

    def get_top_k_library_used(self, k: int = 10) -> Table:
        return self._remote("get_top_k_library_used", k)

    def get_top_used_libraries(self, k: int = 10, task: Optional[str] = None) -> Table:
        return self._remote("get_top_used_libraries", k, task)

    def get_pipelines_calling_libraries(self, *qualified_calls: str) -> Table:
        return self._remote("get_pipelines_calling_libraries", *qualified_calls)

    def recommend_hyperparameters(self, estimator_name: str) -> Dict[str, Any]:
        return self._remote("recommend_hyperparameters", estimator_name)

    def statistics(self) -> Dict[str, int]:
        return self._remote("statistics")

    # ------------------------------------------------------- serving control
    def ping(self) -> Dict[str, Any]:
        return self._call("ping", {})

    @property
    def commit_version(self) -> int:
        """The server's current committed version (one ping round-trip)."""
        return int(self.ping()["commit_version"])

    def server_stats(self) -> Dict[str, Any]:
        """The endpoint's ``stats()`` payload (versions, lag, counters)."""
        return decode_value(self._call("stats", {}))

    def delta(self, since_version: int, since_terms: int) -> Dict[str, Any]:
        """Pull the raw replication delta (used by :class:`Replica`)."""
        return self._call(
            "delta", {"since_version": since_version, "since_terms": since_terms}
        )

    def shutdown_server(self) -> None:
        """Ask the endpoint to stop serving (used by the benchmark teardown)."""
        self._call("shutdown", {})

    def close(self) -> None:
        self._closed = True
        with self._pool_lock:
            pool, self._pool = self._pool, []
        for connection in pool:
            try:
                connection.close()
            except OSError:
                pass

    def __enter__(self) -> "RemoteLiDSClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
